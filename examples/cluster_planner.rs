//! Capacity-planning walkthrough: how many replicas, which votes, which
//! quorums?
//!
//!     cargo run -p quorum-examples --release --bin cluster_planner
//!
//! An operator has machines of mixed reliability inside one datacenter
//! (non-partitionable: switch fabric is effectively perfect) and wants the
//! replication setup maximizing availability for a 70 %-read workload.
//! Uses the exact DP availability of the Ahamad–Ammar model plus the
//! Cheung–Ahamad–Ammar joint vote/quorum search, then shows the marginal
//! value of each extra replica.

#![forbid(unsafe_code)]

use quorum_core::nonpartition::{
    model_uniform_access, optimal_votes_exhaustive, optimal_votes_hill_climb, up_vote_distribution,
};
use quorum_core::optimal::{optimal_quorum, SearchStrategy};

fn main() {
    let alpha = 0.70;

    // Fleet: two good machines, a mediocre one, and flaky spot instances.
    let fleet = [0.999, 0.995, 0.98, 0.90, 0.90, 0.85, 0.85];
    println!("machine reliabilities: {fleet:?}");
    println!("workload: {:.0}% reads\n", alpha * 100.0);

    // 1. How much does each replica buy? Uniform votes, optimal quorums.
    //    Two views (§3 of the paper): ACC averages over the submitting
    //    machine too — adding flaky replicas *lowers* it, because the
    //    average submitter gets flakier — while SURV ("can anyone reach a
    //    quorum?") shows the durability that replication actually buys.
    println!("replicas  ACC (avg submitter)  (q_r, q_w)   SURV (some submitter)");
    for k in 1..=fleet.len() {
        let votes = vec![1u64; k];
        let rel = &fleet[..k];
        let model = model_uniform_access(&votes, rel);
        let opt = optimal_quorum(&model, alpha, SearchStrategy::Exhaustive);
        let surv_dist = up_vote_distribution(&votes, rel);
        let surv = alpha * surv_dist.tail_sum(opt.spec.q_r() as usize)
            + (1.0 - alpha) * surv_dist.tail_sum(opt.spec.q_w() as usize);
        println!(
            "{k:>8}  {:>6.3}%              ({}, {})       {:>6.3}%",
            100.0 * opt.availability,
            opt.spec.q_r(),
            opt.spec.q_w(),
            100.0 * surv,
        );
    }
    println!("(ACC falls as flaky spot machines join the submitter pool; SURV — the");
    println!(" chance the data is reachable at all — is what replication improves.)");

    // 2. Let votes float: the joint search (exhaustive — 7 sites is
    //    exactly the reach of the classic analyses).
    let joint = optimal_votes_exhaustive(&fleet, alpha, 3);
    println!(
        "\njoint vote/quorum optimum: votes {:?}, (q_r, q_w) = ({}, {}), A = {:.3}%",
        joint.votes,
        joint.spec.q_r(),
        joint.spec.q_w(),
        100.0 * joint.availability
    );
    println!("({} combinations evaluated)", joint.evaluations);

    // 3. Same question for a 12-machine fleet — exhaustive search is out
    //    of reach, multi-start hill climbing takes over.
    let big_fleet: Vec<f64> = (0..12).map(|i| 0.85 + 0.0125 * i as f64).collect();
    let hc = optimal_votes_hill_climb(&big_fleet, alpha, 3);
    println!(
        "\n12-machine fleet: votes {:?} (q_r={}, q_w={}), A = {:.3}% ({} evaluations)",
        hc.votes,
        hc.spec.q_r(),
        hc.spec.q_w(),
        100.0 * hc.availability,
        hc.evaluations
    );

    println!("\nnote: inside a partitionable WAN these answers change — run the");
    println!("topology_survey example, or estimate f_i on-line (§4.2 of the paper)");
    println!("instead of assuming every pair of up machines can talk.");
}
