//! Quickstart: find the optimal quorum assignment for a small replicated
//! database, entirely analytically (no simulation).
//!
//!     cargo run -p quorum-examples --bin quickstart
//!
//! Scenario: nine database replicas on a fully-connected cluster network
//! whose machines are 95 % reliable and whose links are 99 % reliable.
//! Workload: 80 % reads. We build the exact component-size density with
//! Gilbert's recursion (§4.2 of Johnson & Raab), run the Figure-1
//! optimizer, and compare the result against the classic baselines.

#![forbid(unsafe_code)]

use quorum_core::analytic::fully_connected_density;
use quorum_core::{AvailabilityModel, QuorumSpec, SearchStrategy};

fn main() {
    let n = 9usize;
    let site_reliability = 0.95;
    let link_reliability = 0.99;
    let alpha = 0.80; // fraction of accesses that are reads

    // Step 1 (Figure 1): the density f(v) — here exact, since the cluster
    // is fully connected and symmetric.
    let density = fully_connected_density(n, site_reliability, link_reliability);
    println!("component-vote density f(v) for {n} replicas:");
    for v in 0..=n {
        println!("  P[component holds {v} votes] = {:.4}", density.pmf(v));
    }

    // Steps 2-3: uniform access, so r(v) = w(v) = f(v).
    let model = AvailabilityModel::from_mixtures(&density, &density);

    // Step 4: maximize A(α, q_r).
    let opt = quorum_core::optimal::optimal_quorum(&model, alpha, SearchStrategy::Exhaustive);
    println!("\noptimal assignment for α = {alpha}:");
    println!(
        "  q_r = {}, q_w = {}  →  A = {:.2}%  (reads {:.2}%, writes {:.2}%)",
        opt.spec.q_r(),
        opt.spec.q_w(),
        100.0 * opt.availability,
        100.0 * opt.read_availability,
        100.0 * opt.write_availability
    );

    // Baselines the paper positions against (§2.1).
    println!("\nbaselines:");
    for (name, spec) in [
        ("majority consensus", QuorumSpec::majority(n as u64)),
        (
            "read-one/write-all",
            QuorumSpec::read_one_write_all(n as u64),
        ),
    ] {
        let a = alpha * model.read_availability(spec.q_r())
            + (1.0 - alpha) * model.write_availability(spec.q_w());
        println!(
            "  {name:<20} (q_r={}, q_w={})  →  A = {:.2}%",
            spec.q_r(),
            spec.q_w(),
            100.0 * a
        );
    }

    // The §5.4 enhancement: demand that at least half of writes succeed.
    match quorum_core::optimal::optimal_with_write_floor(
        &model,
        alpha,
        0.50,
        SearchStrategy::Exhaustive,
    ) {
        Some(c) => println!(
            "\nwith a 50% write-availability floor: q_r = {}, q_w = {}, A = {:.2}% (W = {:.2}%)",
            c.spec.q_r(),
            c.spec.q_w(),
            100.0 * c.availability,
            100.0 * c.write_availability
        ),
        None => println!("\na 50% write floor is infeasible on this network"),
    }
}
