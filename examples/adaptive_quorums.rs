//! Dynamic quorum reassignment on a wide-area ring under a workload whose
//! read/write mix shifts over time (a day/night pattern: OLTP-style writes
//! by day, analytics reads by night).
//!
//!     cargo run -p quorum-examples --release --bin adaptive_quorums
//!
//! Demonstrates the §2.2/§4.3 machinery of Johnson & Raab: the adaptive
//! controller estimates the component-vote density and the read ratio
//! on-line, re-runs the Figure-1 optimizer periodically, and installs new
//! assignments through the version-numbered QR protocol — never violating
//! one-copy serializability along the way.

#![forbid(unsafe_code)]

use quorum_core::{QuorumConsensus, QuorumSpec};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::adaptive::{run_adaptive, run_phased, AdaptiveConfig, Phase};

fn main() {
    let n = 31;
    let topology = Topology::ring_with_chords(n, 2);
    let total = n as u64;
    let params = SimParams {
        warmup_accesses: 2_000,
        ..SimParams::paper()
    };
    // Day (write-heavy) / night (read-heavy), two days.
    let phases = [
        Phase::new(0.15, 25_000),
        Phase::new(0.95, 25_000),
        Phase::new(0.15, 25_000),
        Phase::new(0.95, 25_000),
    ];

    println!(
        "workload phases (read ratio): {:?}",
        phases.map(|p| p.alpha)
    );
    println!(
        "network: {} ({} links)\n",
        topology.name(),
        topology.num_links()
    );

    // Static majority baseline.
    let mut static_proto = QuorumConsensus::majority(n);
    let static_runs = run_phased(&topology, params, &phases, &mut static_proto, 7);

    // Adaptive QR.
    // A 20% write floor (§5.4) keeps every installed assignment
    // *re-assignable*: a near-ROWA q_w would freeze the QR protocol,
    // because the next change needs a component holding the old q_w.
    let adaptive = run_adaptive(
        &topology,
        params,
        &phases,
        QuorumSpec::majority(total),
        AdaptiveConfig {
            write_floor: Some(0.20),
            ..AdaptiveConfig::default()
        },
        7,
    );

    println!("phase  α     static-majority  adaptive-QR  installed-assignment");
    let (mut s_sum, mut a_sum) = (0.0, 0.0);
    for (i, (st, ad)) in static_runs.iter().zip(&adaptive).enumerate() {
        let s = st.1.availability();
        let a = ad.stats.availability();
        s_sum += s;
        a_sum += a;
        println!(
            "{i}      {:<4}  {:>6.1}%          {:>6.1}%      (q_r={}, q_w={}), {} reassignments so far",
            ad.phase.alpha,
            100.0 * s,
            100.0 * a,
            ad.final_spec.q_r(),
            ad.final_spec.q_w(),
            ad.reassignments,
        );
        assert_eq!(ad.stats.stale_reads, 0, "QR preserved 1SR");
    }
    let k = phases.len() as f64;
    println!(
        "\nmean availability: static {:.1}%  vs  adaptive {:.1}%",
        100.0 * s_sum / k,
        100.0 * a_sum / k
    );
    println!("(every granted read saw the most recent write — checked)");
}
