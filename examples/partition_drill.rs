//! A deterministic partition drill: walk a 7-site ring through a scripted
//! outage, watching what each protocol allows at every step.
//!
//!     cargo run -p quorum-examples --release --bin partition_drill
//!
//! Uses the scripted scenario executor (the same machinery the stochastic
//! simulator runs on) to replay a concrete §2.2-style incident: a link
//! cut, a second cut creating a true partition, a quorum reassignment in
//! the majority side, and the heal — with one-copy-serializability
//! checked at every access.

#![forbid(unsafe_code)]

use quorum_core::protocol::Decision;
use quorum_core::{Access, QrProtocol, QuorumSpec, VoteAssignment};
use quorum_graph::Topology;
use quorum_replica::script::{Scenario, Step};

fn show(step: &str, outcome: &quorum_replica::script::AccessOutcome) {
    println!(
        "{step:<44} site {} sees {} votes → {:?}{}",
        outcome.site,
        outcome.votes,
        outcome.decision,
        if outcome.decision == Decision::Granted && !outcome.consistent {
            "  ⚠ INCONSISTENT"
        } else {
            ""
        }
    );
}

fn main() {
    // Ring of 7: links i connect (i, i+1 mod 7).
    let topo = Topology::ring(7);
    let mut sc = Scenario::new(&topo);
    let mut qr = QrProtocol::new(VoteAssignment::uniform(7), QuorumSpec::majority(7));
    println!("7-site ring, majority quorums (q_r = q_w = 4), QR protocol\n");

    // Healthy baseline.
    sc.step(&mut qr, Step::Access(Access::Write, 0));
    show("all up: write at site 0", sc.last());

    // One link down: ring stays connected.
    sc.step(&mut qr, Step::FailLink(2));
    sc.step(&mut qr, Step::Access(Access::Read, 3));
    show("link (2,3) down: read at site 3", sc.last());

    // Second cut partitions {3,4,5,6} from {0,1,2}.
    sc.step(&mut qr, Step::FailLink(6));
    sc.step(&mut qr, Step::Access(Access::Write, 1));
    show("also (6,0) down: write at site 1 (3 votes)", sc.last());
    sc.step(&mut qr, Step::Access(Access::Write, 4));
    show("                 write at site 4 (4 votes)", sc.last());

    // The majority side tries to loosen reads via QR. Installing (3,5)
    // needs max(q_w_old, q_w_new) = max(4, 5) = 5 votes (the corrected
    // joint rule — the refreshed copies must cover the new write quorum),
    // and only 4 are present: the protocol refuses, visibly.
    let members = sc.members_of(4);
    let new_spec = QuorumSpec::from_read_quorum(3, 7).expect("(3,5) of 7 satisfies both rules");
    match qr.try_reassign(&members, new_spec) {
        Ok(v) => println!("reassign to (3,5) in majority side: installed version {v}"),
        Err(e) => println!("reassign to (3,5) in majority side: refused ({e})"),
    }

    // A site failure splits the majority side: {3,4} | {6}.
    sc.step(&mut qr, Step::FailSite(5));
    sc.step(&mut qr, Step::Access(Access::Write, 4));
    show("site 5 down: write at site 4 (2 votes)", sc.last());
    sc.step(&mut qr, Step::Access(Access::Read, 4));
    show("             read at site 4", sc.last());

    // Heal everything; the minority learns the state on first contact.
    sc.step(&mut qr, Step::RepairSite(5));
    sc.step(&mut qr, Step::RepairLink(2));
    sc.step(&mut qr, Step::RepairLink(6));
    sc.step(&mut qr, Step::Access(Access::Read, 1));
    show("healed: read at site 1", sc.last());
    sc.step(&mut qr, Step::Access(Access::Write, 2));
    show("        write at site 2", sc.last());

    println!("\nevery granted access consistent: {}", sc.all_consistent());
    println!(
        "final assignment: version {}, spec {}",
        qr.global_max_version(),
        qr.site(0).spec
    );
}
