//! Replication over a shared bus (§4.2's single-bus architecture).
//!
//!     cargo run -p quorum-examples --release --bin bus_replication
//!
//! A factory floor runs nine controllers on one field bus. Two designs are
//! on the table: controllers that halt when the bus dies ("fail with
//! bus") versus controllers that keep running isolated ("independent").
//! We compute the exact §4.2 densities for both, pick optimal quorums for
//! a 60 %-read workload, and confirm with the discrete-event simulator.

#![forbid(unsafe_code)]

use quorum_core::analytic::{bus_density_sites_fail, bus_density_sites_independent};
use quorum_core::{AvailabilityModel, QuorumConsensus, QuorumSpec, SearchStrategy};
use quorum_des::SimParams;
use quorum_graph::BusFailureMode;
use quorum_replica::bus_sim::BusSimulation;
use quorum_replica::Workload;

fn main() {
    let n = 9usize;
    let p = 0.97; // controller reliability
    let r = 0.99; // bus reliability
    let alpha = 0.90; // read-heavy: the designs differ at loose read quorums

    println!(
        "nine controllers, p = {p}, bus r = {r}, {:.0}% reads\n",
        alpha * 100.0
    );

    for (label, mode, density) in [
        (
            "fail-with-bus",
            BusFailureMode::SitesFailWithBus,
            bus_density_sites_fail(n, p, r),
        ),
        (
            "independent",
            BusFailureMode::SitesIndependent,
            bus_density_sites_independent(n, p, r),
        ),
    ] {
        let model = AvailabilityModel::from_mixtures(&density, &density);
        let opt = quorum_core::optimal::optimal_quorum(&model, alpha, SearchStrategy::Exhaustive);
        println!(
            "{label:<14} analytic: optimal (q_r={}, q_w={}), predicted A = {:.2}%  [A(q_r=1) = {:.2}%]",
            opt.spec.q_r(),
            opt.spec.q_w(),
            100.0 * opt.availability,
            100.0 * model.availability(alpha, 1),
        );

        // Confirm with the simulator at the chosen assignment.
        let mut sim = BusSimulation::new(
            n,
            mode,
            SimParams {
                warmup_accesses: 3_000,
                batch_accesses: 80_000,
                reliability: p, // sites and bus share p here? see below
                ..SimParams::paper()
            },
            Workload::uniform(n, alpha),
            77,
        );
        // NOTE: the simulator's single `reliability` knob drives both the
        // sites and the bus; we set it to the controller value and accept
        // the (tiny) difference from the bus's 0.99 for this walkthrough.
        let mut proto = QuorumConsensus::new(
            quorum_core::VoteAssignment::uniform(n),
            QuorumSpec::from_read_quorum(opt.spec.q_r(), n as u64)
                .expect("optimizer only emits consistent quorums"),
        );
        let stats = sim.run_batch(&mut proto);
        println!(
            "{label:<14} simulated (p for all components): A = {:.2}%, 1SR: {}",
            100.0 * stats.availability(),
            stats.stale_reads == 0 && stats.write_conflicts == 0
        );
    }

    println!("\ntakeaway: the 'independent' design keeps reads at isolated controllers");
    println!("alive through bus outages, which pushes the optimal assignment toward");
    println!("smaller read quorums than the fail-with-bus design tolerates.");
}
