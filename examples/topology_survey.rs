//! How network connectivity shapes the optimal quorum assignment.
//!
//!     cargo run -p quorum-examples --release --bin topology_survey
//!
//! Runs a miniature version of the paper's §5 study across qualitatively
//! different 25-site networks — ring, grid, star, chorded ring, complete
//! graph — and reports, for a balanced workload, where the optimal
//! assignment lands and how much it beats the classic baselines by.
//! The punchline matches §5.5: on well-connected networks majority-style
//! assignments are fine; on sparse ones they can be the *worst* choice.

#![forbid(unsafe_code)]

use quorum_core::metrics::AvailabilityMetric;
use quorum_core::{QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::{run_static, CurveSet, RunConfig, Workload};

fn main() {
    let n = 25usize;
    let total = n as u64;
    let topologies = vec![
        Topology::ring(n),
        Topology::grid(5, 5),
        Topology::torus(5, 5),
        Topology::star(n),
        Topology::ring_with_chords(n, 6),
        Topology::fully_connected(n),
    ];

    println!("25-site survey, 96% component reliability\n");
    println!("alpha  topology        opt-q_r  opt-A    majority-A  ROWA-A   majority-is-worst?");

    for &alpha in &[0.5f64, 0.9] {
        for topo in &topologies {
            let results = run_static(
                topo,
                VoteAssignment::uniform(n),
                QuorumSpec::from_read_quorum(total / 2, total).expect("valid"),
                Workload::uniform(n, alpha),
                RunConfig {
                    params: SimParams {
                        warmup_accesses: 2_000,
                        batch_accesses: 40_000,
                        min_batches: 3,
                        max_batches: 6,
                        ci_half_width: 0.01,
                        ..SimParams::paper()
                    },
                    seed: 23,
                    threads: 4,
                },
            );
            let curves = CurveSet::from_run(&results);
            let model = curves.model(AvailabilityMetric::Accessibility);
            let opt = curves.optimal(alpha, SearchStrategy::Exhaustive);

            let eval = |spec: QuorumSpec| {
                alpha * model.read_availability(spec.q_r())
                    + (1.0 - alpha) * model.write_availability(spec.q_w())
            };
            let majority = eval(QuorumSpec::majority(total));
            let rowa = eval(QuorumSpec::read_one_write_all(total));
            let series = curves.curve(AvailabilityMetric::Accessibility, alpha);
            let min = series.iter().cloned().fold(f64::MAX, f64::min);
            let majority_worst = majority <= min + 1e-9;

            println!(
                "{alpha:<5}  {:<15} {:>6}   {:>5.1}%   {:>7.1}%   {:>5.1}%   {}",
                topo.name(),
                opt.spec.q_r(),
                100.0 * opt.availability,
                100.0 * majority,
                100.0 * rowa,
                if majority_worst { "yes" } else { "no" },
            );
        }
    }

    println!("\nreading: opt-A is what the Figure-1 optimizer achieves; the gap to the");
    println!("majority and read-one/write-all columns is the value of optimizing, and it");
    println!("widens as the network gets sparser (ring/grid) — §5.5's conclusion.");
}
