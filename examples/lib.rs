//! Shared nothing — each example is a self-contained binary. This empty
//! library target exists only so the `quorum-examples` package has a lib
//! root for `cargo doc`.

#![forbid(unsafe_code)]
