//! Guaranteeing a minimum write throughput (§5.4 of Johnson & Raab).
//!
//!     cargo run -p quorum-examples --release --bin write_floor_sweep
//!
//! Scenario: a 21-site metropolitan ring carrying a read-dominated
//! workload (α = 0.9). The unconstrained optimum is read-one/write-all —
//! great availability on paper, but writes succeed only when *all* copies
//! are reachable, which on a flaky ring is almost never. We sweep the
//! write-availability floor `A_w` and show the availability the operator
//! gives up for each guarantee level.

#![forbid(unsafe_code)]

use quorum_core::{QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::{run_static, CurveSet, RunConfig, Workload};

fn main() {
    let n = 21usize;
    let alpha = 0.90;
    let topology = Topology::ring(n);
    let total = n as u64;

    // Measure the component-vote distribution once.
    let results = run_static(
        &topology,
        VoteAssignment::uniform(n),
        QuorumSpec::from_read_quorum(total / 2, total).expect("valid"),
        Workload::uniform(n, alpha),
        RunConfig {
            params: SimParams {
                warmup_accesses: 3_000,
                batch_accesses: 50_000,
                min_batches: 4,
                max_batches: 8,
                ci_half_width: 0.01,
                ..SimParams::paper()
            },
            seed: 11,
            threads: 4,
        },
    );
    let curves = CurveSet::from_run(&results);

    let unconstrained = curves.optimal(alpha, SearchStrategy::Exhaustive);
    println!(
        "unconstrained optimum on {}: q_r={}, q_w={}, A={:.1}%, but writes succeed {:.2}% of the time\n",
        topology.name(),
        unconstrained.spec.q_r(),
        unconstrained.spec.q_w(),
        100.0 * unconstrained.availability,
        100.0 * unconstrained.write_availability,
    );

    println!("A_w floor   q_r   q_w   overall A   write A   cost vs unconstrained");
    for floor in [0.0, 0.30, 0.55, 0.60, 0.65, 0.70, 0.80] {
        match curves.optimal_with_write_floor(alpha, floor, SearchStrategy::Exhaustive) {
            Some(c) => println!(
                "{:>6.0}%    {:>3}   {:>3}   {:>6.1}%    {:>6.1}%   {:>6.1} pts",
                100.0 * floor,
                c.spec.q_r(),
                c.spec.q_w(),
                100.0 * c.availability,
                100.0 * c.write_availability,
                100.0 * (unconstrained.availability - c.availability),
            ),
            None => println!(
                "{:>6.0}%    unachievable on this network (even q_w = ⌈T/2⌉+1 misses it)",
                100.0 * floor
            ),
        }
    }
}
