//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! The workspace uses exactly one crossbeam facility: the unbounded MPMC
//! channel that backs the dynamic work queue in `quorum-bench`. This stub
//! provides it over `std::sync::mpsc` with a mutex-shared receiver —
//! semantically equivalent (FIFO, disconnect on all-senders-dropped),
//! trading crossbeam's lock-free hot path for simplicity.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned when sending into a channel with no receivers.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when every sender has disconnected and the queue is
    /// drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half of an unbounded channel; clones share one queue.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().expect("channel receiver poisoned");
            guard.recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn multi_consumer_drains_everything() {
            let (tx, rx) = unbounded::<usize>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut seen: Vec<usize> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || {
                            let mut got = Vec::new();
                            while let Ok(v) = rx.recv() {
                                got.push(v);
                            }
                            got
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            seen.sort_unstable();
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_after_receivers_dropped_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
