//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for [`vec`]: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty length range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy yielding `Vec`s of values from `element`, with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_length_from_usize() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = vec(0u8..4, 5usize);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut rng).len(), 5);
        }
    }

    #[test]
    fn ranged_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = vec(0u8..4, 1..6);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
    }
}
