//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the slice of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! tuple strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! `Strategy::prop_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! seed derived from the test name (no persistence file), and failures
//! are **not shrunk** — the failing input is printed as-is via the panic
//! message. For the regression-style properties in this workspace that
//! trade-off keeps runs fast, hermetic, and reproducible offline.

pub mod strategy;
pub mod test_runner;

pub mod collection;

#[allow(non_upper_case_globals)]
pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random::<bool>()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection`, `prop::bool`).
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Property-test analogue of `assert!`: fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test analogue of `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test analogue of `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` over `cases` generated inputs.
///
/// The per-test RNG seed is derived from the test name, so failures
/// reproduce exactly on re-run; the failing case index and arguments are
/// reported through the panic payload of the inner assertion.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __seed = $crate::test_runner::seed_from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::case_rng(__seed, __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.0f64..1.0, b in prop::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!(b || !b);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|k| k * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }

        #[test]
        fn tuples_and_just(pair in (0u8..3, prop::bool::ANY), c in Just(7i32)) {
            prop_assert!(pair.0 < 3);
            prop_assert_eq!(c, 7);
        }
    }

    #[test]
    fn default_macro_form_runs() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u8..2) {
                prop_assert!(x < 2);
            }
        }
        inner();
    }
}
