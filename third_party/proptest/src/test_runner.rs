//! Test-runner configuration and deterministic per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// FNV-1a hash of the test name: the per-test base seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// RNG for one case: base seed xor a well-spread case index.
pub fn case_rng(seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn name_seeds_differ() {
        assert_ne!(seed_from_name("a"), seed_from_name("b"));
    }

    #[test]
    fn case_rngs_are_deterministic_and_distinct() {
        let mut a = case_rng(7, 0);
        let mut b = case_rng(7, 0);
        let mut c = case_rng(7, 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn default_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(24).cases, 24);
    }
}
