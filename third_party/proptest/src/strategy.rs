//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

macro_rules! range_incl_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
range_incl_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn just_clones_value() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Just(5u8).generate(&mut rng), 5);
    }

    #[test]
    fn map_composes() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0u32..10).prop_map(|x| x as u64 + 100);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = 0u8..=1;
        let mut saw = [false; 2];
        for _ in 0..64 {
            saw[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(saw, [true, true]);
    }
}
