//! Deterministic generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Seeded from a `u64` by SplitMix64 expansion, matching the
/// recommendation of the xoshiro authors; the state can never be all
/// zero. Not the upstream `StdRng` stream (ChaCha12), but the same
/// contract: seeded, reproducible, statistically strong for simulation.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_never_all_zero() {
        // Even the degenerate zero seed expands to a mixed state.
        let rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.s, [0; 4]);
    }

    #[test]
    fn distinct_seeds_distinct_states() {
        let a = StdRng::seed_from_u64(1);
        let b = StdRng::seed_from_u64(2);
        assert_ne!(a.s, b.s);
    }
}
