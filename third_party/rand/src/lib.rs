//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no crates.io access, so the
//! pieces of `rand` 0.9 the workspace actually uses are vendored here:
//!
//! * [`RngCore`] / [`Rng`] with `random`, `random_range`, and `random_bool`;
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`rngs::StdRng`], a deterministic 64-bit generator (xoshiro256++).
//!
//! The statistical contract the simulator relies on — uniform, seeded,
//! reproducible streams with full 64-bit state mixing — is preserved; the
//! exact output stream differs from upstream `StdRng` (ChaCha12), so
//! seed-pinned numeric expectations recorded under the real crate will not
//! match bit-for-bit.

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`RngCore`].
pub trait FromUniform {
    /// Draws one uniformly-distributed value.
    fn from_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromUniform for u64 {
    fn from_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromUniform for u32 {
    fn from_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromUniform for bool {
    fn from_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromUniform for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn from_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromUniform for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn from_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiplies a uniform 64-bit draw into `[0, width)` (Lemire reduction;
/// `width = 0` encodes the full 2^64 span).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    if width == 0 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // width 2^64 (the full span) maps to the 0 sentinel.
                let width = (end as i128 - start as i128 + 1) as u64;
                start.wrapping_add(bounded_u64(rng, width) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as FromUniform>::from_uniform(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value of type `T`.
    fn random<T: FromUniform>(&mut self) -> T {
        T::from_uniform(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must lie in [0,1]");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it into the
    /// full state with SplitMix64 (never yields an all-zero state).
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn reproducible_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let z = rng.random_range(-4i32..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn full_u64_range_supported() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut hi = false;
        for _ in 0..64 {
            if rng.random_range(0u64..=u64::MAX) > u64::MAX / 2 {
                hi = true;
            }
        }
        assert!(hi, "full-width range should reach the upper half");
    }

    #[test]
    fn small_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.random_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
