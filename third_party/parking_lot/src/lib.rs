//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Provides the non-poisoning [`Mutex`]/[`RwLock`] API over the std
//! primitives. Poison errors are translated into panics-on-poison-holder
//! semantics: a lock whose holder panicked is simply re-entered, matching
//! parking_lot's behavior of not tracking poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable");
    }
}
