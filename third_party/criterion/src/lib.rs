//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Runs each benchmark closure through a short warm-up, then times a
//! fixed number of samples and prints min/median/mean per iteration.
//! No statistical regression analysis, plots, or saved baselines — just
//! enough to keep `cargo bench` runnable and comparable by eye offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Per-benchmark timing harness handed to the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, storing one duration sample per timed batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate the batch size to roughly 2 ms per sample so cheap
        // routines aren't dominated by timer resolution.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_sample as u64;
        let n_samples = self.samples.capacity().max(2);
        for _ in 0..n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {label}: min {} | median {} | mean {} ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        per_iter.len(),
        b.iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("k=1").label, "k=1");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(5e-9), "5.0 ns");
        assert_eq!(fmt_time(2.5e-3), "2.50 ms");
    }
}
