//! Cross-crate observability checks: the numbers flowing into a
//! `quorum_obs::Registry` must agree with the instrumented components'
//! own accounting, end to end — from a raw [`ComponentCache`] up through
//! the `validate_curves` sweep and its written manifest.

#![forbid(unsafe_code)]

use quorum_bench::validate::{run, ValidateOpts};
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::{ComponentCache, NetworkState, Topology};
use quorum_obs::{keys, Registry, RunManifest};
use quorum_replica::{run_static_observed, RunConfig, Workload};

fn tiny_params() -> SimParams {
    SimParams {
        warmup_accesses: 500,
        batch_accesses: 5_000,
        min_batches: 2,
        max_batches: 3,
        ci_half_width: 0.05,
        ..SimParams::paper()
    }
}

#[test]
fn registry_cache_counters_equal_cache_accounting() {
    // Drive a ComponentCache by hand: the counts it reports into a
    // registry must equal its own hits()/recomputations() exactly.
    let topo = Topology::ring_with_chords(11, 2);
    let votes = vec![1u64; 11];
    let mut state = NetworkState::all_up(&topo);
    let mut cache = ComponentCache::new();
    let mut queries = 0u64;
    for round in 0..25 {
        if round % 4 == 0 {
            state.set_site(round % 11, round % 8 != 0);
            cache.invalidate();
        }
        cache.view(&topo, &state, &votes);
        queries += 1;
    }
    let registry = Registry::new();
    cache.observe_into(&registry);
    let snap = registry.snapshot();
    assert_eq!(snap.counter(keys::CACHE_HITS), cache.hits());
    assert_eq!(
        snap.counter(keys::CACHE_RECOMPUTATIONS),
        cache.recomputations()
    );
    assert_eq!(cache.hits() + cache.recomputations(), queries);
}

#[test]
fn observed_run_agrees_with_cache_and_event_totals() {
    // The registry totals after a multi-batch observed run equal the
    // merged per-batch stats, and the cache counters add up to exactly
    // one cache query per dispatched access.
    let topo = Topology::ring_with_chords(13, 4);
    let registry = Registry::new();
    let res = run_static_observed(
        &topo,
        VoteAssignment::uniform(13),
        QuorumSpec::majority(13),
        Workload::uniform(13, 0.5),
        RunConfig {
            params: tiny_params(),
            seed: 11,
            threads: 2,
        },
        &registry,
    );
    let snap = registry.snapshot();
    assert_eq!(snap.counter(keys::CACHE_HITS), res.combined.cache_hits);
    assert_eq!(
        snap.counter(keys::CACHE_RECOMPUTATIONS),
        res.combined.cache_recomputations
    );
    assert_eq!(
        snap.counter(keys::DES_EVENTS),
        res.combined.events_processed
    );
    assert_eq!(
        snap.counter(keys::DES_ACCESSES),
        res.combined.accesses_dispatched
    );
    // The simulator queries the cache exactly once per access.
    assert_eq!(
        snap.counter(keys::CACHE_HITS) + snap.counter(keys::CACHE_RECOMPUTATIONS),
        snap.counter(keys::DES_ACCESSES)
    );
    // Every DES event is a site transition, a link transition, or an
    // access arrival.
    assert_eq!(
        snap.counter(keys::DES_EVENTS),
        res.combined.site_transitions
            + res.combined.link_transitions
            + res.combined.accesses_dispatched
    );
}

#[test]
fn validate_sweep_manifest_is_self_consistent() {
    // The acceptance-criteria path: the validate_curves sweep (tiny
    // scale, 101-site paper topology) must produce a manifest carrying
    // seed, sim params, batch count, per-phase timings, DES event count,
    // and cache hit/recompute counts that are self-consistent.
    let opts = ValidateOpts {
        chords: 0,
        seed: 42,
        threads: 2,
        params: tiny_params(),
        grid: vec![(0.5, 1), (0.5, 50)],
    };
    let report = run(&opts);
    let m = &report.manifest;

    assert_eq!(m.bin, "validate_curves");
    assert_eq!(m.seed, 42);
    assert_eq!(m.params.batch_accesses, 5_000);
    assert_eq!(m.params.fail_dist, "exponential");
    assert_eq!(m.topology.sites, 101);
    assert_eq!(m.votes.len(), 101);

    // Batch count covers the reference run plus both grid cells.
    assert_eq!(m.batches, m.counter(keys::RUN_BATCHES));
    assert!(m.batches >= 3 * opts.params.min_batches);

    // Per-phase wall-clock timings are present and non-trivial.
    assert!(m.phase_secs("validate.reference") > 0.0);
    assert!(m.phase_secs("validate.grid") > 0.0);
    assert!(m.phase_secs("replica.run_static") > 0.0);

    // DES event count and cache counters are present and consistent:
    // one cache query per dispatched access.
    assert!(m.counter(keys::DES_EVENTS) > 0);
    assert_eq!(
        m.counter(keys::CACHE_HITS) + m.counter(keys::CACHE_RECOMPUTATIONS),
        m.counter(keys::DES_ACCESSES)
    );

    // The CI-convergence trace ends at the reference run's batch count.
    assert!(!m.ci_trace.is_empty());
    assert!(m.ci_trace.last().unwrap().batches <= m.batches);

    // The whole manifest survives a JSON round-trip unchanged.
    let text = m.to_json().to_string_pretty();
    let back = RunManifest::parse(&text).expect("manifest parses back");
    assert_eq!(back.to_json(), m.to_json());

    // And the file-writing path produces the same JSON.
    let dir = std::env::temp_dir();
    let json_path = dir.join("quorum_obs_manifest_test.json");
    m.write_to(&json_path).expect("write JSON manifest");
    let from_disk = RunManifest::parse(&std::fs::read_to_string(&json_path).expect("read back"))
        .expect("parse from disk");
    assert_eq!(from_disk.to_json(), m.to_json());
    let csv_path = dir.join("quorum_obs_manifest_test.csv");
    m.write_to(&csv_path).expect("write CSV manifest");
    let csv = std::fs::read_to_string(&csv_path).expect("read CSV");
    assert!(csv.contains("seed"));
    let _ = std::fs::remove_file(json_path);
    let _ = std::fs::remove_file(csv_path);
}
