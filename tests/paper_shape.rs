//! End-to-end reproduction of the paper's §5.3 qualitative observations,
//! at reduced scale (CI-friendly) but with the full 101-site topologies.

#![forbid(unsafe_code)]

use quorum_core::metrics::AvailabilityMetric;
use quorum_core::{QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_des::SimParams;
use quorum_replica::scenario::{PaperScenario, PAPER_ALPHAS};
use quorum_replica::{run_static, CurveSet, RunConfig, RunResults, Workload};

const ACC: AvailabilityMetric = AvailabilityMetric::Accessibility;

fn run_scenario(chords: usize, seed: u64) -> RunResults {
    let topo = PaperScenario::new(chords).topology();
    run_static(
        &topo,
        VoteAssignment::uniform(101),
        QuorumSpec::from_read_quorum(50, 101).expect("(50, 52) of 101 satisfies both quorum rules"),
        Workload::uniform(101, 0.5),
        RunConfig {
            params: SimParams {
                warmup_accesses: 2_000,
                batch_accesses: 25_000,
                min_batches: 3,
                max_batches: 4,
                ci_half_width: 0.02,
                ..SimParams::paper()
            },
            seed,
            threads: 4,
        },
    )
}

#[test]
fn availability_at_q_r_one_is_point_96_alpha_for_every_topology() {
    // §5.3: "the availability at q_r = 1 is .96α", independent of topology
    // (a read succeeds iff the submitting site is up; a write needs every
    // copy, which essentially never happens).
    for chords in [0usize, 16] {
        let curves = CurveSet::from_run(&run_scenario(chords, 100 + chords as u64));
        for &alpha in &PAPER_ALPHAS {
            let a = curves.availability(ACC, alpha, 1);
            // At α = 0 the paper's "essentially never" is not exactly 0:
            // q_w = 101 means a write succeeds iff the whole network is up
            // and connected, which happens ≈ 0.96^101 ≈ 1.6% of the time,
            // and at this reduced scale (~2 failure cycles per batch) the
            // estimate of that small rate is noisy. Allow the floor.
            let tol = if alpha == 0.0 { 0.04 } else { 0.02 };
            assert!(
                (a - 0.96 * alpha).abs() < tol,
                "topology {chords}, α={alpha}: A(q_r=1) = {a}, expected ≈ {}",
                0.96 * alpha
            );
        }
    }
}

#[test]
fn all_alpha_curves_converge_at_majority_end() {
    // §5.3: "all curves for a given topology converge at q_r = ⌊T/2⌋".
    for chords in [0usize, 256] {
        let curves = CurveSet::from_run(&run_scenario(chords, 200 + chords as u64));
        let vals: Vec<f64> = PAPER_ALPHAS
            .iter()
            .map(|&a| curves.availability(ACC, a, 50))
            .collect();
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread < 0.05,
            "topology {chords}: spread {spread} at q_r = 50 (values {vals:?})"
        );
    }
}

#[test]
fn ring_maxima_lie_at_endpoints() {
    // §5.3: with the lone exception of topology 16 at α = .75, every curve
    // peaks at an endpoint. Check the ring, where the effect is strongest.
    let curves = CurveSet::from_run(&run_scenario(0, 300));
    for &alpha in &PAPER_ALPHAS {
        let opt = curves.optimal(alpha, SearchStrategy::Exhaustive);
        let at_lo = curves.availability(ACC, alpha, 1);
        let at_hi = curves.availability(ACC, alpha, 50);
        // Tie tolerance = the paper's own CI half-width (±0.5%): interior
        // q_r = 2 can edge out q_r = 1 by ~0.1% (q_w = 100 admits the
        // one-failure write states), which the paper's resolution cannot
        // distinguish from an endpoint maximum.
        let tol = 5e-3;
        let endpoint_attains = at_lo >= opt.availability - tol || at_hi >= opt.availability - tol;
        assert!(
            endpoint_attains,
            "ring α={alpha}: optimum {} at q_r={} not attained at an endpoint ({at_lo}, {at_hi})",
            opt.availability,
            opt.spec.q_r()
        );
    }
}

#[test]
fn dense_topology_availability_approaches_site_reliability() {
    // Figure 7: on topology 256 (≈ fully connected) every curve is nearly
    // flat at ≈ 96 % — the network almost never partitions, so the only
    // loss is the submitting site being down.
    let curves = CurveSet::from_run(&run_scenario(256, 400));
    for &alpha in &PAPER_ALPHAS {
        for q_r in [10u64, 25, 40, 50] {
            let a = curves.availability(ACC, alpha, q_r);
            assert!(
                (a - 0.96).abs() < 0.02,
                "topology 256 α={alpha} q_r={q_r}: A = {a}"
            );
        }
    }
}

#[test]
fn more_chords_never_hurt_availability() {
    // Adding links only improves connectivity: for the all-writes curve
    // (most sensitive to component size) topology 16 dominates the ring.
    let ring = CurveSet::from_run(&run_scenario(0, 500));
    let dense = CurveSet::from_run(&run_scenario(16, 501));
    for q_r in [10u64, 25, 40, 50] {
        let a0 = ring.availability(ACC, 0.0, q_r);
        let a16 = dense.availability(ACC, 0.0, q_r);
        assert!(
            a16 >= a0 - 0.02,
            "q_r={q_r}: topology 16 ({a16}) below ring ({a0})"
        );
    }
}

#[test]
fn measured_acc_matches_curve_prediction() {
    // The directly counted grant rate at the simulated spec must agree
    // with the histogram-derived curve value — the measurement and the
    // model are two views of the same process.
    let results = run_scenario(4, 600);
    let curves = CurveSet::from_run(&results);
    let direct = results.combined.availability();
    let predicted = curves.availability(ACC, 0.5, 50);
    assert!(
        (direct - predicted).abs() < 0.02,
        "direct {direct} vs predicted {predicted}"
    );
    assert!(results.is_one_copy_serializable());
}

#[test]
fn surv_metric_dominates_acc_metric() {
    // SURV asks "can anyone access" — always at least as available as ACC.
    let results = run_scenario(1, 700);
    let curves = CurveSet::from_run(&results);
    for &alpha in &[0.0, 0.5, 1.0] {
        for q_r in [1u64, 25, 50] {
            let acc = curves.availability(ACC, alpha, q_r);
            let surv = curves.availability(AvailabilityMetric::Survivability, alpha, q_r);
            // ACC and SURV come from different finite samples (per-kind
            // vs largest-component histograms), so allow sampling noise.
            assert!(
                surv >= acc - 1e-3,
                "α={alpha}, q_r={q_r}: SURV {surv} < ACC {acc}"
            );
        }
    }
}
