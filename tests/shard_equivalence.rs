//! Property pins for the SoA shard walk kernel: the batched sharded
//! engine and the naive binary-heap reference must produce **equal**
//! tallies — same per-object counter-RNG streams, same draw positions —
//! across every shard count (1, 2, odd, `== objects`), every thread
//! count, stripe-boundary object populations, and per-object optimized
//! assignment tables.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_shard::{FailureTimeline, ObjectCatalog, ShardEngine, ShardStats, STRIPE};

struct Fixture {
    topology: Topology,
    catalog: ObjectCatalog,
    timeline: FailureTimeline,
    horizon: f64,
    seed: u64,
}

impl Fixture {
    fn new(objects: u64, horizon: f64, seed: u64, per_object: bool) -> Self {
        let topology = Topology::ring_with_chords(13, 3);
        let mut catalog = ObjectCatalog::paper_mix(13, objects);
        if per_object {
            let density = quorum_core::analytic::ring_density(13, 0.96, 0.96);
            catalog = catalog.with_optimized_assignments(&density, 5, 0.2);
        }
        let timeline =
            FailureTimeline::build(&topology, &catalog, &SimParams::quick(), horizon, seed);
        Self {
            topology,
            catalog,
            timeline,
            horizon,
            seed,
        }
    }

    fn engine(&self) -> ShardEngine<'_> {
        ShardEngine::new(
            &self.topology,
            &self.catalog,
            &self.timeline,
            self.horizon,
            self.seed,
        )
    }

    fn sharded(&self, shards: u64, threads: usize) -> ShardStats {
        self.engine().run_sharded(shards, threads).0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core pin: for arbitrary populations and seeds, every shard
    /// partitioning (1, 2, odd, one-object shards) and thread count
    /// yields the exact naive tally.
    #[test]
    fn sharded_equals_naive_across_partitionings(
        objects in 3u64..160,
        seed in 0u64..1000,
        horizon in 5.0f64..60.0,
    ) {
        let f = Fixture::new(objects, horizon, seed, false);
        let naive = f.engine().run_naive();
        for shards in [1, 2, 5.min(objects), objects] {
            prop_assert_eq!(&f.sharded(shards, 1), &naive, "shards={}", shards);
        }
        prop_assert_eq!(&f.sharded(2.min(objects), 3), &naive, "threaded");
    }

    /// Same pin under per-object optimizer-fed assignments: expanding
    /// the assignment table must not perturb a single counter.
    #[test]
    fn per_object_assignments_preserve_equality(
        objects in 3u64..100,
        seed in 0u64..500,
    ) {
        let f = Fixture::new(objects, 30.0, seed, true);
        prop_assert!(f.catalog.num_assignments() > f.catalog.num_classes());
        let naive = f.engine().run_naive();
        for shards in [1, 3.min(objects), objects] {
            prop_assert_eq!(&f.sharded(shards, 2), &naive, "shards={}", shards);
        }
    }
}

/// Stripe-boundary sweep: populations straddling multiples of the
/// stripe width exercise partial trailing stripes in every shard.
#[test]
fn stripe_boundary_populations_match_naive() {
    let w = STRIPE as u64;
    for objects in [w - 1, w, w + 1, 2 * w - 1, 2 * w, 2 * w + 1] {
        let f = Fixture::new(objects, 20.0, 41, false);
        let naive = f.engine().run_naive();
        assert_eq!(f.sharded(1, 1), naive, "objects={objects} shards=1");
        assert_eq!(f.sharded(3, 1), naive, "objects={objects} shards=3");
        assert_eq!(f.sharded(objects, 2), naive, "objects={objects} shards=n");
    }
}

/// A single shard no longer panics and is bit-identical to any other
/// partitioning, including on catalogs smaller than one stripe.
#[test]
fn single_shard_small_catalogs_run() {
    for objects in [1u64, 2, 7] {
        let f = Fixture::new(objects, 15.0, 9, false);
        let naive = f.engine().run_naive();
        let (stats, conv) = f.engine().run_sharded(1, 1);
        assert_eq!(stats, naive, "objects={objects}");
        assert_eq!(conv.batches, 1);
        assert_eq!(stats.objects, objects);
    }
}

/// Thread-count invariance at a fixed partitioning — the converge
/// orchestrator merges in shard-index order, so counters are
/// bit-identical for 1, 2, and 4 workers.
#[test]
fn thread_counts_do_not_change_counters() {
    let f = Fixture::new(90, 40.0, 77, true);
    let base = f.sharded(6, 1);
    for threads in [2, 4] {
        assert_eq!(f.sharded(6, threads), base, "threads={threads}");
    }
}
