//! Property tests on the network substrate: component labelling agrees
//! with union-find on arbitrary random graphs and failure patterns, and
//! topology constructors maintain their structural invariants.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use quorum_graph::{ComponentView, NetworkState, Topology, UnionFind};
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BFS component labelling ≡ union-find over up links, on random
    /// G(n,p) graphs with random site/link failures.
    #[test]
    fn bfs_equals_union_find(
        n in 2usize..24,
        p in 0.0f64..1.0,
        graph_seed in 0u64..1_000,
        fail_bits in 0u64..u64::MAX,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(graph_seed);
        let topo = Topology::gnp(n, p, &mut rng);
        let mut state = NetworkState::all_up(&topo);
        // Derive failures from fail_bits.
        for s in 0..n {
            if fail_bits >> (s % 64) & 1 == 1 {
                state.set_site(s, false);
            }
        }
        for l in 0..topo.num_links() {
            if fail_bits >> ((l + 17) % 64) & 1 == 1 {
                state.set_link(l, false);
            }
        }
        let votes = vec![1u64; n];
        let view = ComponentView::compute(&topo, &state, &votes);
        let mut uf = UnionFind::new(n);
        for (idx, &(a, b)) in topo.links().iter().enumerate() {
            if state.link_up(idx) && state.site_up(a) && state.site_up(b) {
                uf.union(a, b);
            }
        }
        for a in 0..n {
            prop_assert_eq!(view.votes_of(a) == 0, !state.site_up(a));
            for b in 0..n {
                if state.site_up(a) && state.site_up(b) {
                    prop_assert_eq!(view.connected(a, b), uf.same(a, b));
                }
            }
        }
    }

    /// Component vote totals partition the up votes.
    #[test]
    fn component_votes_partition_up_votes(
        n in 2usize..20,
        p in 0.1f64..0.9,
        seed in 0u64..500,
        down_mask in 0u32..u32::MAX,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = Topology::gnp(n, p, &mut rng);
        let mut state = NetworkState::all_up(&topo);
        for s in 0..n {
            if down_mask >> (s % 32) & 1 == 1 {
                state.set_site(s, false);
            }
        }
        let votes = vec![1u64; n];
        let view = ComponentView::compute(&topo, &state, &votes);
        let total_in_components: u64 = view.component_votes().iter().sum();
        prop_assert_eq!(total_in_components, state.sites_up() as u64);
        prop_assert!(view.largest_component_votes() <= state.sites_up() as u64);
    }

    /// Ring-with-chords always embeds the ring and never duplicates links.
    #[test]
    fn chorded_ring_invariants(n in 5usize..40, frac in 0.0f64..1.0) {
        let max_chords = n * (n - 1) / 2 - n;
        let k = (frac * max_chords as f64) as usize;
        let topo = Topology::ring_with_chords(n, k);
        prop_assert_eq!(topo.num_links(), n + k);
        // Ring links present.
        for i in 0..n {
            let a = i;
            let b = (i + 1) % n;
            let key = (a.min(b), a.max(b));
            prop_assert!(topo.links().contains(&key), "missing ring link {key:?}");
        }
        // All links valid and unique (construction would panic otherwise,
        // so just probe adjacency symmetry).
        for s in 0..n {
            for &(nb, li) in topo.neighbors(s) {
                prop_assert!(topo.neighbors(nb).iter().any(|&(x, l)| x == s && l == li));
            }
        }
    }

    /// Degree sums to twice the link count on every constructor.
    #[test]
    fn handshake_lemma(kind in 0usize..6, size in 4usize..30) {
        let topo = match kind {
            0 => Topology::ring(size.max(3)),
            1 => Topology::fully_connected(size),
            2 => Topology::star(size),
            3 => Topology::grid(3, size.max(2)),
            4 => Topology::torus(3, size.max(3)),
            _ => Topology::path(size),
        };
        let degree_sum: usize = (0..topo.num_sites()).map(|s| topo.degree(s)).sum();
        prop_assert_eq!(degree_sum, 2 * topo.num_links());
    }

    /// A fully-up network is one component containing everything.
    #[test]
    fn fully_up_is_connected_for_connected_constructors(
        kind in 0usize..5,
        size in 4usize..30,
    ) {
        let topo = match kind {
            0 => Topology::ring(size.max(3)),
            1 => Topology::fully_connected(size),
            2 => Topology::star(size),
            3 => Topology::torus(3, size.max(3)),
            _ => Topology::grid(2, size.max(2)),
        };
        let n = topo.num_sites();
        let state = NetworkState::all_up(&topo);
        let view = ComponentView::compute(&topo, &state, &vec![1; n]);
        prop_assert_eq!(view.num_components(), 1);
        prop_assert_eq!(view.votes_of(0), n as u64);
    }
}

#[test]
fn hypercube_is_d_connected() {
    // Removing any d−1 sites leaves a d-cube connected (Menger); check a
    // sampled version: removing 3 sites from a 4-cube never disconnects
    // the rest.
    let topo = Topology::hypercube(4);
    let n = 16;
    let votes = vec![1u64; n];
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                let mut state = NetworkState::all_up(&topo);
                state.set_site(a, false);
                state.set_site(b, false);
                state.set_site(c, false);
                let view = ComponentView::compute(&topo, &state, &votes);
                assert_eq!(
                    view.num_components(),
                    1,
                    "removing {{{a},{b},{c}}} disconnected the 4-cube"
                );
            }
        }
    }
}
