//! Validates the §5.2 output-analysis methodology itself: batch
//! independence, CI calibration, and scale consistency.

#![forbid(unsafe_code)]

use quorum_core::{QuorumConsensus, QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::simulation::NullObserver;
use quorum_replica::{run_static, RunConfig, Simulation, Workload};
use quorum_stats::batch::lag1_autocorrelation;

fn batch_params(accesses: u64) -> SimParams {
    SimParams {
        warmup_accesses: 1_000,
        batch_accesses: accesses,
        ..SimParams::paper()
    }
}

#[test]
fn derived_seed_batches_are_serially_uncorrelated() {
    // The batch-means CI assumes independent batches; our batches use
    // disjoint derived seeds and full network resets, so the series of
    // batch availabilities must show no lag-1 autocorrelation.
    let topo = Topology::ring_with_chords(15, 3);
    let mut sim = Simulation::new(&topo, batch_params(8_000), Workload::uniform(15, 0.5), 7);
    let mut proto = QuorumConsensus::majority(15);
    let series: Vec<f64> = (0..24)
        .map(|_| sim.run_batch(&mut proto, &mut NullObserver).availability())
        .collect();
    let r = lag1_autocorrelation(&series);
    // |r| for 24 independent samples is ~N(0, 1/√24): 3σ ≈ 0.61.
    assert!(r.abs() < 0.61, "lag-1 autocorrelation {r}");
}

#[test]
fn confidence_interval_covers_the_long_run_mean() {
    // Run many short independent experiments; their 95% CIs should cover
    // the pooled (best-estimate) mean most of the time. With 10 trials,
    // ≥ 6 covering is a loose 3σ-safe bound for a calibrated CI.
    let topo = Topology::ring(11);
    let spec = QuorumSpec::from_read_quorum(3, 11).unwrap();
    let runs: Vec<_> = (0..10)
        .map(|i| {
            run_static(
                &topo,
                VoteAssignment::uniform(11),
                spec,
                Workload::uniform(11, 0.5),
                RunConfig {
                    params: SimParams {
                        warmup_accesses: 1_000,
                        batch_accesses: 10_000,
                        min_batches: 4,
                        max_batches: 4,
                        ci_half_width: 1e-9, // always use all 4 batches
                        ..SimParams::paper()
                    },
                    seed: 1000 + i,
                    threads: 2,
                },
            )
        })
        .collect();
    let pooled: f64 = runs.iter().map(|r| r.availability()).sum::<f64>() / runs.len() as f64;
    let covering = runs
        .iter()
        .filter(|r| r.interval().expect("4 batches").contains(pooled))
        .count();
    assert!(
        covering >= 6,
        "only {covering}/10 CIs covered the pooled mean {pooled}"
    );
}

#[test]
fn longer_batches_tighten_the_interval() {
    let topo = Topology::ring(11);
    let spec = QuorumSpec::majority(11);
    let run = |accesses: u64| {
        run_static(
            &topo,
            VoteAssignment::uniform(11),
            spec,
            Workload::uniform(11, 0.5),
            RunConfig {
                params: SimParams {
                    warmup_accesses: 1_000,
                    batch_accesses: accesses,
                    min_batches: 5,
                    max_batches: 5,
                    ci_half_width: 1e-9,
                    ..SimParams::paper()
                },
                seed: 5,
                threads: 2,
            },
        )
        .interval()
        .expect("5 batches")
        .half_width
    };
    let short = run(4_000);
    let long = run(40_000);
    assert!(
        long < short,
        "10× batch size should tighten the CI: {short} → {long}"
    );
}

#[test]
fn convergence_loop_stops_early_when_tight() {
    // With a generous CI target the run should stop at min_batches; with
    // an impossible target it should exhaust max_batches.
    let topo = Topology::fully_connected(9); // low-variance system
    let spec = QuorumSpec::majority(9);
    let mk = |target: f64| RunConfig {
        params: SimParams {
            warmup_accesses: 500,
            batch_accesses: 10_000,
            min_batches: 3,
            max_batches: 9,
            ci_half_width: target,
            ..SimParams::paper()
        },
        seed: 8,
        threads: 3,
    };
    let loose = run_static(
        &topo,
        VoteAssignment::uniform(9),
        spec,
        Workload::uniform(9, 0.5),
        mk(0.05),
    );
    assert_eq!(loose.batches, 3, "loose target stops at min_batches");
    let strict = run_static(
        &topo,
        VoteAssignment::uniform(9),
        spec,
        Workload::uniform(9, 0.5),
        mk(1e-12),
    );
    assert_eq!(strict.batches, 9, "impossible target exhausts max_batches");
}

#[test]
fn warmup_removes_initial_state_bias() {
    // The network starts all-up, so an unwarmed batch over-estimates
    // availability; the paper discards 100k accesses for this reason.
    // Use write availability on a ring (most sensitive to the all-up
    // start: q_w-sized components are common only early on).
    let topo = Topology::ring(21);
    let spec = QuorumSpec::from_read_quorum(2, 21).unwrap(); // q_w = 20
    let run = |warmup: u64, seed: u64| {
        // Short measured window: the all-up bias spans only the first
        // ~3·μ_r ≈ 16 time units (≈ 340 accesses at 21 sites), so a long
        // batch dilutes it below noise.
        let params = SimParams {
            warmup_accesses: warmup,
            batch_accesses: 1_500,
            ..SimParams::paper()
        };
        let mut sim = Simulation::new(&topo, params, Workload::uniform(21, 0.0), seed);
        let mut proto = QuorumConsensus::new(VoteAssignment::uniform(21), spec);
        sim.run_batch(&mut proto, &mut NullObserver)
            .write_availability()
    };
    // Average several seeds to stabilize.
    let cold: f64 = (0..12).map(|s| run(0, 100 + s)).sum::<f64>() / 12.0;
    let warm: f64 = (0..12).map(|s| run(20_000, 100 + s)).sum::<f64>() / 12.0;
    assert!(
        cold > warm + 0.02,
        "cold start should inflate write availability: cold {cold} vs warm {warm}"
    );
}
