//! End-to-end weighted-vote scenarios: the full pipeline (simulate →
//! estimate per-site densities → Figure-1 optimize → re-simulate at the
//! chosen assignment) with non-uniform votes, which the paper supports in
//! the protocol (§2.1) but does not exercise in its own study (§5.1).

#![forbid(unsafe_code)]

use quorum_core::metrics::AvailabilityMetric;
use quorum_core::{QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::simulation::NullObserver;
use quorum_replica::{run_static, CurveSet, RunConfig, Simulation, Workload};
use quorum_stats::VoteHistogram;

fn params() -> SimParams {
    SimParams {
        warmup_accesses: 2_000,
        batch_accesses: 40_000,
        min_batches: 3,
        max_batches: 4,
        ci_half_width: 0.05,
        ..SimParams::paper()
    }
}

#[test]
fn weighted_votes_change_the_vote_distribution_not_the_site_distribution() {
    // Hub gets 5 votes on a 9-star: the access-instant histogram now lives
    // on 0..=13 votes and concentrates differently, but the protocol and
    // checker must stay consistent.
    let topo = Topology::star(9);
    let votes = VoteAssignment::weighted(vec![5, 1, 1, 1, 1, 1, 1, 1, 1]);
    let total = votes.total(); // 13
    let spec = QuorumSpec::majority(total);
    let results = run_static(
        &topo,
        votes,
        spec,
        Workload::uniform(9, 0.5),
        RunConfig {
            params: params(),
            seed: 91,
            threads: 4,
        },
    );
    assert!(results.is_one_copy_serializable());
    let d = results.combined.access_votes.estimate();
    assert_eq!(d.max_votes(), 13);
    // A leaf reaching the hub sees ≥ 6 votes; hub-disconnected leaves see
    // exactly 1. Mass at 2..=5 requires ≥2 leaves w/o the hub — impossible
    // on a star.
    for v in 2..=5 {
        assert_eq!(d.pmf(v), 0.0, "impossible vote total {v}");
    }
}

#[test]
fn optimizer_on_weighted_histogram_beats_naive_majority() {
    // Measure the weighted star, optimize, and verify the chosen spec's
    // re-simulated availability meets or beats uniform-majority's.
    let topo = Topology::star(9);
    let votes = VoteAssignment::weighted(vec![5, 1, 1, 1, 1, 1, 1, 1, 1]);
    let total = votes.total();
    let alpha = 0.75;

    let calib = run_static(
        &topo,
        votes.clone(),
        QuorumSpec::majority(total),
        Workload::uniform(9, alpha),
        RunConfig {
            params: params(),
            seed: 92,
            threads: 4,
        },
    );
    let curves = CurveSet::from_run(&calib);
    let opt = curves.optimal(alpha, SearchStrategy::Exhaustive);

    let rerun = |spec: QuorumSpec, seed: u64| {
        run_static(
            &topo,
            votes.clone(),
            spec,
            Workload::uniform(9, alpha),
            RunConfig {
                params: params(),
                seed,
                threads: 4,
            },
        )
        .availability()
    };
    let a_opt = rerun(opt.spec, 93);
    let a_majority = rerun(QuorumSpec::majority(total), 93);
    assert!(
        a_opt >= a_majority - 0.01,
        "optimized {a_opt} should not lose to majority {a_majority}"
    );
}

#[test]
fn primary_copy_via_votes_matches_primary_copy_protocol() {
    // All votes at site 0 with q = 1 is the primary-copy protocol; the
    // weighted-vote simulation and the named constructor must agree.
    let topo = Topology::ring_with_chords(9, 2);
    let run_weighted = || {
        let votes = VoteAssignment::primary_copy(9, 0);
        let spec = QuorumSpec::new(1, 1, 1).unwrap();
        let mut sim = Simulation::with_votes(
            &topo,
            params(),
            votes.clone(),
            Workload::uniform(9, 0.5),
            94,
        );
        let mut proto = quorum_core::QuorumConsensus::new(votes, spec);
        sim.run_batch(&mut proto, &mut NullObserver)
    };
    let run_named = || {
        let mut sim = Simulation::with_votes(
            &topo,
            params(),
            VoteAssignment::primary_copy(9, 0),
            Workload::uniform(9, 0.5),
            94,
        );
        let mut proto = quorum_core::QuorumConsensus::primary_copy(9, 0);
        sim.run_batch(&mut proto, &mut NullObserver)
    };
    let a = run_weighted();
    let b = run_named();
    assert_eq!(a.reads_granted, b.reads_granted);
    assert_eq!(a.writes_granted, b.writes_granted);
    assert_eq!(a.stale_reads, 0);
    assert_eq!(b.write_conflicts, 0);
}

#[test]
fn zero_vote_observers_never_contribute_to_quorums() {
    // Sites with zero votes are read-only caches: they may host accesses
    // (and fail), but quorum arithmetic must ignore them.
    let topo = Topology::fully_connected(6);
    let votes = VoteAssignment::weighted(vec![1, 1, 1, 0, 0, 0]);
    let spec = QuorumSpec::majority(votes.total()); // (2,2) over T = 3
    let results = run_static(
        &topo,
        votes,
        spec,
        Workload::uniform(6, 0.5),
        RunConfig {
            params: params(),
            seed: 95,
            threads: 2,
        },
    );
    assert!(results.is_one_copy_serializable());
    let d = results.combined.access_votes.estimate();
    assert_eq!(d.max_votes(), 3, "histogram support is the vote total");
    // An access at an up zero-vote site still sees the voting sites'
    // component: mass at 3 should dominate on a complete graph.
    assert!(d.pmf(3) > 0.7, "P[v=3] = {}", d.pmf(3));
}

#[test]
fn surv_with_weighted_votes_counts_votes_not_sites() {
    // 3-vote site 0 plus four 1-vote sites (T = 7, majority (4,4)): a
    // component {0, any one other} holds 4 votes — SURV must credit it.
    let topo = Topology::fully_connected(5);
    let votes = VoteAssignment::weighted(vec![3, 1, 1, 1, 1]);
    let spec = QuorumSpec::majority(votes.total());
    let mut sim = Simulation::with_votes(
        &topo,
        params(),
        votes.clone(),
        Workload::uniform(5, 0.5),
        96,
    )
    .probe_survivability(true);
    let mut proto = quorum_core::QuorumConsensus::new(votes, spec);
    let stats = sim.run_batch(&mut proto, &mut NullObserver);
    assert!(stats.surv_availability() >= stats.availability());
    assert!(stats.surv_availability() > 0.9);
}

#[test]
fn weighted_curveset_domain_follows_votes() {
    let topo = Topology::ring(5);
    let votes = VoteAssignment::weighted(vec![2, 2, 2, 2, 2]); // T = 10
    let results = run_static(
        &topo,
        votes,
        QuorumSpec::majority(10),
        Workload::uniform(5, 0.5),
        RunConfig {
            params: params(),
            seed: 97,
            threads: 2,
        },
    );
    let curves = CurveSet::from_run(&results);
    assert_eq!(curves.total_votes(), 10);
    assert_eq!(
        curves.curve(AvailabilityMetric::Accessibility, 0.5).len(),
        5
    );
}
