//! Universal availability bounds (§3 and the companion result [15]):
//! for ANY consistency-control protocol,
//!
//! * ACC is upper-bounded by the submitting site's reliability (the site
//!   must be up to submit) — replication cannot beat `p` on ACC;
//! * SURV is lower-bounded by single-site reliability in the sense that a
//!   single unreplicated copy achieves `p`, and upper-bounded by 1.
//!
//! Verified here for every protocol in the workspace on the same topology
//! and seed.

#![forbid(unsafe_code)]

use quorum_core::protocol::ConsistencyProtocol;
use quorum_core::{
    CoterieProtocol, DynamicVoting, QrProtocol, QuorumConsensus, QuorumSpec, ReadWriteCoterie,
    VoteAssignment,
};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::simulation::NullObserver;
use quorum_replica::{Simulation, Workload};

fn params() -> SimParams {
    SimParams {
        warmup_accesses: 1_000,
        batch_accesses: 25_000,
        ..SimParams::paper()
    }
}

fn run(proto: &mut dyn DynProtocol, topo: &Topology, seed: u64) -> (f64, f64) {
    let n = topo.num_sites();
    let mut sim =
        Simulation::new(topo, params(), Workload::uniform(n, 0.5), seed).probe_survivability(true);
    let stats = proto.run(&mut sim);
    (stats.availability(), stats.surv_availability())
}

/// Object-safe adapter so one loop can drive differently-typed protocols.
trait DynProtocol {
    fn run(&mut self, sim: &mut Simulation) -> quorum_replica::BatchStats;
}

impl<P: ConsistencyProtocol> DynProtocol for P {
    fn run(&mut self, sim: &mut Simulation) -> quorum_replica::BatchStats {
        sim.run_batch(self, &mut NullObserver)
    }
}

#[test]
fn no_protocol_beats_site_reliability_on_acc() {
    let topo = Topology::ring_with_chords(13, 4);
    let p = 0.96;
    let tolerance = 0.01; // CI noise at this scale

    let mut protocols: Vec<(&str, Box<dyn DynProtocol>)> = vec![
        ("majority", Box::new(QuorumConsensus::majority(13))),
        ("rowa", Box::new(QuorumConsensus::read_one_write_all(13))),
        (
            "optimal-ish",
            Box::new(QuorumConsensus::new(
                VoteAssignment::uniform(13),
                QuorumSpec::from_read_quorum(3, 13).unwrap(),
            )),
        ),
        (
            "qr",
            Box::new(QrProtocol::new(
                VoteAssignment::uniform(13),
                QuorumSpec::majority(13),
            )),
        ),
        ("dynamic-voting", Box::new(DynamicVoting::new(13))),
        (
            "coterie",
            Box::new(CoterieProtocol::new(ReadWriteCoterie::from_quorums(
                &VoteAssignment::uniform(13),
                QuorumSpec::majority(13),
            ))),
        ),
        (
            "primary-copy",
            Box::new(QuorumConsensus::primary_copy(13, 0)),
        ),
    ];

    for (name, proto) in protocols.iter_mut() {
        let topo = if *name == "primary-copy" {
            // Primary copy needs the matching vote assignment; run it on
            // its own sim below instead.
            continue;
        } else {
            &topo
        };
        let (acc, surv) = run(proto.as_mut(), topo, 313);
        assert!(
            acc <= p + tolerance,
            "{name}: ACC {acc} exceeds the site-reliability bound {p}"
        );
        assert!(surv >= acc - 1e-3, "{name}: SURV {surv} below ACC {acc}");
        assert!(surv <= 1.0 + 1e-12);
    }
}

#[test]
fn primary_copy_bound() {
    // Primary copy: ACC ≤ p(submitter) · P(reach primary) ≤ p.
    let topo = Topology::ring_with_chords(13, 4);
    let n = topo.num_sites();
    let mut sim = Simulation::with_votes(
        &topo,
        params(),
        VoteAssignment::primary_copy(n, 0),
        Workload::uniform(n, 0.5),
        313,
    );
    let mut proto = QuorumConsensus::primary_copy(n, 0);
    let stats = sim.run_batch(&mut proto, &mut NullObserver);
    assert!(stats.availability() <= 0.97);
    assert_eq!(stats.stale_reads, 0);
}

#[test]
fn single_copy_realizes_the_surv_floor() {
    // §3: "the reliability of a single site is a lower bound for SURV,
    // since SURV is always realizable by a single copy". Simulate the
    // single-copy system and check it achieves ≈ p on SURV.
    // The up/down process of one site is strongly autocorrelated (~8
    // renewal cycles per 1000 time units), so average over several
    // independent batches to tame the standard error.
    let topo = Topology::ring(5);
    let mut sim = Simulation::with_votes(
        &topo,
        SimParams {
            warmup_accesses: 1_000,
            batch_accesses: 50_000,
            ..SimParams::paper()
        },
        VoteAssignment::primary_copy(5, 2),
        Workload::uniform(5, 0.5),
        314,
    )
    .probe_survivability(true);
    let mut proto = QuorumConsensus::primary_copy(5, 2);
    let mut surv_sum = 0.0;
    let batches = 6;
    for _ in 0..batches {
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        surv_sum += stats.surv_availability();
    }
    let surv = surv_sum / batches as f64;
    assert!(
        (surv - 0.96).abs() < 0.02,
        "single-copy SURV {surv} should equal site reliability"
    );
}
