//! Cross-validates the §4.2 closed forms against the full simulator: the
//! same stochastic model implemented twice (algebra vs discrete events)
//! must produce the same component-vote distributions and, downstream, the
//! same optimal quorum assignments.

#![forbid(unsafe_code)]

use quorum_core::analytic::{fully_connected_density, ring_density, star_densities};
use quorum_core::{AvailabilityModel, QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::{run_static, CurveSet, RunConfig, Workload};
use quorum_stats::VoteHistogram;

fn simulate(topo: &Topology, seed: u64) -> quorum_replica::RunResults {
    let n = topo.num_sites();
    run_static(
        topo,
        VoteAssignment::uniform(n),
        QuorumSpec::from_read_quorum(n as u64 / 2, n as u64)
            .expect("floor(n/2) reads of n total always satisfy both quorum rules"),
        Workload::uniform(n, 0.5),
        RunConfig {
            params: SimParams {
                warmup_accesses: 3_000,
                batch_accesses: 60_000,
                min_batches: 4,
                max_batches: 4,
                ci_half_width: 0.05,
                ..SimParams::paper()
            },
            seed,
            threads: 4,
        },
    )
}

#[test]
fn simulated_ring_density_matches_closed_form() {
    let n = 21;
    let results = simulate(&Topology::ring(n), 42);
    let empirical = results.combined.access_votes.estimate();
    let analytic = ring_density(n, 0.96, 0.96);
    let tv = empirical.total_variation(&analytic);
    assert!(tv < 0.03, "total variation {tv}");
    assert!((empirical.mean() - analytic.mean()).abs() < 0.6);
}

#[test]
fn simulated_fc_density_matches_gilbert_formula() {
    let n = 21;
    let results = simulate(&Topology::fully_connected(n), 43);
    let empirical = results.combined.access_votes.estimate();
    let analytic = fully_connected_density(n, 0.96, 0.96);
    let tv = empirical.total_variation(&analytic);
    assert!(tv < 0.03, "total variation {tv}");
}

#[test]
fn analytic_and_simulated_models_pick_same_quorums() {
    // The argmax is the decision that matters: both routes to f(v) must
    // lead the Figure-1 optimizer to (nearly) the same assignment.
    let n = 21usize;
    for (topo, density) in [
        (Topology::ring(n), ring_density(n, 0.96, 0.96)),
        (
            Topology::fully_connected(n),
            fully_connected_density(n, 0.96, 0.96),
        ),
    ] {
        let analytic_model = AvailabilityModel::from_mixtures(&density, &density);
        let sim_curves = CurveSet::from_run(&simulate(&topo, 44));
        for &alpha in &[0.0, 0.5, 1.0] {
            let a = quorum_core::optimal::optimal_quorum(
                &analytic_model,
                alpha,
                SearchStrategy::Exhaustive,
            );
            let s = sim_curves.optimal(alpha, SearchStrategy::Exhaustive);
            // Values must agree; argmaxes may differ on flat stretches.
            let a_at_s = alpha * analytic_model.read_availability(s.spec.q_r())
                + (1.0 - alpha) * analytic_model.write_availability(s.spec.q_w());
            assert!(
                (a.availability - a_at_s).abs() < 0.03,
                "{}, α={alpha}: analytic opt {} (q_r={}), simulated pick {} (q_r={})",
                topo.name(),
                a.availability,
                a.spec.q_r(),
                a_at_s,
                s.spec.q_r()
            );
        }
    }
}

#[test]
fn analytic_availability_predicts_simulated_availability() {
    // Closed form → A(α, q_r); simulator → measured grant rate at that
    // exact spec. They must coincide within CI noise.
    let n = 21usize;
    let topo = Topology::ring(n);
    let density = ring_density(n, 0.96, 0.96);
    let model = AvailabilityModel::from_mixtures(&density, &density);
    let alpha = 0.5;
    let q_r = 5u64;
    let predicted = model.availability(alpha, q_r);

    let results = run_static(
        &topo,
        VoteAssignment::uniform(n),
        QuorumSpec::from_read_quorum(q_r, n as u64).unwrap(),
        Workload::uniform(n, alpha),
        RunConfig {
            params: SimParams {
                warmup_accesses: 3_000,
                batch_accesses: 60_000,
                min_batches: 4,
                max_batches: 4,
                ci_half_width: 0.05,
                ..SimParams::paper()
            },
            seed: 45,
            threads: 4,
        },
    );
    let measured = results.combined.availability();
    assert!(
        (predicted - measured).abs() < 0.02,
        "predicted {predicted} vs measured {measured}"
    );
}

#[test]
fn star_per_site_densities_match_simulation() {
    // The star's hub and leaves have DIFFERENT f_i — the first asymmetric
    // case. Validate each against the per-site simulated histograms.
    let n = 13usize;
    let topo = Topology::star(n);
    let results = simulate(&topo, 48);
    let analytic = star_densities(n, 0.96, 0.96);
    #[allow(clippy::needless_range_loop)]
    for site in 0..n {
        let empirical = results.combined.per_site_votes[site].estimate();
        let tv = empirical.total_variation(&analytic[site]);
        assert!(tv < 0.05, "site {site}: TV {tv}");
    }
    // And the mixture model predicts the aggregate availability.
    let frac = vec![1.0 / n as f64; n];
    let model = quorum_core::AvailabilityModel::from_site_densities(&analytic, &frac, &frac);
    let curves = CurveSet::from_run(&results);
    for q_r in [1u64, 3, 6] {
        let a = model.availability(0.5, q_r);
        let b = curves.availability(
            quorum_core::metrics::AvailabilityMetric::Accessibility,
            0.5,
            q_r,
        );
        assert!((a - b).abs() < 0.02, "q_r={q_r}: analytic {a} vs sim {b}");
    }
}

#[test]
fn largest_component_bounds_access_component() {
    // Internal consistency of the two histograms every run collects.
    let results = simulate(&Topology::ring(15), 46);
    let acc_mean = results.combined.access_votes.estimate().mean();
    let surv_mean = results.combined.largest_votes.estimate().mean();
    assert!(
        surv_mean >= acc_mean,
        "largest-component mean {surv_mean} below access mean {acc_mean}"
    );
}
