//! Property-based safety for the message-level cluster: the version
//! freshness invariant (no committed read returns a version older than
//! the newest write committed before the read was submitted) must hold
//! under arbitrary latency, loss, failures, and in-flight quorum
//! reassignments — and the `commit_on_grant` ablation must demonstrably
//! break it, proving the checker has teeth.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use quorum_cluster::{
    jointly_safe, run_cluster_observed, ClusterConfig, ClusterEngine, ClusterStats, InstallStep,
    LatencyDist, NetConfig, RunOptions,
};
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_obs::Registry;
use quorum_replica::Workload;

fn quick_params() -> SimParams {
    SimParams {
        warmup_accesses: 200,
        batch_accesses: 2_500,
        ..SimParams::paper()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The safe two-phase protocol keeps every committed read fresh for
    /// arbitrary topologies, seeds, workload mixes, loss rates, and
    /// latency scales — including with a jointly-safe quorum
    /// reassignment propagating mid-batch.
    #[test]
    fn two_phase_protocol_keeps_reads_fresh(
        topo_kind in 0usize..3,
        seed in 0u64..1_000,
        alpha in 0.0f64..1.0,
        loss in 0.0f64..0.35,
        lat_mean in 0.005f64..0.08,
    ) {
        let topo = match topo_kind {
            0 => Topology::ring(9),
            1 => Topology::fully_connected(9),
            _ => Topology::ring_with_chords(9, 2),
        };
        let n = topo.num_sites();
        let total = n as u64;
        let initial = QuorumSpec::majority(total);
        let installed = QuorumSpec::new(5, 6, total).unwrap();
        prop_assert!(jointly_safe(initial, installed));

        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Exponential { mean: lat_mean },
            loss,
        };
        cfg.installs = vec![InstallStep { at: 40.0, origin: 2, spec: installed }];
        let mut engine =
            ClusterEngine::new(&topo, cfg, initial, Workload::uniform(n, alpha), seed);
        let stats = engine.run_batch();

        prop_assert_eq!(
            stats.freshness_violations, 0,
            "stale committed read on {} (seed {}, loss {:.2}, latency {:.3})",
            topo.name(), seed, loss, lat_mean
        );
        // The run has to exercise the invariant, not vacuously pass.
        prop_assert!(stats.committed() > 0, "nothing committed on {}", topo.name());
    }

    /// Installs landing *inside* retry windows — the schedule that used
    /// to mix votes across epochs — keep every committed read fresh,
    /// and the merged counters are identical whether the batches run on
    /// one thread or two. The second half pins that the epoch-reset
    /// bookkeeping (`cross_epoch_resets`, `stale_grants_ignored`) lives
    /// in the deterministic per-batch world, not in scheduling noise.
    #[test]
    fn installs_inside_retries_stay_fresh_and_thread_deterministic(
        seed in 0u64..500,
        loss in 0.15f64..0.4,
        timeout in 0.12f64..0.3,
    ) {
        let topo = Topology::fully_connected(9);
        // Short timeout against this latency forces real retry rounds;
        // two staggered installs land inside those windows.
        let mut params = quick_params();
        params.max_batches = params.min_batches; // fixed batch count
        let mut cfg = ClusterConfig::new(params);
        cfg.net = NetConfig {
            latency: LatencyDist::Exponential { mean: 0.06 },
            loss,
        };
        cfg.session_timeout = timeout;
        cfg.max_retries = 3;
        cfg.installs = vec![
            InstallStep { at: 25.0, origin: 2, spec: QuorumSpec::new(5, 6, 9).unwrap() },
            InstallStep { at: 55.0, origin: 6, spec: QuorumSpec::majority(9) },
        ];

        let run = |threads: usize| {
            run_cluster_observed(
                &topo,
                &cfg,
                QuorumSpec::majority(9),
                VoteAssignment::uniform(9),
                Workload::uniform(9, 0.6),
                RunOptions::threaded(seed, threads),
                &Registry::new(),
            )
        };
        let one = run(1);
        let two = run(2);

        prop_assert_eq!(
            one.combined.freshness_violations, 0,
            "stale committed read with installs inside retries (seed {})",
            seed
        );
        // The schedule must actually exercise the retry machinery.
        prop_assert!(one.combined.retries > 0, "no retries at loss {loss:.2}");
        prop_assert!(one.combined.committed() > 0, "nothing committed");

        let fingerprint = |s: &ClusterStats| (
            s.reads_submitted, s.writes_submitted,
            s.reads_committed, s.writes_committed,
            s.retries, s.cross_epoch_resets, s.stale_grants_ignored,
            s.messages_sent, s.messages_delivered, s.messages_dropped,
            s.freshness_violations,
        );
        prop_assert_eq!(
            fingerprint(&one.combined),
            fingerprint(&two.combined),
            "thread count changed merged counters (seed {})",
            seed
        );
        prop_assert_eq!(one.batches, two.batches);
    }

    /// Negative direction: committing writes on the grant round (before
    /// a write quorum holds the new version) lets lossy networks strand
    /// stale replicas, and the checker must flag the resulting reads.
    /// A stale read needs a read to land in the commit-propagation
    /// window, so a single short batch can get lucky — accumulate
    /// batches until the violation shows (bounded at four).
    #[test]
    fn commit_on_grant_ablation_is_detected(seed in 0u64..200) {
        let topo = Topology::fully_connected(9);
        let mut cfg = ClusterConfig::new(quick_params());
        cfg.net = NetConfig {
            latency: LatencyDist::Constant(0.12),
            loss: 0.4,
        };
        cfg.commit_on_grant = true;
        let mut engine = ClusterEngine::new(
            &topo,
            cfg,
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            seed,
        );
        let mut violations = 0;
        for batch in 0..4 {
            violations += engine.run_indexed_batch(batch).freshness_violations;
            if violations > 0 {
                break;
            }
        }
        prop_assert!(
            violations > 0,
            "unsafe early commit under 40% loss must produce a stale read (seed {})",
            seed
        );
    }
}

/// Unsafe install scripts are rejected up front: a pair of specs whose
/// read/write quorums don't intersect across the transition would let
/// old-assignment readers miss new-assignment writes.
#[test]
#[should_panic(expected = "not jointly safe")]
fn unsafe_install_script_is_rejected() {
    let topo = Topology::ring(9);
    let mut cfg = ClusterConfig::new(quick_params());
    // (2, 8) vs majority (5, 5): 2 + 5 = 7 ≤ 9 — a (2)-read under the
    // new spec can miss a (5)-write under the old one.
    cfg.installs = vec![InstallStep {
        at: 10.0,
        origin: 0,
        spec: QuorumSpec::new(2, 8, 9).unwrap(),
    }];
    let _ = ClusterEngine::new(
        &topo,
        cfg,
        QuorumSpec::majority(9),
        Workload::uniform(9, 0.5),
        1,
    );
}
