//! Integration tests for the `quorum-mc` bounded explorer.
//!
//! The model checker drives the engine's real `ProtocolCore` through
//! every reachable interleaving of a scripted universe. These tests pin
//! the three headline claims of the checker:
//!
//! 1. Exploration of the standard bug-hunting universe is *exhaustive*
//!    within its bounds (nothing depth-truncated, nothing state-capped),
//!    and the fixed engine has **zero** violations in every reachable
//!    state.
//! 2. The `mix_epoch_votes` ablation — the pre-fix retry behavior —
//!    makes the same checker find cross-epoch vote mixing, so the
//!    checker demonstrably *can* catch the bug it certifies the absence
//!    of.
//! 3. The search is deterministic, and the soundness-critical reduction
//!    and symmetry options change cost, never verdicts.
//!
//! The full standard universe (partition toggles enabled) runs ~2.5M
//! states in release; debug-mode tests trim it to the fully-connected
//! mode (`max_net_changes = 0`, ~600k states), which still reaches the
//! mixing bug through both of its channels. CI's `model-check` job runs
//! the untrimmed universe through the release binary.

#![forbid(unsafe_code)]

use quorum_mc::{explore, ExploreOptions, Universe};

/// The standard universe with partition toggles disabled: small enough
/// for debug-mode exhaustion, still containing the install/retry races.
fn trimmed_standard() -> Universe {
    let mut u = Universe::standard();
    u.max_net_changes = 0;
    u
}

#[test]
fn fixed_engine_certifies_clean_exhaustively() {
    let report = explore(&trimmed_standard(), &ExploreOptions::default());
    assert!(
        report.exhaustive(),
        "exploration must be exhaustive: {report:?}"
    );
    assert_eq!(report.violations(), 0, "fixed engine violated: {report:?}");
    // The space is non-trivial: the certificate quantifies over a real
    // state count, not a degenerate handful.
    assert!(
        report.states_explored > 100_000,
        "suspiciously small space: {report:?}"
    );
}

#[test]
fn ablation_is_caught_by_the_checker() {
    let opts = ExploreOptions {
        mix_epoch_votes: true,
        ..ExploreOptions::default()
    };
    let report = explore(&trimmed_standard(), &opts);
    assert!(report.exhaustive(), "{report:?}");
    assert!(
        report.cross_epoch_violations >= 1,
        "ablated engine must exhibit cross-epoch mixing: {report:?}"
    );
    assert!(
        report.first_cross_epoch_depth.is_some(),
        "violation depth must be recorded: {report:?}"
    );
    // The bug needs an install racing a retry; it cannot fire at the
    // root or within the first couple of protocol steps.
    assert!(report.first_cross_epoch_depth.unwrap() >= 3);
}

#[test]
fn exploration_is_deterministic_across_runs() {
    let u = Universe::symmetric();
    let a = explore(&u, &ExploreOptions::default());
    let b = explore(&u, &ExploreOptions::default());
    assert_eq!(a, b, "identical inputs must produce identical reports");
}

#[test]
fn reduction_changes_cost_not_verdicts() {
    let u = Universe::symmetric();
    let reduced = explore(&u, &ExploreOptions::default());
    let full = explore(
        &u,
        &ExploreOptions {
            reduction: false,
            ..ExploreOptions::default()
        },
    );
    assert!(reduced.exhaustive() && full.exhaustive());
    assert_eq!(reduced.violations(), 0);
    assert_eq!(full.violations(), 0);
    assert!(
        reduced.states_explored <= full.states_explored,
        "reduction must not enlarge the space: {} vs {}",
        reduced.states_explored,
        full.states_explored
    );
    assert!(reduced.por_skips > 0, "reduction should actually prune");
}

#[test]
fn reduction_preserves_the_ablation_verdict() {
    // Soundness both ways: the pruned search must still find the bug.
    let u = Universe::symmetric();
    let mut std_small = trimmed_standard();
    // Single access keeps the unreduced search affordable in debug.
    std_small.accesses.truncate(1);
    for universe in [&u, &std_small] {
        let ablate_reduced = explore(
            universe,
            &ExploreOptions {
                mix_epoch_votes: true,
                ..ExploreOptions::default()
            },
        );
        let ablate_full = explore(
            universe,
            &ExploreOptions {
                mix_epoch_votes: true,
                reduction: false,
                ..ExploreOptions::default()
            },
        );
        assert!(ablate_reduced.exhaustive() && ablate_full.exhaustive());
        assert_eq!(
            ablate_reduced.cross_epoch_violations > 0,
            ablate_full.cross_epoch_violations > 0,
            "reduction flipped the {} verdict: reduced {:?} vs full {:?}",
            universe.name,
            ablate_reduced.cross_epoch_violations,
            ablate_full.cross_epoch_violations
        );
    }
}

#[test]
fn symmetry_shrinks_but_never_lies() {
    let u = Universe::symmetric();
    let quotient = explore(&u, &ExploreOptions::default());
    let full = explore(
        &u,
        &ExploreOptions {
            symmetry: false,
            ..ExploreOptions::default()
        },
    );
    assert!(quotient.exhaustive() && full.exhaustive());
    assert!(quotient.symmetry_perms > 1, "group should be non-trivial");
    assert!(
        quotient.states_explored < full.states_explored,
        "quotient must shrink the space: {} vs {}",
        quotient.states_explored,
        full.states_explored
    );
    assert_eq!(quotient.violations(), full.violations());
}

#[test]
fn report_counters_flow_into_the_registry() {
    let report = explore(&Universe::symmetric(), &ExploreOptions::default());
    let registry = quorum_obs::Registry::new();
    report.observe_into(&registry);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter(quorum_obs::keys::MC_STATES_EXPLORED),
        report.states_explored
    );
    assert_eq!(snap.counter(quorum_obs::keys::MC_VIOLATIONS), 0);
    assert_eq!(snap.counter(quorum_obs::keys::MC_TRUNCATED), 0);
    assert_eq!(snap.counter(quorum_obs::keys::MC_CAPPED), 0);
}
