//! Property-based safety tests: one-copy serializability under every valid
//! quorum assignment, QR safety under adversarial partition schedules, and
//! the negative direction (invalid assignments do fail).

#![forbid(unsafe_code)]

use proptest::prelude::*;
use quorum_core::protocol::{Access, ConsistencyProtocol, Decision};
use quorum_core::{QrProtocol, QuorumConsensus, QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::simulation::NullObserver;
use quorum_replica::{Simulation, Workload};

fn quick_params() -> SimParams {
    SimParams {
        warmup_accesses: 200,
        batch_accesses: 3_000,
        ..SimParams::paper()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every valid (q_r, q_w = T−q_r+1) assignment preserves 1SR on every
    /// topology family, regardless of seed.
    #[test]
    fn valid_quorums_always_one_copy_serializable(
        n in 5usize..16,
        q_r_frac in 0.0f64..1.0,
        topo_kind in 0usize..4,
        seed in 0u64..1_000,
        alpha in 0.0f64..1.0,
    ) {
        let topo = match topo_kind {
            0 => Topology::ring(n.max(3)),
            1 => Topology::fully_connected(n),
            2 => Topology::star(n),
            _ => Topology::ring_with_chords(n.max(5), 2),
        };
        let n = topo.num_sites();
        let total = n as u64;
        let hi = (total / 2).max(1);
        let q_r = 1 + ((q_r_frac * (hi - 1) as f64) as u64).min(hi - 1);
        let spec = QuorumSpec::from_read_quorum(q_r, total).unwrap();
        let mut sim = Simulation::new(&topo, quick_params(), Workload::uniform(n, alpha), seed);
        let mut proto = QuorumConsensus::new(VoteAssignment::uniform(n), spec);
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        prop_assert_eq!(stats.stale_reads, 0);
        prop_assert_eq!(stats.write_conflicts, 0);
    }

    /// The QR protocol never grants an access under a stale assignment,
    /// for arbitrary partition/reassignment schedules.
    #[test]
    fn qr_never_grants_under_stale_version(
        n in 4usize..12,
        seed in 0u64..10_000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let total = n as u64;
        let mut qr = QrProtocol::new(VoteAssignment::uniform(n), QuorumSpec::majority(total));
        for _ in 0..200 {
            // Random partition into up to 3 blocks + down sites.
            let mut blocks: [Vec<usize>; 3] = Default::default();
            for s in 0..n {
                match rng.random_range(0..4) {
                    0 => blocks[0].push(s),
                    1 => blocks[1].push(s),
                    2 => blocks[2].push(s),
                    _ => {}
                }
            }
            for comp in blocks.iter().filter(|c| !c.is_empty()) {
                if rng.random_range(0..3) == 0 {
                    let hi = (total / 2).max(1);
                    let q_r = rng.random_range(1..=hi);
                    let _ = qr.try_reassign(comp, QuorumSpec::from_read_quorum(q_r, total).unwrap());
                }
                let kind = if rng.random_range(0..2) == 0 { Access::Read } else { Access::Write };
                let votes = comp.len() as u64;
                if qr.decide(kind, comp, votes) == Decision::Granted {
                    let eff = qr.effective(comp).unwrap();
                    prop_assert_eq!(eff.version, qr.global_max_version());
                }
            }
        }
    }

    /// Weighted vote assignments also preserve 1SR (the protocol logic
    /// must count votes, not sites).
    #[test]
    fn weighted_votes_preserve_serializability(
        seed in 0u64..500,
        w0 in 1u64..5, w1 in 1u64..5, w2 in 1u64..5, w3 in 1u64..5, w4 in 1u64..5,
    ) {
        let topo = Topology::ring(5);
        let votes = VoteAssignment::weighted(vec![w0, w1, w2, w3, w4]);
        let total = votes.total();
        let spec = QuorumSpec::majority(total);
        let mut sim = Simulation::with_votes(
            &topo,
            quick_params(),
            votes.clone(),
            Workload::uniform(5, 0.5),
            seed,
        );
        let mut proto = QuorumConsensus::new(votes, spec);
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        prop_assert_eq!(stats.stale_reads, 0);
    }
}

/// Deterministic negative control: an assignment violating condition 1
/// (q_r + q_w ≤ T) eventually yields a stale read on a partition-prone
/// ring. (Not a proptest: a fixed seed that exhibits the violation is the
/// point; randomizing would make the test flaky in the *other* direction.)
#[test]
fn condition_one_violation_breaks_serializability() {
    struct Unsafe;
    impl ConsistencyProtocol for Unsafe {
        fn decide(&mut self, kind: Access, m: &[usize], votes: u64) -> Decision {
            if self.can_grant(kind, m, votes) {
                Decision::Granted
            } else {
                Decision::Denied
            }
        }
        fn can_grant(&self, kind: Access, _m: &[usize], votes: u64) -> bool {
            match kind {
                Access::Read => votes >= 2,   // q_r = 2
                Access::Write => votes >= 10, // q_w = 10, T = 17 → 12 ≤ 17
            }
        }
        fn effective_spec(&self, _m: &[usize]) -> QuorumSpec {
            QuorumSpec::majority(17)
        }
        fn total_votes(&self) -> u64 {
            17
        }
    }
    let topo = Topology::ring(17);
    let params = SimParams {
        warmup_accesses: 200,
        batch_accesses: 40_000,
        ..SimParams::paper()
    };
    let mut sim = Simulation::new(&topo, params, Workload::uniform(17, 0.5), 1234);
    let stats = sim.run_batch(&mut Unsafe, &mut NullObserver);
    assert!(
        stats.stale_reads > 0,
        "expected stale reads under an invalid assignment"
    );
}

/// Deterministic negative control for condition 2: two write quorums that
/// can coexist let disjoint components both write; a later read that can
/// see only one of them misses the other.
#[test]
fn condition_two_violation_breaks_serializability() {
    struct UnsafeWrites;
    impl ConsistencyProtocol for UnsafeWrites {
        fn decide(&mut self, kind: Access, m: &[usize], votes: u64) -> Decision {
            if self.can_grant(kind, m, votes) {
                Decision::Granted
            } else {
                Decision::Denied
            }
        }
        fn can_grant(&self, kind: Access, _m: &[usize], votes: u64) -> bool {
            match kind {
                Access::Read => votes >= 13, // tight reads
                Access::Write => votes >= 5, // q_w = 5 ≤ T/2 = 8.5: unsafe
            }
        }
        fn effective_spec(&self, _m: &[usize]) -> QuorumSpec {
            QuorumSpec::majority(17)
        }
        fn total_votes(&self) -> u64 {
            17
        }
    }
    let topo = Topology::ring(17);
    let params = SimParams {
        warmup_accesses: 200,
        batch_accesses: 40_000,
        ..SimParams::paper()
    };
    let mut sim = Simulation::new(&topo, params, Workload::uniform(17, 0.5), 77);
    let stats = sim.run_batch(&mut UnsafeWrites, &mut NullObserver);
    // Non-intersecting write quorums lose updates (condition 2's job);
    // reads stay fresh here because q_r + q_w > T still holds.
    assert!(
        stats.write_conflicts > 0,
        "expected lost updates when write quorums don't intersect"
    );
}

/// Dynamic voting (Jajodia–Mutchler) run through the full DES must be
/// one-copy serializable on partition-prone topologies.
#[test]
fn dynamic_voting_is_one_copy_serializable() {
    use quorum_core::DynamicVoting;
    for (seed, topo) in [
        (11u64, Topology::ring(15)),
        (12, Topology::ring_with_chords(15, 3)),
        (13, Topology::star(11)),
    ] {
        let n = topo.num_sites();
        let params = SimParams {
            warmup_accesses: 500,
            batch_accesses: 30_000,
            ..SimParams::paper()
        };
        let mut sim = Simulation::new(&topo, params, Workload::uniform(n, 0.5), seed);
        let mut dv = DynamicVoting::new(n);
        let stats = sim.run_batch(&mut dv, &mut NullObserver);
        assert_eq!(stats.stale_reads, 0, "{}: stale reads", topo.name());
        assert_eq!(stats.write_conflicts, 0, "{}: lost updates", topo.name());
        assert!(stats.granted() > 0, "{}: nothing granted", topo.name());
    }
}

/// The primary-copy reduction: accesses succeed exactly in the component
/// containing the primary, so availability tracks the primary's own
/// reliability (≈ 96 %) times reachability.
#[test]
fn primary_copy_availability_bounded_by_primary_reliability() {
    let topo = Topology::fully_connected(9);
    let params = SimParams {
        warmup_accesses: 500,
        batch_accesses: 20_000,
        ..SimParams::paper()
    };
    let mut sim = Simulation::with_votes(
        &topo,
        params,
        VoteAssignment::primary_copy(9, 0),
        Workload::uniform(9, 0.5),
        5,
    );
    let mut proto = QuorumConsensus::primary_copy(9, 0);
    let stats = sim.run_batch(&mut proto, &mut NullObserver);
    let a = stats.availability();
    assert!(
        a <= 0.97,
        "availability {a} cannot exceed primary reliability"
    );
    assert!(
        a > 0.80,
        "fully-connected net should usually reach the primary"
    );
    assert_eq!(stats.stale_reads, 0);
}
