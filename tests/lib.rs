// integration test workspace member
