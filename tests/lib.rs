// integration test workspace member

#![forbid(unsafe_code)]
