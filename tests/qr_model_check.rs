//! Bounded exhaustive model check of the QR protocol.
//!
//! Random simulation finds bugs with luck; this explores *every* reachable
//! protocol state on a small universe (4 sites, uniform votes, two quorum
//! specs, version numbers bounded) under an adversarial scheduler that may
//! partition the up sites arbitrarily between steps. Verified invariants:
//!
//! 1. **Fresh reads** — every granted read reaches a current copy;
//! 2. **Aware writes** — every granted write reaches a current copy;
//! 3. **Refreshable installs** — every permitted reassignment finds a
//!    current copy inside the installing component (the premise of the
//!    install-time value refresh).
//!
//! Under the corrected joint-quorum install rule (`max(q_w_old, q_w_new)`)
//! no violation is reachable; under the paper's literal rule (old `q_w`
//! only) the checker exhaustively *finds* the stale-read state — turning
//! the simulation-discovered bug into a verified property.

#![forbid(unsafe_code)]

use std::collections::{HashSet, VecDeque};

const N: usize = 5;
const MAX_VERSION: u8 = 4;

/// Spec table: (q_r, q_w) over T = 5 votes, all satisfying §2.1. Three
/// distinct write quorums (3, 4, 5) make partial-component installs
/// possible under the joint rule — e.g. (3,3) → (2,4) from a 4-site
/// group leaves one site on the old version, so the checker explores
/// genuinely diverged assignment states.
const SPECS: [(u8, u8); 3] = [(3, 3), (2, 4), (1, 5)];

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct State {
    version: [u8; N],
    spec: [u8; N], // index into SPECS
    current: [bool; N],
}

impl State {
    fn initial() -> Self {
        State {
            version: [1; N],
            spec: [0; N],
            current: [true; N],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Violation {
    StaleRead,
    BlindWrite,
    RefreshWithoutCurrentCopy,
}

/// All ways to split the site set into disjoint non-empty groups (down
/// sites simply belong to no group). Encoded as: each site gets a label in
/// 0..=N (N = down); groups are label equivalence classes.
fn partitions() -> Vec<Vec<Vec<usize>>> {
    let mut out = Vec::new();
    let mut labels = [0usize; N];
    #[allow(clippy::needless_range_loop)]
    fn rec(i: usize, labels: &mut [usize; N], out: &mut Vec<Vec<Vec<usize>>>) {
        if i == N {
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut seen: Vec<usize> = Vec::new();
            for s in 0..N {
                if labels[s] == N {
                    continue; // down
                }
                match seen.iter().position(|&l| l == labels[s]) {
                    Some(g) => groups[g].push(s),
                    None => {
                        seen.push(labels[s]);
                        groups.push(vec![s]);
                    }
                }
            }
            out.push(groups);
            return;
        }
        for l in 0..=N {
            labels[i] = l;
            rec(i + 1, labels, out);
        }
    }
    rec(0, &mut labels, &mut out);
    // Dedup structurally identical partitions (label symmetry).
    let mut seen = HashSet::new();
    out.retain(|groups| {
        let mut key: Vec<Vec<usize>> = groups.clone();
        for g in &mut key {
            g.sort_unstable();
        }
        key.sort();
        seen.insert(key)
    });
    out
}

fn effective(state: &State, group: &[usize]) -> (u8, u8) {
    let v = group
        .iter()
        .map(|&s| state.version[s])
        .max()
        .expect("groups enumerated by the model checker are non-empty");
    let spec = group
        .iter()
        .filter(|&&s| state.version[s] == v)
        .map(|&s| state.spec[s])
        .next()
        .expect("some site carries the maximum version by construction");
    (v, spec)
}

fn synced(mut state: State, group: &[usize]) -> State {
    let (v, spec) = effective(&state, group);
    for &s in group {
        state.version[s] = v;
        state.spec[s] = spec;
    }
    state
}

/// Explores all reachable states; returns the violations found.
fn explore(joint_rule: bool) -> HashSet<Violation> {
    let parts = partitions();
    let mut violations = HashSet::new();
    let mut visited: HashSet<State> = HashSet::new();
    let mut queue = VecDeque::new();
    visited.insert(State::initial());
    queue.push_back(State::initial());

    while let Some(state) = queue.pop_front() {
        for groups in &parts {
            for group in groups {
                let votes = group.len() as u8;
                let base = synced(state, group);
                let (eff_v, eff_spec) = effective(&base, group);
                let (q_r, q_w) = SPECS[eff_spec as usize];
                let has_current = group.iter().any(|&s| base.current[s]);

                // READ
                if votes >= q_r && !has_current {
                    violations.insert(Violation::StaleRead);
                }
                // WRITE
                if votes >= q_w {
                    if !has_current {
                        violations.insert(Violation::BlindWrite);
                    }
                    let mut next = base;
                    for s in 0..N {
                        next.current[s] = group.contains(&s);
                    }
                    if visited.insert(next) {
                        queue.push_back(next);
                    }
                }
                // REASSIGN to each other spec.
                for (idx, &(_, new_q_w)) in SPECS.iter().enumerate() {
                    if idx as u8 == eff_spec || eff_v >= MAX_VERSION {
                        continue;
                    }
                    let need = if joint_rule { q_w.max(new_q_w) } else { q_w };
                    if votes < need {
                        continue;
                    }
                    if !has_current {
                        violations.insert(Violation::RefreshWithoutCurrentCopy);
                    }
                    let mut next = base;
                    for &s in group {
                        next.version[s] = eff_v + 1;
                        next.spec[s] = idx as u8;
                        // Install refreshes the current value onto every
                        // member (when a current copy is present).
                        if has_current {
                            next.current[s] = true;
                        }
                    }
                    if visited.insert(next) {
                        queue.push_back(next);
                    }
                }
                // Plain sync (join without access) also changes state.
                if visited.insert(base) {
                    queue.push_back(base);
                }
            }
        }
    }
    violations
}

#[test]
fn joint_rule_has_no_reachable_violations() {
    let v = explore(true);
    assert!(
        v.is_empty(),
        "joint-quorum QR must be safe in every reachable state, found {v:?}"
    );
}

#[test]
fn paper_rule_violation_is_reachable() {
    let v = explore(false);
    assert!(
        v.contains(&Violation::StaleRead),
        "the literal §2.2 rule should admit a stale read; found only {v:?}"
    );
}

#[test]
fn partition_enumeration_is_exhaustive() {
    // Σ_{k=0..5} C(5,k)·Bell(k) = 1 + 5 + 20 + 50 + 75 + 52 = 203.
    assert_eq!(partitions().len(), 203);
}

#[test]
fn state_space_is_modest() {
    // Sanity on the exploration size (documents the bound for reviewers).
    let parts = partitions();
    let mut visited: HashSet<State> = HashSet::new();
    let mut queue = VecDeque::from([State::initial()]);
    visited.insert(State::initial());
    while let Some(state) = queue.pop_front() {
        for groups in &parts {
            for group in groups {
                let base = synced(state, group);
                let votes = group.len() as u8;
                let (eff_v, eff_spec) = effective(&base, group);
                let (_q_r, q_w) = SPECS[eff_spec as usize];
                if votes >= q_w {
                    let mut next = base;
                    for s in 0..N {
                        next.current[s] = group.contains(&s);
                    }
                    if visited.insert(next) {
                        queue.push_back(next);
                    }
                }
                for (idx, &(_, new_q_w)) in SPECS.iter().enumerate() {
                    if idx as u8 == eff_spec || eff_v >= MAX_VERSION {
                        continue;
                    }
                    if votes < q_w.max(new_q_w) {
                        continue;
                    }
                    let has_current = group.iter().any(|&s| base.current[s]);
                    let mut next = base;
                    for &s in group {
                        next.version[s] = eff_v + 1;
                        next.spec[s] = idx as u8;
                        if has_current {
                            next.current[s] = true;
                        }
                    }
                    if visited.insert(next) {
                        queue.push_back(next);
                    }
                }
                if visited.insert(base) {
                    queue.push_back(base);
                }
            }
        }
    }
    assert!(
        visited.len() < 2_000_000,
        "state space blew up: {}",
        visited.len()
    );
    // The joint install rule is restrictive by design, so the reachable
    // space is small (≈200 states with three specs on five sites):
    // version divergence only arises from the (3,3) → (2,4) install out
    // of a 4-site component. The paper's looser rule reaches more states —
    // including the violating ones `paper_rule_violation_is_reachable`
    // exhibits.
    assert!(
        visited.len() > 150,
        "exploration too shallow: {} (version divergence unreachable?)",
        visited.len()
    );
}
