//! Bounded exhaustive model check of Jajodia–Mutchler dynamic voting.
//!
//! Companion to `qr_model_check.rs`: explores every reachable
//! `(vn, sc, current)` state of the dynamic voting protocol on a small
//! universe under an adversarial partition scheduler, verifying that no
//! reachable state admits a stale read or a blind write — and that the
//! strictness of the majority test is load-bearing (weakening `>` to `≥`
//! makes a violation reachable).

#![forbid(unsafe_code)]

use std::collections::{HashSet, VecDeque};

const N: usize = 4;
const MAX_VN: u8 = 5;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct State {
    vn: [u8; N],
    sc: [u8; N],
    current: [bool; N],
}

impl State {
    fn initial() -> Self {
        State {
            vn: [1; N],
            sc: [N as u8; N],
            current: [true; N],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Violation {
    StaleRead,
    BlindWrite,
}

/// All partitions of subsets of `0..N` into disjoint non-empty groups.
fn partitions() -> Vec<Vec<Vec<usize>>> {
    let mut out = Vec::new();
    let mut labels = [0usize; N];
    #[allow(clippy::needless_range_loop)]
    fn rec(i: usize, labels: &mut [usize; N], out: &mut Vec<Vec<Vec<usize>>>) {
        if i == N {
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut seen: Vec<usize> = Vec::new();
            for s in 0..N {
                if labels[s] == N {
                    continue;
                }
                match seen.iter().position(|&l| l == labels[s]) {
                    Some(g) => groups[g].push(s),
                    None => {
                        seen.push(labels[s]);
                        groups.push(vec![s]);
                    }
                }
            }
            out.push(groups);
            return;
        }
        for l in 0..=N {
            labels[i] = l;
            rec(i + 1, labels, out);
        }
    }
    rec(0, &mut labels, &mut out);
    let mut seen = HashSet::new();
    out.retain(|groups| {
        let mut key: Vec<Vec<usize>> = groups.clone();
        for g in &mut key {
            g.sort_unstable();
        }
        key.sort();
        seen.insert(key)
    });
    out
}

/// Evaluates the dynamic-voting access condition for `group`.
fn granted(state: &State, group: &[usize], strict: bool) -> (bool, u8) {
    let max_vn = group
        .iter()
        .map(|&s| state.vn[s])
        .max()
        .expect("groups enumerated by the model checker are non-empty");
    let holders: Vec<usize> = group
        .iter()
        .copied()
        .filter(|&s| state.vn[s] == max_vn)
        .collect();
    let electorate = state.sc[holders[0]];
    let ok = if strict {
        2 * holders.len() as u8 > electorate
    } else {
        2 * holders.len() as u8 >= electorate
    };
    (ok, max_vn)
}

fn explore(strict: bool) -> (HashSet<Violation>, usize) {
    let parts = partitions();
    let mut violations = HashSet::new();
    let mut visited: HashSet<State> = HashSet::new();
    let mut queue = VecDeque::from([State::initial()]);
    visited.insert(State::initial());
    while let Some(state) = queue.pop_front() {
        for groups in &parts {
            for group in groups {
                let (ok, max_vn) = granted(&state, group, strict);
                if !ok {
                    continue;
                }
                let has_current = group.iter().any(|&s| state.current[s]);
                // READ: granted; must see the latest value.
                if !has_current {
                    violations.insert(Violation::StaleRead);
                }
                // WRITE: must be aware; installs a new epoch.
                if !has_current {
                    violations.insert(Violation::BlindWrite);
                }
                if max_vn < MAX_VN {
                    let mut next = state;
                    for &s in group {
                        next.vn[s] = max_vn + 1;
                        next.sc[s] = group.len() as u8;
                    }
                    for s in 0..N {
                        next.current[s] = group.contains(&s);
                    }
                    if visited.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    (violations, visited.len())
}

#[test]
fn strict_majority_has_no_reachable_violations() {
    let (v, states) = explore(true);
    assert!(
        v.is_empty(),
        "dynamic voting must be safe in every reachable state, found {v:?}"
    );
    assert!(
        states > 50,
        "exploration too shallow ({states} states) to be meaningful"
    );
}

#[test]
fn non_strict_majority_is_unsafe() {
    // Weakening the strict `>` to `≥` lets two halves of an even
    // electorate both act: the split-brain the strictness exists for.
    let (v, _) = explore(false);
    assert!(
        v.contains(&Violation::StaleRead) || v.contains(&Violation::BlindWrite),
        "the ≥ variant should reach a violation, found {v:?}"
    );
}

#[test]
fn partition_count_matches_formula() {
    // Σ_{k=0..4} C(4,k)·Bell(k) = 52.
    assert_eq!(partitions().len(), 52);
}
