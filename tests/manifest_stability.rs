//! Manifest determinism pins: the same seed must produce byte-identical
//! manifest JSON, run to run and across thread counts, once the fields
//! that *are* wall-clock measurements (phase timings, utilization
//! gauges) are stripped. This is the end-to-end guarantee `quorum-lint`
//! enforces structurally — no hash-iteration order, no wall clock, no
//! OS entropy anywhere in the path from simulator to serialized JSON —
//! pinned here on concrete runs of both simulators.

#![forbid(unsafe_code)]

use quorum_algebra::{optimize_load, AlgebraProtocol, QuorumSystem};
use quorum_bench::manifest::{manifest_for_run, sim_params_record, topology_record};
use quorum_cluster::{run_cluster_observed, ClusterConfig, RunOptions};
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_obs::{Registry, RunManifest};
use quorum_replica::{run_protocol_observed, run_static_observed, RunConfig, Workload};
use quorum_shard::{FailureTimeline, ObjectCatalog, ShardEngine};

fn tiny_params() -> SimParams {
    SimParams {
        warmup_accesses: 500,
        batch_accesses: 4_000,
        min_batches: 2,
        max_batches: 3,
        ci_half_width: 0.05,
        ..SimParams::paper()
    }
}

/// Removes the fields that legitimately vary with the host: phase
/// timings and utilization gauges (wall-clock measurements) and the
/// recorded thread count (run metadata — the knob the thread-invariance
/// assertions below vary on purpose). Everything left must be a pure
/// function of (topology, params, seed).
fn strip_wall_clock(m: &mut RunManifest) {
    m.phases.clear();
    m.metrics
        .retain(|k, _| !k.contains("utilization") && !k.ends_with(".threads"));
}

fn replica_manifest(seed: u64, threads: usize) -> String {
    let topo = Topology::ring_with_chords(13, 2);
    let votes = VoteAssignment::uniform(13);
    let registry = Registry::new();
    let params = tiny_params();
    let res = run_static_observed(
        &topo,
        votes.clone(),
        QuorumSpec::majority(13),
        Workload::uniform(13, 0.6),
        RunConfig {
            params,
            seed,
            threads,
        },
        &registry,
    );
    let mut m = manifest_for_run(
        "manifest_stability",
        seed,
        &params,
        "ring-13+2",
        2,
        &topo,
        &votes,
        &res,
        &registry,
    );
    strip_wall_clock(&mut m);
    m.to_json().to_string_pretty()
}

fn cluster_manifest(seed: u64, threads: usize) -> String {
    let topo = Topology::ring_with_chords(9, 2);
    let votes = VoteAssignment::uniform(9);
    let params = tiny_params();
    let cfg = ClusterConfig::new(params);
    let registry = Registry::new();
    let res = run_cluster_observed(
        &topo,
        &cfg,
        QuorumSpec::majority(9),
        votes.clone(),
        Workload::uniform(9, 0.7),
        RunOptions { seed, threads },
        &registry,
    );
    let mut m = RunManifest::new("manifest_stability_cluster", seed);
    m.params = sim_params_record(&params);
    m.topology = topology_record("ring-9+2", 2, &topo);
    m.votes = votes.as_slice().to_vec();
    res.fill_manifest(&mut m);
    m.absorb_snapshot(&registry.snapshot());
    strip_wall_clock(&mut m);
    m.to_json().to_string_pretty()
}

#[test]
fn replica_manifest_is_byte_identical_across_runs_and_threads() {
    let a = replica_manifest(21, 2);
    let b = replica_manifest(21, 2);
    assert_eq!(a, b, "same seed, same threads: manifests must match");
    let c = replica_manifest(21, 1);
    assert_eq!(a, c, "thread count must not change any reported number");
}

#[test]
fn cluster_manifest_is_byte_identical_across_runs_and_threads() {
    let a = cluster_manifest(33, 2);
    let b = cluster_manifest(33, 2);
    assert_eq!(a, b, "same seed, same threads: manifests must match");
    let c = cluster_manifest(33, 1);
    assert_eq!(a, c, "thread count must not change any reported number");
}

/// Aggregate manifest of a sharded throughput run, built exactly like
/// `shard_throughput --manifest` builds its counters/gauges: engine +
/// timeline counters, plus the thread/utilization gauges that
/// [`strip_wall_clock`] removes. The shard count is deliberately *not*
/// in the manifest: it's a partition knob, not a result.
fn shard_manifest(seed: u64, shards: u64, threads: usize) -> String {
    let topo = Topology::ring_with_chords(13, 3);
    let params = tiny_params();
    let catalog = ObjectCatalog::paper_mix(13, 300);
    let timeline = FailureTimeline::build(&topo, &catalog, &params, 50.0, seed);
    let engine = ShardEngine::new(&topo, &catalog, &timeline, 50.0, seed);
    let (stats, conv) = engine.run_sharded(shards, threads);
    let registry = Registry::new();
    stats.observe_into(&registry);
    timeline.observe_into(&registry);
    registry.set_gauge(quorum_obs::keys::SHARD_THREADS, threads as f64);
    registry.set_gauge(
        quorum_obs::keys::SHARD_THREAD_UTILIZATION,
        conv.utilization(),
    );
    let mut m = RunManifest::new("manifest_stability_shard", seed);
    m.params = sim_params_record(&params);
    m.topology = topology_record("ring-13+3", 3, &topo);
    m.batches = stats.objects; // partition-invariant stand-in (conv.batches == shards)
    m.set_metric(quorum_obs::keys::AVAILABILITY, stats.availability());
    m.absorb_snapshot(&registry.snapshot());
    strip_wall_clock(&mut m);
    m.to_json().to_string_pretty()
}

/// Manifest of an algebra comparison run, built the way
/// `compare_systems` builds its per-system records: certification,
/// multiplicative-weights load optimization, and a partition-model
/// simulation driven through the general `AlgebraProtocol` plug-in.
/// Every one of those stages must be a pure function of (system,
/// topology, params, seed) for the committed comparison manifest to be
/// reproducible.
fn algebra_manifest(seed: u64, threads: usize) -> String {
    let topo = Topology::ring_with_chords(9, 2);
    let votes = VoteAssignment::uniform(9);
    let params = tiny_params();
    let registry = Registry::new();
    let sys = QuorumSystem::grid(3, 3, 0);
    assert!(sys.certify().ok(), "grid must certify");
    let profile = optimize_load(&sys, 0.5, 500);
    let res = run_protocol_observed(
        &topo,
        votes.clone(),
        Workload::uniform(9, 0.5),
        RunConfig {
            params,
            seed,
            threads,
        },
        &registry,
        "algebra.simulate",
        || AlgebraProtocol::new(sys.clone()),
    );
    let mut m = RunManifest::new("manifest_stability_algebra", seed);
    m.params = sim_params_record(&params);
    m.topology = topology_record("ring-9+2", 2, &topo);
    m.votes = votes.as_slice().to_vec();
    m.set_metric(&format!("load.{}", sys.name()), profile.load);
    m.set_metric(&format!("load-lower.{}", sys.name()), profile.lower_bound);
    m.set_metric(quorum_obs::keys::AVAILABILITY, res.availability());
    m.absorb_snapshot(&registry.snapshot());
    strip_wall_clock(&mut m);
    m.to_json().to_string_pretty()
}

#[test]
fn algebra_manifest_is_byte_identical_across_runs_and_threads() {
    let a = algebra_manifest(19, 2);
    let b = algebra_manifest(19, 2);
    assert_eq!(a, b, "same seed, same threads: manifests must match");
    let c = algebra_manifest(19, 1);
    assert_eq!(a, c, "thread count must not change any reported number");
}

#[test]
fn shard_manifest_is_byte_identical_across_threads() {
    let a = shard_manifest(17, 8, 1);
    let b = shard_manifest(17, 8, 4);
    assert_eq!(a, b, "thread count must not change any reported number");
}

#[test]
fn shard_manifest_is_byte_identical_across_shard_partitions() {
    let a = shard_manifest(17, 8, 2);
    let b = shard_manifest(17, 64, 2);
    assert_eq!(
        a, b,
        "shard partitioning must not change any reported number"
    );
}

#[test]
fn manifest_counter_and_metric_keys_serialize_sorted() {
    // The maps behind `counters` and `metrics` are BTreeMaps (and the
    // cluster engine / bench arg maps feeding them were moved off
    // HashMap by the no-unordered-iteration remediation), so the JSON
    // must list keys in sorted order — the property that makes two
    // manifests diffable line by line.
    let text = cluster_manifest(7, 1);
    let m = RunManifest::parse(&text).expect("manifest parses back");
    assert!(!m.counters.is_empty() && !m.metrics.is_empty());
    for keys in [
        m.counters.keys().cloned().collect::<Vec<_>>(),
        m.metrics.keys().cloned().collect::<Vec<_>>(),
    ] {
        let positions: Vec<usize> = keys
            .iter()
            .map(|k| {
                text.find(&format!("\"{k}\""))
                    .unwrap_or_else(|| panic!("key {k} missing from JSON"))
            })
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted, "keys out of order: {keys:?}");
    }
}
