//! Property tests on the Figure-1 optimizer and its §5.4 variants, against
//! brute force on randomly generated availability models.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use quorum_core::optimal::{
    min_read_quorum_for_write_floor, optimal_quorum, optimal_weighted, optimal_with_write_floor,
    SearchStrategy,
};
use quorum_core::AvailabilityModel;
use quorum_stats::DiscreteDist;

/// Strategy: a random normalized pmf over 0..=t.
fn pmf_strategy(t: usize) -> impl Strategy<Value = DiscreteDist> {
    prop::collection::vec(0.0f64..1.0, t + 1).prop_map(|raw| {
        let sum: f64 = raw.iter().sum::<f64>().max(1e-9);
        DiscreteDist::from_pmf(raw.into_iter().map(|x| x / sum).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The reported optimum dominates every point in the domain.
    #[test]
    fn optimum_dominates_domain(
        r in pmf_strategy(30),
        w in pmf_strategy(30),
        alpha in 0.0f64..1.0,
    ) {
        let m = AvailabilityModel::from_mixtures(&r, &w);
        let opt = optimal_quorum(&m, alpha, SearchStrategy::Exhaustive);
        for q in 1..=15u64 {
            prop_assert!(opt.availability >= m.availability(alpha, q) - 1e-12);
        }
        // Reported components are consistent.
        let manual = alpha * opt.read_availability + (1.0 - alpha) * opt.write_availability;
        prop_assert!((opt.availability - manual).abs() < 1e-12);
    }

    /// Availability is monotone: raising α on a read-friendlier-than-
    /// write model never decreases A at fixed q_r when R(q_r) ≥ W(q_w).
    #[test]
    fn alpha_monotonicity_pointwise(
        f in pmf_strategy(20),
        q_r in 1u64..=10,
    ) {
        let m = AvailabilityModel::from_mixtures(&f, &f);
        let q_w = 20 - q_r + 1;
        let r = m.read_availability(q_r);
        let w = m.write_availability(q_w);
        // A(α) = α r + (1−α) w is linear; check its slope sign.
        let a0 = m.availability(0.0, q_r);
        let a1 = m.availability(1.0, q_r);
        if r >= w {
            prop_assert!(a1 >= a0 - 1e-12);
        } else {
            prop_assert!(a1 <= a0 + 1e-12);
        }
        // R(q_r) ≥ W(T−q_r+1) always: q_r ≤ ⌊T/2⌋ < q_w and tails are
        // non-increasing, so reads are never harder than writes here.
        prop_assert!(r >= w - 1e-12);
    }

    /// Write-floor optimizer: result is feasible, optimal among feasible
    /// points (brute-force check), and None only when truly infeasible.
    #[test]
    fn write_floor_matches_brute_force(
        f in pmf_strategy(24),
        alpha in 0.0f64..1.0,
        floor in 0.0f64..1.0,
    ) {
        let m = AvailabilityModel::from_mixtures(&f, &f);
        let total = m.total_votes();
        let hi = total / 2;
        let feasible: Vec<u64> = (1..=hi)
            .filter(|&q| m.write_availability(total - q + 1) >= floor)
            .collect();
        let got = optimal_with_write_floor(&m, alpha, floor, SearchStrategy::Exhaustive);
        match got {
            None => prop_assert!(feasible.is_empty(), "returned None but {feasible:?} feasible"),
            Some(o) => {
                prop_assert!(m.write_availability(o.spec.q_w()) >= floor - 1e-12);
                let best = feasible
                    .iter()
                    .map(|&q| m.availability(alpha, q))
                    .fold(f64::MIN, f64::max);
                prop_assert!((o.availability - best).abs() < 1e-12);
            }
        }
    }

    /// The binary-searched feasibility boundary is exact.
    #[test]
    fn floor_boundary_is_minimal(
        f in pmf_strategy(24),
        floor in 0.0f64..1.0,
    ) {
        let m = AvailabilityModel::from_mixtures(&f, &f);
        let total = m.total_votes();
        if let Some(q_min) = min_read_quorum_for_write_floor(&m, floor) {
            prop_assert!(m.write_availability(total - q_min + 1) >= floor);
            if q_min > 1 {
                prop_assert!(m.write_availability(total - (q_min - 1) + 1) < floor);
            }
        } else {
            prop_assert!(m.write_availability(total - total / 2 + 1) < floor);
        }
    }

    /// ω-weighted optimizer agrees with brute force on the weighted
    /// objective.
    #[test]
    fn weighted_matches_brute_force(
        f in pmf_strategy(20),
        alpha in 0.0f64..1.0,
        omega in 0.0f64..4.0,
    ) {
        let m = AvailabilityModel::from_mixtures(&f, &f);
        let got = optimal_weighted(&m, omega, alpha, SearchStrategy::Exhaustive);
        let best = (1..=10u64)
            .map(|q| m.weighted_availability(omega, alpha, q))
            .fold(f64::MIN, f64::max);
        prop_assert!((got.availability - best).abs() < 1e-12);
    }

    /// Golden-section with endpoint check never loses more than noise on
    /// *unimodal* curves (paper §4.1's use case), and is never better than
    /// exhaustive (which is exact).
    #[test]
    fn golden_exact_on_unimodal(peak in 0usize..=40, width in 1.0f64..20.0) {
        let pmf: Vec<f64> = (0..=40)
            .map(|v| (-((v as f64 - peak as f64) / width).powi(2)).exp())
            .collect();
        let f = DiscreteDist::from_pmf(pmf).normalized();
        let m = AvailabilityModel::from_mixtures(&f, &f);
        for alpha in [0.0, 0.5, 1.0] {
            let e = optimal_quorum(&m, alpha, SearchStrategy::Exhaustive);
            let g = optimal_quorum(&m, alpha, SearchStrategy::EndpointGolden);
            prop_assert!(g.availability <= e.availability + 1e-12);
            prop_assert!(
                (e.availability - g.availability).abs() < 1e-9,
                "α={alpha}: exhaustive {} vs golden {}",
                e.availability,
                g.availability
            );
        }
    }

    /// Tail tables agree with direct tail sums (the O(1) evaluation trick
    /// behind the whole optimizer).
    #[test]
    fn tail_table_consistency(f in pmf_strategy(33)) {
        let m = AvailabilityModel::from_mixtures(&f, &f);
        for v in 0..=34u64 {
            prop_assert!((m.read_availability(v) - f.tail_sum(v as usize)).abs() < 1e-12);
        }
    }
}
