//! Integration tests for the coterie-driven protocol and the SURV metric
//! variant (§3, footnote 3).

#![forbid(unsafe_code)]

use quorum_core::metrics::AvailabilityMetric;
use quorum_core::{
    CoterieProtocol, QuorumConsensus, QuorumSpec, ReadWriteCoterie, SearchStrategy, VoteAssignment,
};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::simulation::NullObserver;
use quorum_replica::{run_static, CurveSet, RunConfig, Simulation, Workload};

fn params() -> SimParams {
    SimParams {
        warmup_accesses: 1_000,
        batch_accesses: 30_000,
        ..SimParams::paper()
    }
}

#[test]
fn coterie_protocol_matches_quorum_consensus_in_simulation() {
    // A vote-derived bicoterie must produce the *identical* decision
    // sequence as the threshold protocol it was derived from.
    let n = 11usize;
    let topo = Topology::ring_with_chords(n, 3);
    let votes = VoteAssignment::uniform(n);
    let spec = QuorumSpec::from_read_quorum(4, n as u64).unwrap();

    let run = |use_coterie: bool| {
        let mut sim = Simulation::new(&topo, params(), Workload::uniform(n, 0.5), 31);
        if use_coterie {
            let bc = ReadWriteCoterie::from_quorums(&votes, spec);
            let mut proto = CoterieProtocol::new(bc);
            sim.run_batch(&mut proto, &mut NullObserver)
        } else {
            let mut proto = QuorumConsensus::new(votes.clone(), spec);
            sim.run_batch(&mut proto, &mut NullObserver)
        }
    };
    let threshold = run(false);
    let coterie = run(true);
    assert_eq!(threshold.reads_granted, coterie.reads_granted);
    assert_eq!(threshold.writes_granted, coterie.writes_granted);
    assert_eq!(coterie.stale_reads, 0);
    assert_eq!(coterie.write_conflicts, 0);
}

#[test]
fn non_vote_coterie_is_serializable_in_simulation() {
    // A hand-built (non-threshold) bicoterie with valid intersections
    // must also be 1SR under partitions.
    let n = 4usize;
    let topo = Topology::fully_connected(n);
    let bc = ReadWriteCoterie::new(
        n,
        &[vec![0, 1], vec![2, 3]],
        &[vec![0, 1, 2], vec![1, 2, 3]],
    )
    .unwrap();
    let mut sim = Simulation::new(&topo, params(), Workload::uniform(n, 0.5), 5);
    let mut proto = CoterieProtocol::new(bc);
    let stats = sim.run_batch(&mut proto, &mut NullObserver);
    assert_eq!(stats.stale_reads, 0);
    assert_eq!(stats.write_conflicts, 0);
    assert!(stats.granted() > 0, "the coterie should grant something");
}

#[test]
fn surv_optimization_footnote_three() {
    // Footnote 3: optimizing SURV means substituting the largest
    // component's vote distribution. The SURV-optimal assignment's SURV
    // availability must dominate the ACC-optimal assignment's SURV.
    let topo = Topology::ring(31);
    let results = run_static(
        &topo,
        VoteAssignment::uniform(31),
        QuorumSpec::from_read_quorum(15, 31).unwrap(),
        Workload::uniform(31, 0.5),
        RunConfig {
            params: params(),
            seed: 77,
            threads: 4,
        },
    );
    let curves = CurveSet::from_run(&results);
    for alpha in [0.25, 0.5, 0.75] {
        let surv_model = curves.model(AvailabilityMetric::Survivability);
        let surv_opt =
            quorum_core::optimal::optimal_quorum(surv_model, alpha, SearchStrategy::Exhaustive);
        let acc_opt = curves.optimal(alpha, SearchStrategy::Exhaustive);
        let acc_opt_under_surv =
            curves.availability(AvailabilityMetric::Survivability, alpha, acc_opt.spec.q_r());
        assert!(
            surv_opt.availability >= acc_opt_under_surv - 1e-12,
            "α={alpha}: SURV-opt {} < ACC-opt-under-SURV {}",
            surv_opt.availability,
            acc_opt_under_surv
        );
        // And SURV availability always dominates ACC availability at the
        // same assignment.
        assert!(surv_opt.availability >= acc_opt.availability - 1e-9);
    }
}

#[test]
fn surv_exceeds_single_site_reliability_with_replication() {
    // §3: "the reliability of a single site is a lower bound for SURV".
    // On a well-connected network with loose quorums, SURV must beat 96 %.
    let topo = Topology::fully_connected(15);
    let results = run_static(
        &topo,
        VoteAssignment::uniform(15),
        QuorumSpec::from_read_quorum(7, 15).unwrap(),
        Workload::uniform(15, 1.0),
        RunConfig {
            params: params(),
            seed: 78,
            threads: 4,
        },
    );
    let curves = CurveSet::from_run(&results);
    let surv = curves.availability(AvailabilityMetric::Survivability, 1.0, 1);
    assert!(surv > 0.96, "SURV {surv} should beat one site's 96%");
    // While ACC cannot (upper-bounded by submitting-site reliability).
    let acc = curves.availability(AvailabilityMetric::Accessibility, 1.0, 1);
    assert!(acc <= 0.97, "ACC {acc} is bounded by site reliability");
}

#[test]
fn torus_simulation_is_consistent_and_beats_ring() {
    // New topology smoke-test: a torus is strictly better connected than
    // a ring of the same size, so its write availability dominates.
    let ring = Topology::ring(25);
    let torus = Topology::torus(5, 5);
    let run = |topo: &Topology, seed| {
        run_static(
            topo,
            VoteAssignment::uniform(25),
            QuorumSpec::majority(25),
            Workload::uniform(25, 0.0),
            RunConfig {
                params: params(),
                seed,
                threads: 4,
            },
        )
    };
    let ring_res = run(&ring, 9);
    let torus_res = run(&torus, 9);
    assert!(ring_res.is_one_copy_serializable());
    assert!(torus_res.is_one_copy_serializable());
    assert!(
        torus_res.combined.write_availability() > ring_res.combined.write_availability(),
        "torus {} should beat ring {}",
        torus_res.combined.write_availability(),
        ring_res.combined.write_availability()
    );
}

#[test]
fn hypercube_simulation_smoke() {
    let topo = Topology::hypercube(4); // 16 sites, degree 4
    let results = run_static(
        &topo,
        VoteAssignment::uniform(16),
        QuorumSpec::majority(16),
        Workload::uniform(16, 0.5),
        RunConfig {
            params: params(),
            seed: 3,
            threads: 2,
        },
    );
    assert!(results.is_one_copy_serializable());
    // Degree-4 redundancy keeps majority components common.
    assert!(
        results.availability() > 0.85,
        "availability {}",
        results.availability()
    );
}
