//! Degeneracy: the message-level cluster engine with an ideal network
//! (zero latency, zero loss, no retries) must reproduce the
//! instantaneous simulator **exactly** — same RNG streams, same failure
//! sample paths, same per-access decisions — on every topology family,
//! including the weighted bus (where the hub carries no votes and no
//! workload). This is the contract that lets the cluster's latency/loss
//! results extend the paper's §5 numbers instead of contradicting them.

#![forbid(unsafe_code)]

use quorum_cluster::{run_cluster, ClusterConfig, ClusterEngine, Outcome};
use quorum_core::protocol::{Access, Decision};
use quorum_core::{QuorumConsensus, QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_obs::Registry;
use quorum_replica::simulation::AccessObserver;
use quorum_replica::{run_static_observed, RunConfig, Simulation, Workload};

fn quick_params() -> SimParams {
    SimParams {
        warmup_accesses: 500,
        batch_accesses: 6_000,
        min_batches: 3,
        max_batches: 5,
        ci_half_width: 0.02,
        ..SimParams::paper()
    }
}

/// The three families the degeneracy contract covers: uniform ring,
/// uniform fully-connected, and the bus whose hub (node 0) is pure
/// wiring — zero votes, zero workload weight.
fn families() -> Vec<(Topology, VoteAssignment, Workload)> {
    let mut out = vec![
        (
            Topology::ring(9),
            VoteAssignment::uniform(9),
            Workload::uniform(9, 0.7),
        ),
        (
            Topology::fully_connected(9),
            VoteAssignment::uniform(9),
            Workload::uniform(9, 0.7),
        ),
    ];
    let bus = Topology::bus(8);
    let mut votes = vec![1u64; 9];
    votes[0] = 0;
    let mut weights = vec![1.0; 9];
    weights[0] = 0.0;
    out.push((
        bus,
        VoteAssignment::weighted(votes),
        Workload::weighted(0.7, &weights, &weights),
    ));
    out
}

/// Records the instantaneous simulator's per-access decisions by
/// measured index.
#[derive(Default)]
struct Recorder {
    decisions: Vec<Option<(Access, Decision)>>,
}

impl AccessObserver for Recorder {
    fn on_access(
        &mut self,
        _site: usize,
        _members: &[usize],
        _votes: u64,
        kind: Access,
        decision: Decision,
        measured_index: Option<u64>,
    ) {
        if let Some(i) = measured_index {
            let i = i as usize;
            if self.decisions.len() <= i {
                self.decisions.resize(i + 1, None);
            }
            self.decisions[i] = Some((kind, decision));
        }
    }
}

/// With an ideal network, every measured access must resolve to exactly
/// the decision the instantaneous simulator makes for the same seed:
/// `Committed ↔ Granted`, `TimedOut`/`Unavailable` ↔ `Denied`.
#[test]
fn ideal_cluster_decisions_match_instantaneous_per_access() {
    for (topo, votes, workload) in families() {
        for seed in [3u64, 41] {
            let params = quick_params();
            let total = votes.total();
            let spec = QuorumSpec::majority(total);

            let mut cfg = ClusterConfig::ideal(params);
            cfg.record_outcomes = true;
            let mut engine =
                ClusterEngine::with_votes(&topo, cfg, spec, votes.clone(), workload.clone(), seed);
            let stats = engine.run_indexed_batch(0);
            assert_eq!(stats.freshness_violations, 0, "{}", topo.name());

            let mut sim =
                Simulation::with_votes(&topo, params, votes.clone(), workload.clone(), seed);
            let mut proto = QuorumConsensus::new(votes.clone(), spec);
            let mut rec = Recorder::default();
            sim.run_indexed_batch(&mut proto, &mut rec, 0);

            assert_eq!(
                stats.outcomes.len(),
                rec.decisions.len(),
                "{} seed {seed}: measured-access counts differ",
                topo.name()
            );
            for (i, (cluster, instant)) in stats.outcomes.iter().zip(&rec.decisions).enumerate() {
                let (c_kind, outcome) = cluster.unwrap_or_else(|| {
                    panic!("{} seed {seed}: access {i} never resolved", topo.name())
                });
                let (s_kind, decision) = instant.unwrap_or_else(|| {
                    panic!("{} seed {seed}: access {i} never observed", topo.name())
                });
                assert_eq!(c_kind, s_kind, "{} seed {seed}: kind at {i}", topo.name());
                let expected = match decision {
                    Decision::Granted => Outcome::Committed,
                    Decision::Denied => {
                        if outcome == Outcome::Unavailable {
                            Outcome::Unavailable
                        } else {
                            Outcome::TimedOut
                        }
                    }
                };
                assert_eq!(
                    outcome,
                    expected,
                    "{} seed {seed}: access {i} diverged (instantaneous said {decision:?})",
                    topo.name()
                );
                if decision == Decision::Granted {
                    assert_eq!(outcome, Outcome::Committed);
                } else {
                    assert_ne!(outcome, Outcome::Committed);
                }
            }
        }
    }
}

/// Batch-level check at the runner layer: the converged ideal-cluster
/// ACC must land within the instantaneous runner's 95% confidence
/// interval on the same seed (the per-access test above makes the two
/// batch sequences identical, so this also guards the runner plumbing).
#[test]
fn ideal_cluster_acc_within_ci_of_instantaneous_runner() {
    for (topo, votes, workload) in families() {
        let params = quick_params();
        let seed = 7u64;
        let spec = QuorumSpec::majority(votes.total());

        let cluster = run_cluster(
            &topo,
            &ClusterConfig::ideal(params),
            spec,
            votes.clone(),
            workload.clone(),
            seed,
        );
        let instant = run_static_observed(
            &topo,
            votes.clone(),
            spec,
            workload.clone(),
            RunConfig {
                params,
                seed,
                threads: 1,
            },
            &Registry::new(),
        );

        let ci = instant
            .interval()
            .expect("instantaneous run produced an interval");
        let delta = (cluster.availability() - instant.availability()).abs();
        assert!(
            delta <= ci.half_width.max(1e-9),
            "{}: cluster ACC {:.5} vs instantaneous {:.5} (95% half-width {:.5})",
            topo.name(),
            cluster.availability(),
            instant.availability(),
            ci.half_width
        );
        assert!(cluster.is_fresh(), "{}: stale read", topo.name());
    }
}
