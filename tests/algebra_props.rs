//! Property tests on the quorum algebra: duality is an involution whose
//! quorums are exactly the minimal transversals, structural enumeration
//! agrees with the powerset reference on every small expression, and
//! vote-derived systems are safe and round-trip exactly — including
//! ties at exactly the threshold — against the raw vote arithmetic the
//! protocol layer uses.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use quorum_algebra::{Expr, QuorumSystem};
use quorum_core::{QuorumSpec, VoteAssignment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random monotone expression over sites `0..n`, grown from a seeded
/// RNG so every failure reproduces from the proptest case alone. Leaves
/// are biased in so depth stays small; `choose` picks `1 < k < len` to
/// exercise the non-degenerate threshold path.
fn random_expr(rng: &mut StdRng, n: usize, depth: usize) -> Expr {
    if depth == 0 || rng.random_range(0..3) == 0 {
        return Expr::Node(rng.random_range(0..n));
    }
    let arity = rng.random_range(2..=4usize);
    let children: Vec<Expr> = (0..arity).map(|_| random_expr(rng, n, depth - 1)).collect();
    match rng.random_range(0..3) {
        0 => Expr::and(children),
        1 => Expr::or(children),
        _ => {
            let k = rng.random_range(1..=children.len());
            Expr::choose(k, children)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// dual(dual(e)) is structurally identical to e — the And↔Or swap
    /// and the Choose(k) → Choose(len−k+1) map are both involutions.
    #[test]
    fn dual_is_an_involution(seed in 0u64..5_000, n in 1usize..8, depth in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_expr(&mut rng, n, depth);
        prop_assert_eq!(e.dual().dual(), e);
    }

    /// Structural enumeration ≡ powerset reference on every expression
    /// with at most 8 sites: same minimal quorums, same canonical order.
    #[test]
    fn enumeration_matches_powerset(seed in 0u64..5_000, n in 1usize..=8, depth in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_expr(&mut rng, n, depth);
        prop_assert_eq!(e.min_quorums(), e.min_quorums_powerset(n));
    }

    /// The dual's quorums are exactly the sets meeting every quorum of
    /// the primal (minimal transversals) — checked semantically: a mask
    /// satisfies the dual iff its complement fails the primal.
    #[test]
    fn dual_complement_law(seed in 0u64..5_000, n in 1usize..7, depth in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_expr(&mut rng, n, depth);
        let d = e.dual();
        let full = (1u64 << n) - 1;
        for mask in 0..=full {
            prop_assert_eq!(d.is_quorum(mask), !e.is_quorum(full & !mask));
        }
    }

    /// A vote-derived system with `q_r + q_w > T` and `2·q_w > T`
    /// (exactly `QuorumSpec`'s validity conditions) always passes the
    /// intersection certificate, for arbitrary vote vectors.
    #[test]
    fn valid_vote_systems_certify(
        seed in 0u64..5_000,
        n in 2usize..7,
        read_frac in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // At least one positive vote; values 0..=3 exercise zero-vote
        // sites and weighted ties.
        let mut votes: Vec<u64> = (0..n).map(|_| rng.random_range(0..=3u64)).collect();
        if votes.iter().all(|&v| v == 0) {
            votes[rng.random_range(0..n)] = 1;
        }
        let votes = VoteAssignment::weighted(votes);
        let t = votes.total();
        // Derive a valid (q_r, q_w) from the fractions: q_w in the safe
        // upper half, q_r the matching intersection partner.
        let q_w = t / 2 + 1 + (read_frac * ((t - t / 2 - 1) as f64)) as u64;
        let q_r = t + 1 - q_w;
        let spec = QuorumSpec::new(q_r, q_w, t).expect("constructed to be valid");
        let sys = QuorumSystem::from_spec("prop", &votes, spec);
        let cert = sys.certify();
        prop_assert!(cert.ok(), "valid vote spec failed certification: {:?}", cert.failure);
    }

    /// The weighted-threshold expression round-trips the vote arithmetic
    /// exactly: for every subset, `is_quorum` ⇔ the subset's votes reach
    /// the threshold — including ties at exactly `q` votes, which is
    /// where a strict-inequality bug would hide.
    #[test]
    fn weighted_threshold_round_trip(seed in 0u64..5_000, n in 1usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut votes: Vec<u64> = (0..n).map(|_| rng.random_range(0..=3u64)).collect();
        if votes.iter().all(|&v| v == 0) {
            votes[rng.random_range(0..n)] = 1;
        }
        let votes = VoteAssignment::weighted(votes);
        let q = rng.random_range(1..=votes.total());
        let expr = Expr::weighted_threshold(&votes, q);
        for mask in 0..(1u64 << n) {
            let reached = votes.votes_in((0..n).filter(|&s| mask >> s & 1 == 1)) >= q;
            prop_assert_eq!(
                expr.is_quorum(mask),
                reached,
                "mask {mask:#b} with threshold {q} of {:?}",
                votes.as_slice()
            );
        }
    }
}
