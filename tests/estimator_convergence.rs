//! The on-line `f̂` estimation pipeline (§4.2's answer to #P-completeness)
//! must converge to the analytic truth and drive the optimizer to the same
//! decisions.

#![forbid(unsafe_code)]

use quorum_core::analytic::{fully_connected_density, ring_density};
use quorum_core::{AvailabilityModel, QuorumSpec, SearchStrategy, SiteEstimators, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::simulation::NullObserver;
use quorum_replica::{run_static, CurveSet, RunConfig, Simulation, Workload};
use quorum_stats::VoteHistogram;

#[test]
fn online_estimate_converges_to_analytic_truth_on_ring() {
    let n = 15usize;
    let topo = Topology::ring(n);
    let results = run_static(
        &topo,
        VoteAssignment::uniform(n),
        QuorumSpec::majority(n as u64),
        Workload::uniform(n, 0.5),
        RunConfig {
            params: SimParams {
                warmup_accesses: 2_000,
                batch_accesses: 50_000,
                min_batches: 4,
                max_batches: 4,
                ci_half_width: 0.05,
                ..SimParams::paper()
            },
            seed: 1,
            threads: 4,
        },
    );
    let truth = ring_density(n, 0.96, 0.96);
    // Per-site estimates: every site individually converges to f_i (the
    // ring is vertex-transitive, so all f_i coincide).
    for (site, h) in results.combined.per_site_votes.iter().enumerate() {
        let est = h.estimate();
        let tv = est.total_variation(&truth);
        assert!(tv < 0.08, "site {site}: TV {tv}");
    }
}

#[test]
fn estimator_driven_optimizer_matches_analytic_decision() {
    // Feed the SiteEstimators from a live simulation via the observer
    // hook, then compare its optimizer decision with the analytic one.
    struct Recorder {
        est: SiteEstimators<quorum_stats::CountingHistogram>,
    }
    impl quorum_replica::simulation::AccessObserver for Recorder {
        fn on_access(
            &mut self,
            site: usize,
            _members: &[usize],
            votes: u64,
            _kind: quorum_core::Access,
            _decision: quorum_core::protocol::Decision,
            measured: Option<u64>,
        ) {
            if measured.is_some() {
                self.est.record(site, votes);
            }
        }
    }

    let n = 13usize;
    let topo = Topology::fully_connected(n);
    let params = SimParams {
        warmup_accesses: 1_000,
        batch_accesses: 60_000,
        ..SimParams::paper()
    };
    let mut sim = Simulation::new(&topo, params, Workload::uniform(n, 0.5), 9);
    let mut proto = quorum_core::QuorumConsensus::new(
        VoteAssignment::uniform(n),
        QuorumSpec::majority(n as u64),
    );
    let mut rec = Recorder {
        est: SiteEstimators::counting(n, n),
    };
    sim.run_batch(&mut proto, &mut rec);

    let est_model = rec.est.model_uniform();
    let truth = fully_connected_density(n, 0.96, 0.96);
    let true_model = AvailabilityModel::from_mixtures(&truth, &truth);

    for alpha in [0.0, 0.25, 0.75, 1.0] {
        let e = quorum_core::optimal::optimal_quorum(&est_model, alpha, SearchStrategy::Exhaustive);
        let t =
            quorum_core::optimal::optimal_quorum(&true_model, alpha, SearchStrategy::Exhaustive);
        // Compare achieved values under the *true* model (argmax may sit
        // anywhere on a flat top).
        let e_value = alpha * true_model.read_availability(e.spec.q_r())
            + (1.0 - alpha) * true_model.write_availability(e.spec.q_w());
        assert!(
            (t.availability - e_value).abs() < 0.02,
            "α={alpha}: true opt {} vs estimator-driven {}",
            t.availability,
            e_value
        );
    }
}

#[test]
fn footnote_four_scaling_preserves_argmax() {
    // A' (conditional on submitting site up) differs from A by the factor
    // p; the optimizer must land on the same q_r either way.
    let n = 15;
    let truth = ring_density(n, 0.96, 0.96);
    // Conditional density: remove the v = 0 mass and renormalize.
    let mut cond = truth.as_slice().to_vec();
    cond[0] = 0.0;
    let conditional = quorum_stats::DiscreteDist::from_pmf(cond).normalized();

    let full = AvailabilityModel::from_mixtures(&truth, &truth);
    let prime = AvailabilityModel::from_mixtures(&conditional, &conditional);
    for alpha in [0.0, 0.3, 0.7, 1.0] {
        let a = quorum_core::optimal::optimal_quorum(&full, alpha, SearchStrategy::Exhaustive);
        let b = quorum_core::optimal::optimal_quorum(&prime, alpha, SearchStrategy::Exhaustive);
        assert_eq!(
            a.spec.q_r(),
            b.spec.q_r(),
            "α={alpha}: A and A' disagree on the argmax"
        );
        // And the values satisfy A = p·A'.
        assert!(
            (a.availability - 0.96 * b.availability).abs() < 1e-9,
            "α={alpha}: A {} vs p·A' {}",
            a.availability,
            0.96 * b.availability
        );
    }
}

#[test]
fn decayed_estimator_tracks_topology_change() {
    // Simulate on a ring, then on a chorded ring, feeding one decayed
    // estimator; its final estimate must reflect the second regime.
    let n = 15usize;
    let mut est = SiteEstimators::decayed(n, n, 0.999);
    let params = SimParams {
        warmup_accesses: 500,
        batch_accesses: 20_000,
        ..SimParams::paper()
    };

    struct Feed<'a> {
        est: &'a mut SiteEstimators<quorum_stats::DecayedHistogram>,
    }
    impl quorum_replica::simulation::AccessObserver for Feed<'_> {
        fn on_access(
            &mut self,
            site: usize,
            _m: &[usize],
            votes: u64,
            _k: quorum_core::Access,
            _d: quorum_core::protocol::Decision,
            measured: Option<u64>,
        ) {
            if measured.is_some() {
                self.est.record(site, votes);
            }
        }
    }

    for (phase, topo) in [Topology::ring(n), Topology::ring_with_chords(n, 12)]
        .iter()
        .enumerate()
    {
        let mut sim = Simulation::new(topo, params, Workload::uniform(n, 0.5), phase as u64);
        let mut proto = quorum_core::QuorumConsensus::majority(n);
        let mut feed = Feed { est: &mut est };
        sim.run_batch(&mut proto, &mut feed);
    }

    // After the well-connected phase the estimated mean component size
    // must be near the chorded ring's, not the bare ring's.
    let ring_mean = ring_density(n, 0.96, 0.96).mean();
    let est_mean = est.model_uniform(); // model built — now compare tails
    let mean_est: f64 = {
        // Reconstruct the mixture mean from per-site densities.
        let ds = est.densities();
        ds.iter().map(|d| d.mean()).sum::<f64>() / ds.len() as f64
    };
    drop(est_mean);
    assert!(
        mean_est > ring_mean + 1.0,
        "estimated mean {mean_est} did not move past ring mean {ring_mean}"
    );
}

#[test]
fn curves_from_per_site_agree_with_truth() {
    // Full pipeline: simulate ring → per-site histograms → CurveSet →
    // availability; compare with analytic A at several points.
    let n = 15usize;
    let topo = Topology::ring(n);
    let results = run_static(
        &topo,
        VoteAssignment::uniform(n),
        QuorumSpec::majority(n as u64),
        Workload::uniform(n, 0.5),
        RunConfig {
            params: SimParams {
                warmup_accesses: 2_000,
                batch_accesses: 50_000,
                min_batches: 4,
                max_batches: 4,
                ci_half_width: 0.05,
                ..SimParams::paper()
            },
            seed: 3,
            threads: 4,
        },
    );
    let frac = vec![1.0 / n as f64; n];
    let curves = CurveSet::from_per_site(&results, &frac, &frac);
    let truth = ring_density(n, 0.96, 0.96);
    let model = AvailabilityModel::from_mixtures(&truth, &truth);
    for alpha in [0.0, 0.5, 1.0] {
        for q_r in [1u64, 3, 7] {
            let a = curves.availability(
                quorum_core::metrics::AvailabilityMetric::Accessibility,
                alpha,
                q_r,
            );
            let b = model.availability(alpha, q_r);
            assert!(
                (a - b).abs() < 0.02,
                "α={alpha} q_r={q_r}: measured {a} vs analytic {b}"
            );
        }
    }
    let _ = NullObserver; // silence unused-import style drift
}

#[test]
fn asymmetric_read_write_distributions_shift_the_optimum() {
    // Reads originate at the star's hub (big components), writes at the
    // leaves (often isolated): r(v) ≠ w(v), so the availability model must
    // use both mixtures. Compare against the flipped workload.
    use quorum_core::analytic::star_densities;
    let n = 11usize;
    let densities = star_densities(n, 0.9, 0.8);
    let mut hub = vec![0.0; n];
    hub[0] = 1.0;
    let leaf_share = 1.0 / (n - 1) as f64;
    let leaves: Vec<f64> = (0..n)
        .map(|i| if i == 0 { 0.0 } else { leaf_share })
        .collect();

    let reads_at_hub = AvailabilityModel::from_site_densities(&densities, &hub, &leaves);
    let reads_at_leaves = AvailabilityModel::from_site_densities(&densities, &leaves, &hub);

    // With reads at the hub, read availability at moderate quorums is
    // higher than with reads at the leaves.
    for q in 2..=5u64 {
        assert!(
            reads_at_hub.read_availability(q) > reads_at_leaves.read_availability(q),
            "q = {q}"
        );
    }
    // At α = 1 both optimize to q_r = 1 where R(1) = p for either
    // configuration (a read at any up site trivially reaches one vote) —
    // equal up to floating-point accumulation order.
    let a = quorum_core::optimal::optimal_quorum(&reads_at_hub, 1.0, SearchStrategy::Exhaustive);
    let b = quorum_core::optimal::optimal_quorum(&reads_at_leaves, 1.0, SearchStrategy::Exhaustive);
    assert!((a.availability - b.availability).abs() < 1e-9);
    assert!((a.availability - 0.9).abs() < 1e-9);
}

#[test]
fn zipf_workload_simulation_matches_per_site_mixture() {
    // Hot-spot submission on a ring: the curve built from per-site
    // histograms with the matching r_i/w_i weights predicts the measured
    // availability; the plain aggregate histogram does too (it inherits
    // the submission skew automatically).
    let n = 15usize;
    let topo = Topology::ring(n);
    let workload = Workload::zipf(n, 0.5, 1.2);
    let read_frac = workload.read_frac().to_vec();
    let write_frac = workload.write_frac().to_vec();
    let results = run_static(
        &topo,
        VoteAssignment::uniform(n),
        QuorumSpec::from_read_quorum(4, n as u64).unwrap(),
        workload,
        RunConfig {
            params: SimParams {
                warmup_accesses: 2_000,
                batch_accesses: 40_000,
                min_batches: 4,
                max_batches: 4,
                ci_half_width: 0.05,
                ..SimParams::paper()
            },
            seed: 77,
            threads: 4,
        },
    );
    let direct = results.combined.availability();
    let per_site = CurveSet::from_per_site(&results, &read_frac, &write_frac);
    let predicted = per_site.availability(
        quorum_core::metrics::AvailabilityMetric::Accessibility,
        0.5,
        4,
    );
    assert!(
        (direct - predicted).abs() < 0.02,
        "direct {direct} vs per-site mixture {predicted}"
    );
    assert!(results.is_one_copy_serializable());
}
