//! Equivalence pinning for the incremental connectivity kernel.
//!
//! The contract under test: kernel choice must never change a reported
//! number. [`ComponentCache::incremental`] (merge on recovery, single-
//! component rescan on failure, no-op filtering) must produce component
//! views bit-identical to the reference [`ComponentView::compute`] after
//! *every* event of *any* event sequence, and both simulation engines
//! must report bit-identical batch statistics with the kernel on or off.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use quorum_cluster::{ClusterConfig, ClusterEngine};
use quorum_core::{QuorumConsensus, QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::{ComponentCache, ComponentView, NetworkState, Topology, TopologyEvent};
use quorum_replica::simulation::NullObserver;
use quorum_replica::{Simulation, Workload};

/// The topology families named by the paper's §5 experiments plus the
/// weighted-bus encoding (star whose hub carries zero votes).
fn family(kind: usize, n: usize) -> (Topology, Vec<u64>) {
    let n = n.max(5);
    match kind % 4 {
        0 => (Topology::ring(n), vec![1; n]),
        1 => {
            // Weighted votes: exercise non-uniform component vote sums.
            let votes = (0..n).map(|i| (i % 3 + 1) as u64).collect();
            (Topology::ring_with_chords(n, n / 2), votes)
        }
        2 => {
            // Bus as in the §4.2 experiments: hub relays but votes 0.
            let mut votes = vec![1u64; n];
            votes[0] = 0;
            (Topology::star(n), votes)
        }
        _ => (Topology::star(n), vec![1; n]),
    }
}

/// Applies one toggle chosen by `pick`, keeping every event a real
/// transition (`up = !current`). Returns the event applied.
fn toggle(state: &mut NetworkState, topo: &Topology, pick: usize) -> TopologyEvent {
    let n = topo.num_sites();
    let m = topo.num_links();
    let idx = pick % (n + m);
    if idx < n {
        let up = !state.site_up(idx);
        assert!(state.set_site(idx, up));
        TopologyEvent::Site { site: idx, up }
    } else {
        let link = idx - n;
        let up = !state.link_up(link);
        assert!(state.set_link(link, up));
        TopologyEvent::Link { link, up }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every event of a random sequence, the incremental cache's
    /// view equals the reference BFS bit-for-bit: same `comp_id`, same
    /// vote sums, same sizes, same member bitsets.
    #[test]
    fn random_event_sequences_match_reference(
        kind in 0usize..4,
        n in 4usize..22,
        picks in proptest::collection::vec(0usize..10_000, 1..70),
    ) {
        let (topo, votes) = family(kind, n);
        let mut state = NetworkState::all_up(&topo);
        let mut cache = ComponentCache::incremental();
        // Materialize before any event so merges/rescans (not rebuild
        // fallbacks) carry the sequence.
        cache.view(&topo, &state, &votes);
        for &pick in &picks {
            let ev = toggle(&mut state, &topo, pick);
            cache.apply_event(&topo, &state, &votes, ev);
            let expected = ComponentView::compute(&topo, &state, &votes);
            prop_assert_eq!(cache.view(&topo, &state, &votes), &expected);
        }
    }

    /// Every applied event lands in exactly one fast-path counter, so
    /// the counter sum equals the event count (the invariant the CI jq
    /// gate asserts on run manifests).
    #[test]
    fn counter_sum_equals_event_count(
        kind in 0usize..4,
        n in 4usize..22,
        picks in proptest::collection::vec(0usize..10_000, 1..70),
    ) {
        let (topo, votes) = family(kind, n);
        let mut state = NetworkState::all_up(&topo);
        let mut cache = ComponentCache::incremental();
        for &pick in &picks {
            let ev = toggle(&mut state, &topo, pick);
            cache.apply_event(&topo, &state, &votes, ev);
        }
        prop_assert_eq!(cache.delta_counters().total(), picks.len() as u64);
    }
}

/// Everything down, then everything back up: the emptiest and fullest
/// component structures, reached through pure fast paths.
#[test]
fn all_down_then_all_up_matches_reference() {
    let (topo, votes) = family(1, 12);
    let mut state = NetworkState::all_up(&topo);
    let mut cache = ComponentCache::incremental();
    cache.view(&topo, &state, &votes);
    let n = topo.num_sites();
    for phase in [false, true] {
        for s in 0..n {
            assert!(state.set_site(s, phase));
            cache.apply_event(
                &topo,
                &state,
                &votes,
                TopologyEvent::Site { site: s, up: phase },
            );
            let expected = ComponentView::compute(&topo, &state, &votes);
            assert_eq!(cache.view(&topo, &state, &votes), &expected);
        }
    }
    assert_eq!(cache.view(&topo, &state, &votes).num_components(), 1);
}

/// Hub failure on a star shatters one component into n−1 singletons in a
/// single rescan; hub recovery re-merges them.
#[test]
fn star_hub_failure_and_recovery_match_reference() {
    let (topo, votes) = family(3, 9);
    let mut state = NetworkState::all_up(&topo);
    let mut cache = ComponentCache::incremental();
    cache.view(&topo, &state, &votes);
    for up in [false, true] {
        assert!(state.set_site(0, up));
        cache.apply_event(&topo, &state, &votes, TopologyEvent::Site { site: 0, up });
        let expected = ComponentView::compute(&topo, &state, &votes);
        assert_eq!(cache.view(&topo, &state, &votes), &expected);
        let want = if up { 1 } else { topo.num_sites() - 1 };
        assert_eq!(cache.view(&topo, &state, &votes).num_components(), want);
    }
    let counters = cache.delta_counters();
    assert_eq!(counters.rescans, 1, "hub failure is one component rescan");
    assert_eq!(counters.merges, 1, "hub recovery is one merge cascade");
}

fn pin_params() -> SimParams {
    SimParams {
        warmup_accesses: 1_000,
        batch_accesses: 8_000,
        ..SimParams::quick()
    }
}

/// The replica engine reports bit-identical batch statistics with the
/// kernel on or off, on the same seeds — including the survivability
/// probe, which reads components through the new member index.
#[test]
fn replica_stats_identical_kernel_on_or_off() {
    let topo = Topology::ring_with_chords(21, 8);
    let votes = VoteAssignment::weighted((0..21).map(|i| (i % 4 + 1) as u64).collect());
    let spec = QuorumSpec::majority(votes.total());
    let workload = Workload::uniform(21, 0.6);

    let run = |kernel: bool| {
        let mut sim =
            Simulation::with_votes(&topo, pin_params(), votes.clone(), workload.clone(), 97)
                .probe_survivability(true)
                .with_delta_kernel(kernel);
        let mut proto = QuorumConsensus::new(votes.clone(), spec);
        (0..3)
            .map(|b| sim.run_indexed_batch(&mut proto, &mut NullObserver, b))
            .collect::<Vec<_>>()
    };
    let on = run(true);
    let off = run(false);

    for (a, b) in on.iter().zip(&off) {
        assert_eq!(a.reads_submitted, b.reads_submitted);
        assert_eq!(a.reads_granted, b.reads_granted);
        assert_eq!(a.writes_submitted, b.writes_submitted);
        assert_eq!(a.writes_granted, b.writes_granted);
        assert_eq!(a.surv_possible, b.surv_possible);
        assert_eq!(a.contact_messages, b.contact_messages);
        assert_eq!(a.stale_reads, b.stale_reads);
        assert_eq!(a.write_conflicts, b.write_conflicts);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.site_transitions, b.site_transitions);
        assert_eq!(a.link_transitions, b.link_transitions);
        assert_eq!(a.accesses_dispatched, b.accesses_dispatched);
        assert_eq!(a.cache_hits, b.cache_hits, "hit accounting must not drift");
        assert_eq!(a.cache_recomputations, b.cache_recomputations);
        // The kernels differ only in the fast-path counters.
        assert_eq!(
            a.delta_merges + a.delta_rescans + a.delta_noops + a.full_recomputes,
            a.site_transitions + a.link_transitions,
            "every transition classified exactly once"
        );
        assert_eq!(
            b.delta_merges + b.delta_rescans + b.delta_noops + b.full_recomputes,
            0
        );
    }
}

/// The cluster engine's full `ClusterStats` (outcomes, messages,
/// latencies, goodput) is bit-identical with the kernel on or off.
#[test]
fn cluster_stats_identical_kernel_on_or_off() {
    let topo = Topology::ring_with_chords(17, 6);
    let votes = VoteAssignment::uniform(17);
    let spec = QuorumSpec::majority(votes.total());
    let workload = Workload::uniform(17, 0.5);

    let run = |kernel: bool| {
        let mut cfg = ClusterConfig::new(pin_params());
        cfg.delta_kernel = kernel;
        let mut engine =
            ClusterEngine::with_votes(&topo, cfg, spec, votes.clone(), workload.clone(), 53);
        (0..2)
            .map(|b| engine.run_indexed_batch(b))
            .collect::<Vec<_>>()
    };
    let on = run(true);
    let off = run(false);

    for (a, b) in on.iter().zip(&off) {
        assert_eq!(
            a.delta_merges + a.delta_rescans + a.delta_noops + a.full_recomputes,
            a.site_transitions + a.link_transitions
        );
        let mut a = a.clone();
        a.delta_merges = 0;
        a.delta_rescans = 0;
        a.delta_noops = 0;
        a.full_recomputes = 0;
        assert_eq!(&a, b, "kernel choice changed a cluster statistic");
    }
}
