//! Scripted deterministic scenarios.
//!
//! The stochastic simulator answers statistical questions; protocol
//! *walkthroughs* (like the §2.2 safety narrative) want exact control:
//! fail these links, submit this access, reassign, heal, observe. A
//! [`Scenario`] replays an explicit step list against the same machinery
//! the stochastic simulator uses — `NetworkState`, `ComponentCache`, the
//! 1SR checker, and any [`ConsistencyProtocol`].

use crate::object::SerializabilityChecker;
use quorum_core::protocol::{ConsistencyProtocol, Decision};
use quorum_core::{Access, VoteAssignment};
use quorum_graph::{ComponentCache, NetworkState, Topology};

/// One scripted step.
#[derive(Debug, Clone)]
pub enum Step {
    /// Take a site down.
    FailSite(usize),
    /// Bring a site back.
    RepairSite(usize),
    /// Take a link down.
    FailLink(usize),
    /// Bring a link back.
    RepairLink(usize),
    /// Submit an access at a site.
    Access(Access, usize),
}

/// Result of one access step.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessOutcome {
    /// The step index in the script.
    pub step: usize,
    /// Access kind.
    pub kind: Access,
    /// Submitting site.
    pub site: usize,
    /// Votes reachable at submission time.
    pub votes: u64,
    /// Protocol decision.
    pub decision: Decision,
    /// Whether the access was consistent (fresh read / aware write);
    /// `true` for denied accesses.
    pub consistent: bool,
}

/// A deterministic scenario executor.
pub struct Scenario<'a> {
    topology: &'a Topology,
    votes: VoteAssignment,
    state: NetworkState,
    cache: ComponentCache,
    checker: SerializabilityChecker,
    outcomes: Vec<AccessOutcome>,
    steps_run: usize,
}

impl<'a> Scenario<'a> {
    /// Starts with every site/link up and uniform votes.
    pub fn new(topology: &'a Topology) -> Self {
        Self::with_votes(topology, VoteAssignment::uniform(topology.num_sites()))
    }

    /// Starts with an explicit vote assignment.
    pub fn with_votes(topology: &'a Topology, votes: VoteAssignment) -> Self {
        assert_eq!(votes.num_sites(), topology.num_sites());
        Self {
            topology,
            state: NetworkState::all_up(topology),
            cache: ComponentCache::new(),
            checker: SerializabilityChecker::new(topology.num_sites()),
            votes,
            outcomes: Vec::new(),
            steps_run: 0,
        }
    }

    /// Current network state (for assertions).
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// Votes reachable from `site` right now.
    pub fn votes_of(&mut self, site: usize) -> u64 {
        self.cache
            .view(self.topology, &self.state, self.votes.as_slice())
            .votes_of(site)
    }

    /// Members of `site`'s component right now.
    pub fn members_of(&mut self, site: usize) -> Vec<usize> {
        self.cache
            .view(self.topology, &self.state, self.votes.as_slice())
            .members_of(site)
            .collect()
    }

    /// Executes one step against `protocol`.
    pub fn step<P: ConsistencyProtocol>(&mut self, protocol: &mut P, step: Step) {
        let idx = self.steps_run;
        self.steps_run += 1;
        match step {
            Step::FailSite(s) => {
                if self.state.set_site(s, false) {
                    self.cache.invalidate();
                }
            }
            Step::RepairSite(s) => {
                if self.state.set_site(s, true) {
                    self.cache.invalidate();
                }
            }
            Step::FailLink(l) => {
                if self.state.set_link(l, false) {
                    self.cache.invalidate();
                }
            }
            Step::RepairLink(l) => {
                if self.state.set_link(l, true) {
                    self.cache.invalidate();
                }
            }
            Step::Access(kind, site) => {
                let view = self
                    .cache
                    .view(self.topology, &self.state, self.votes.as_slice());
                let votes = view.votes_of(site);
                let members: Vec<usize> = if votes > 0 {
                    view.members_of(site).collect()
                } else {
                    Vec::new()
                };
                let decision = protocol.decide(kind, &members, votes);
                for refreshed in protocol.drain_refreshes() {
                    self.checker.on_refresh(&refreshed);
                }
                let consistent = if decision.is_granted() {
                    match kind {
                        Access::Write => self.checker.on_write_granted(&members),
                        Access::Read => self.checker.on_read_granted(&members),
                    }
                } else {
                    true
                };
                self.outcomes.push(AccessOutcome {
                    step: idx,
                    kind,
                    site,
                    votes,
                    decision,
                    consistent,
                });
            }
        }
    }

    /// Executes a whole script.
    pub fn run<P: ConsistencyProtocol>(&mut self, protocol: &mut P, steps: Vec<Step>) {
        for s in steps {
            self.step(protocol, s);
        }
    }

    /// All access outcomes so far.
    pub fn outcomes(&self) -> &[AccessOutcome] {
        &self.outcomes
    }

    /// The last access outcome.
    ///
    /// # Panics
    /// Panics if no access has been submitted.
    pub fn last(&self) -> &AccessOutcome {
        self.outcomes.last().expect("no access submitted yet")
    }

    /// True iff every granted access was consistent.
    pub fn all_consistent(&self) -> bool {
        self.outcomes.iter().all(|o| o.consistent)
    }

    /// Applies a protocol-driven data refresh directly (used when a test
    /// drives the protocol outside [`Scenario::step`]).
    pub fn apply_refresh(&mut self, members: &[usize]) {
        self.checker.on_refresh(members);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_core::{QrProtocol, QuorumConsensus, QuorumSpec};

    #[test]
    fn partition_denies_minority_writes() {
        // 5-ring: cut links (0,1) and (2,3) → components {1,2} and {3,4,0}.
        let topo = Topology::ring(5);
        let mut sc = Scenario::new(&topo);
        let mut proto = QuorumConsensus::majority(5);
        sc.run(
            &mut proto,
            vec![
                Step::FailLink(0),
                Step::FailLink(2),
                Step::Access(Access::Write, 1), // minority: 2 votes < 3
                Step::Access(Access::Write, 3), // majority: 3 votes ≥ 3
            ],
        );
        assert_eq!(sc.outcomes()[0].decision, Decision::Denied);
        assert_eq!(sc.outcomes()[0].votes, 2);
        assert_eq!(sc.outcomes()[1].decision, Decision::Granted);
        assert!(sc.all_consistent());
    }

    #[test]
    fn healed_partition_reads_latest_write() {
        let topo = Topology::ring(5);
        let mut sc = Scenario::new(&topo);
        let mut proto = QuorumConsensus::majority(5);
        sc.run(
            &mut proto,
            vec![
                Step::FailLink(0),
                Step::FailLink(2),
                Step::Access(Access::Write, 3), // granted in {3,4,0}
                Step::RepairLink(0),
                Step::RepairLink(2),
                Step::Access(Access::Read, 1), // must see that write
            ],
        );
        let read = sc.last();
        assert_eq!(read.decision, Decision::Granted);
        assert!(read.consistent, "healed read must be fresh");
    }

    #[test]
    fn qr_reassignment_narrative_from_section_2_2() {
        // The paper's §2.2 story, under the corrected joint-quorum install
        // rule: change the assignment inside a component holding both the
        // old and new write quorums; the other side cannot access until it
        // learns of the change by re-joining.
        let topo = Topology::ring(5); // links: 0:(0,1) 1:(1,2) 2:(2,3) 3:(3,4) 4:(4,0)
        let mut sc = Scenario::new(&topo);
        let mut qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));

        // Isolate site 1: {1} vs {2,3,4,0}.
        sc.step(&mut qr, Step::FailLink(0));
        sc.step(&mut qr, Step::FailLink(1));

        // Reassign inside the 4-vote side to (q_r=2, q_w=4):
        // max(q_w_old, q_w_new) = max(3, 4) = 4 votes — exactly available.
        let members = sc.members_of(3);
        assert_eq!(members.len(), 4);
        let new = QuorumSpec::from_read_quorum(2, 5).unwrap();
        qr.try_reassign(&members, new)
            .expect("4-vote side holds both write quorums");

        // The isolated site is stale (version 1) with 1 vote — below the
        // old q_r = 3, so it cannot access (the §2.2 invariant).
        sc.step(&mut qr, Step::Access(Access::Read, 1));
        assert_eq!(sc.last().decision, Decision::Denied);

        // The installing side writes and reads under the new assignment.
        sc.step(&mut qr, Step::Access(Access::Write, 4));
        assert_eq!(sc.last().decision, Decision::Granted);
        sc.step(&mut qr, Step::Access(Access::Read, 2));
        assert_eq!(sc.last().decision, Decision::Granted);

        // Heal: the joining site adopts version 2 on first contact.
        sc.step(&mut qr, Step::RepairLink(0));
        sc.step(&mut qr, Step::RepairLink(1));
        sc.step(&mut qr, Step::Access(Access::Read, 1));
        assert_eq!(sc.last().decision, Decision::Granted);
        assert_eq!(qr.site(1).version, qr.global_max_version());
        assert!(sc.all_consistent());
    }

    #[test]
    fn paper_install_rule_produces_stale_read() {
        // The demonstration the joint rule exists for: install ROWA from a
        // 3-vote component (the paper's literal §2.2 rule allows it), then
        // a 1-vote read under the loosened q_r = 1 misses the only current
        // copies.
        let topo = Topology::ring(5);
        let mut sc = Scenario::new(&topo);
        let mut qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));

        // Partition {1,2} vs {3,4,0}; write lands on the majority side.
        sc.step(&mut qr, Step::FailLink(0));
        sc.step(&mut qr, Step::FailLink(2));
        sc.step(&mut qr, Step::Access(Access::Write, 3));
        assert_eq!(sc.last().decision, Decision::Granted);

        // Paper-rule install of ROWA from the same 3-vote side. (The value
        // refresh still happens, but covers only 3 of 5 sites.)
        let members = sc.members_of(3);
        qr.try_reassign_paper_rule(&members, QuorumSpec::read_one_write_all(5))
            .expect("paper rule needs only old q_w = 3");
        for refreshed in quorum_core::protocol::ConsistencyProtocol::drain_refreshes(&mut qr) {
            sc.apply_refresh(&refreshed);
        }

        // Heal only site 1's side partially: connect 1 to the *other*
        // stale site 2 — and crucially let site 1 first hear about v2
        // via a brief contact with site 0.
        sc.step(&mut qr, Step::RepairLink(0)); // 0-1 back: {0,1} joins... full ring still cut at link 2
                                               // Now {3,4,0,1} is one component; sync happens on next access.
        sc.step(&mut qr, Step::Access(Access::Read, 1));
        assert_eq!(sc.last().decision, Decision::Granted);
        assert!(sc.last().consistent, "this read reaches current copies");

        // Re-partition so that {1,2} is alone: site 1 now knows v2
        // (q_r = 1) but neither 1 nor 2 holds the current value.
        sc.step(&mut qr, Step::FailLink(0));
        sc.step(&mut qr, Step::RepairLink(2)); // 2-3 back? keep it simple:
        sc.step(&mut qr, Step::FailLink(2));
        // Components: {1,2} (via link 1) and {3,4,0}.
        sc.step(&mut qr, Step::Access(Access::Write, 0));
        assert_eq!(
            sc.last().decision,
            Decision::Denied,
            "ROWA writes need all 5"
        );
        sc.step(&mut qr, Step::Access(Access::Read, 2));
        // Site 2 is stale on versions? Site 2 synced v2 through site 1.
        // The read is granted with q_r = 1 — and it is STALE: the current
        // value lives only on {3,4,0} (write) ∪ refresh {3,4,0}.
        if sc.last().decision == Decision::Granted {
            assert!(
                !sc.last().consistent,
                "paper-rule install must produce a stale read here"
            );
        }
        assert!(!sc.all_consistent());
    }

    #[test]
    fn down_site_accesses_are_denied() {
        let topo = Topology::ring(4);
        let mut sc = Scenario::new(&topo);
        let mut proto = QuorumConsensus::read_one_write_all(4);
        sc.run(
            &mut proto,
            vec![
                Step::FailSite(2),
                Step::Access(Access::Read, 2), // down site: 0 votes
            ],
        );
        assert_eq!(sc.last().votes, 0);
        assert_eq!(sc.last().decision, Decision::Denied);
    }

    #[test]
    fn scripted_stale_read_with_invalid_protocol() {
        // Hand-drive the condition-1 violation: write lands on one side
        // of a partition, an over-permissive read on the other misses it.
        struct Unsafe;
        impl ConsistencyProtocol for Unsafe {
            fn decide(&mut self, _k: Access, _m: &[usize], votes: u64) -> Decision {
                if votes >= 2 {
                    Decision::Granted
                } else {
                    Decision::Denied
                }
            }
            fn can_grant(&self, _k: Access, _m: &[usize], votes: u64) -> bool {
                votes >= 2
            }
            fn effective_spec(&self, _m: &[usize]) -> QuorumSpec {
                QuorumSpec::majority(5)
            }
            fn total_votes(&self) -> u64 {
                5
            }
        }
        let topo = Topology::ring(5);
        let mut sc = Scenario::new(&topo);
        let mut proto = Unsafe;
        sc.run(
            &mut proto,
            vec![
                Step::FailLink(0),
                Step::FailLink(2),
                Step::Access(Access::Write, 3), // granted in {3,4,0}
                Step::Access(Access::Read, 1),  // granted in {1,2}: stale!
            ],
        );
        assert!(!sc.outcomes()[1].consistent, "read must be stale");
        assert!(!sc.all_consistent());
    }

    #[test]
    fn repeated_toggles_keep_cache_coherent() {
        let topo = Topology::ring_with_chords(9, 3);
        let mut sc = Scenario::new(&topo);
        let mut proto = QuorumConsensus::majority(9);
        for i in 0..9 {
            sc.step(&mut proto, Step::FailSite(i % 9));
            sc.step(&mut proto, Step::Access(Access::Read, (i + 1) % 9));
            sc.step(&mut proto, Step::RepairSite(i % 9));
        }
        // After all repairs the full component is back.
        assert_eq!(sc.votes_of(0), 9);
        assert!(sc.all_consistent());
    }
}
