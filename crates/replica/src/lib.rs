//! End-to-end replicated-database availability simulation.
//!
//! Ties the substrates together into the paper's evaluation harness (§5):
//! a [`quorum_graph::Topology`] under Poisson failures/repairs
//! ([`quorum_des`]), a replicated object governed by a consistency
//! protocol ([`quorum_core`]), and a stream of read/write accesses whose
//! grant rate *is* the ACC availability metric.
//!
//! Key entry points:
//!
//! * [`Simulation`] — one warmed-up measurement batch over one topology.
//! * [`runner::run_static`] — multi-batch (parallel) run with
//!   batch-means confidence intervals, reproducing the §5.2 methodology.
//! * [`curves::CurveSet`] — turns the measured component-vote histograms
//!   into full `A(α, q_r)` curves (Figures 2–7) via the Figure-1 model.
//! * [`adaptive::run_adaptive`] — the dynamic QR protocol driven by
//!   on-line density estimates (§4.3) under a shifting workload.
//! * [`object::SerializabilityChecker`] — validates one-copy
//!   serializability of every granted access (and exposes violations when
//!   deliberately-invalid quorums are simulated).
//! * [`bus_sim::BusSimulation`] — the single-bus architecture of §4.2,
//!   validated against its closed-form densities.
//! * [`script::Scenario`] — deterministic scripted walkthroughs (the §2.2
//!   reassignment narrative as executable steps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod bus_sim;
pub mod curves;
pub mod failure;
pub mod object;
pub mod results;
pub mod runner;
pub mod scenario;
pub mod script;
pub mod simulation;
pub mod sweep;
pub mod workload;

pub use curves::CurveSet;
pub use failure::FailureProcesses;
pub use object::SerializabilityChecker;
pub use results::{BatchStats, RunResults};
pub use runner::{run_protocol_observed, run_static, run_static_observed, RunConfig};
pub use scenario::PaperScenario;
pub use simulation::Simulation;
pub use workload::Workload;
