//! One-copy serializability checking.
//!
//! The whole point of quorum constraints (§2.1) is that "any access to a
//! data item is aware of the most recent update". This checker tracks which
//! physical copies hold the current value: a granted write installs a new
//! version on every copy in its component; a granted read is *correct* iff
//! its component contains at least one current copy. Valid quorum pairs
//! (conditions 1–2) guarantee zero violations; the checker exists precisely
//! so tests can demonstrate both directions.

/// Tracks copy currency and counts 1SR violations.
#[derive(Debug, Clone)]
pub struct SerializabilityChecker {
    /// Monotone version per copy; version 0 = initial value (held by all).
    copy_version: Vec<u64>,
    /// Version of the most recent granted write.
    latest: u64,
    reads_checked: u64,
    stale_reads: u64,
    concurrent_write_epochs: u64,
}

impl SerializabilityChecker {
    /// All copies start current (version 0).
    pub fn new(n_sites: usize) -> Self {
        Self {
            copy_version: vec![0; n_sites],
            latest: 0,
            reads_checked: 0,
            stale_reads: 0,
            concurrent_write_epochs: 0,
        }
    }

    /// Records a granted write performed from a component containing
    /// `members`: all reachable copies receive the new version.
    ///
    /// Returns `false` — and counts a *write-write conflict* — when the
    /// writing component could not see the most recent write (a lost
    /// update). Condition 2 (`q_w > T/2`) exists precisely to make this
    /// impossible; condition 1 alone only protects reads.
    pub fn on_write_granted(&mut self, members: &[usize]) -> bool {
        let best = members
            .iter()
            .map(|&s| self.copy_version[s])
            .max()
            .unwrap_or(0);
        let aware = best == self.latest;
        if !aware {
            self.concurrent_write_epochs += 1;
        }
        self.latest += 1;
        for &s in members {
            self.copy_version[s] = self.latest;
        }
        aware
    }

    /// Records a data refresh within a component: every member adopts the
    /// newest version any member holds. This models the copy update that
    /// must accompany a quorum *reassignment* (§2.2): the installing
    /// component holds a write quorum under the old assignment, and any
    /// two write quorums intersect (each exceeds T/2), so the component
    /// always contains a current copy to propagate. Without this refresh
    /// a subsequent read under a loosened `q_r` can miss the last write —
    /// see the `adaptive_tracks_reliability_degradation` test.
    pub fn on_refresh(&mut self, members: &[usize]) {
        let best = members
            .iter()
            .map(|&s| self.copy_version[s])
            .max()
            .unwrap_or(0);
        for &s in members {
            self.copy_version[s] = best;
        }
    }

    /// Records a granted read from a component containing `members`;
    /// returns `true` if the read saw the most recent write.
    pub fn on_read_granted(&mut self, members: &[usize]) -> bool {
        self.reads_checked += 1;
        let best = members
            .iter()
            .map(|&s| self.copy_version[s])
            .max()
            .unwrap_or(0);
        let fresh = best == self.latest;
        if !fresh {
            self.stale_reads += 1;
        }
        fresh
    }

    /// Version of the most recent granted write.
    pub fn latest_version(&self) -> u64 {
        self.latest
    }

    /// Granted reads validated so far.
    pub fn reads_checked(&self) -> u64 {
        self.reads_checked
    }

    /// Reads that missed the most recent write (must be 0 under valid
    /// quorums).
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads
    }

    /// Writes performed without seeing the most recent write — lost
    /// updates (must be 0 when `q_w > T/2`).
    pub fn write_conflicts(&self) -> u64 {
        self.concurrent_write_epochs
    }

    /// True iff no violation has been observed.
    pub fn is_one_copy_serializable(&self) -> bool {
        self.stale_reads == 0 && self.concurrent_write_epochs == 0
    }

    /// Resets for a fresh batch.
    pub fn reset(&mut self) {
        self.copy_version.fill(0);
        self.latest = 0;
        self.reads_checked = 0;
        self.stale_reads = 0;
        self.concurrent_write_epochs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_after_write_in_same_component_is_fresh() {
        let mut c = SerializabilityChecker::new(5);
        assert!(c.on_write_granted(&[0, 1, 2]));
        assert!(c.on_read_granted(&[2, 3]));
        assert!(c.is_one_copy_serializable());
    }

    #[test]
    fn read_in_disjoint_component_is_stale() {
        let mut c = SerializabilityChecker::new(5);
        c.on_write_granted(&[0, 1, 2]);
        assert!(!c.on_read_granted(&[3, 4]), "no current copy reachable");
        assert_eq!(c.stale_reads(), 1);
        assert!(!c.is_one_copy_serializable());
    }

    #[test]
    fn initial_reads_are_fresh() {
        let mut c = SerializabilityChecker::new(3);
        assert!(c.on_read_granted(&[1]));
        assert_eq!(c.latest_version(), 0);
    }

    #[test]
    fn later_write_supersedes() {
        let mut c = SerializabilityChecker::new(4);
        assert!(c.on_write_granted(&[0, 1, 2, 3]));
        assert!(c.on_write_granted(&[0, 1])); // partition shrank, quorum held
        assert!(c.on_read_granted(&[1, 2]), "copy 1 is current");
        assert!(!c.on_read_granted(&[2, 3]), "copies 2,3 hold version 1");
    }

    #[test]
    fn disjoint_writes_conflict() {
        // Two writes in disjoint components: the second cannot have seen
        // the first — a lost update (what condition 2 forbids).
        let mut c = SerializabilityChecker::new(6);
        assert!(c.on_write_granted(&[0, 1, 2]));
        assert!(!c.on_write_granted(&[3, 4, 5]), "blind write");
        assert_eq!(c.write_conflicts(), 1);
        assert!(!c.is_one_copy_serializable());
        // A read that reaches the newest epoch is still "fresh" w.r.t. the
        // version counter, but the history is already non-serializable.
        assert!(c.on_read_granted(&[4]));
    }

    #[test]
    fn reset_clears_history() {
        let mut c = SerializabilityChecker::new(3);
        c.on_write_granted(&[0]);
        c.on_read_granted(&[1]); // stale
        assert!(!c.is_one_copy_serializable());
        c.reset();
        assert!(c.is_one_copy_serializable());
        assert_eq!(c.latest_version(), 0);
        assert_eq!(c.reads_checked(), 0);
    }

    #[test]
    fn empty_member_read_counts_against_initial_only() {
        let mut c = SerializabilityChecker::new(3);
        assert!(c.on_read_granted(&[]), "version 0 everywhere");
        c.on_write_granted(&[0]);
        assert!(!c.on_read_granted(&[]));
    }
}
