//! The paper's evaluation scenario (§5.1–5.2).

use quorum_graph::Topology;

/// Chord counts of the paper's seven topologies (101-site ring + k chords;
/// 4949 chords = fully connected).
pub const PAPER_CHORDS: [usize; 7] = [0, 1, 2, 4, 16, 256, 4949];

/// Read ratios plotted in Figures 2–7.
pub const PAPER_ALPHAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Number of sites in every paper topology.
pub const PAPER_SITES: usize = 101;

/// One of the paper's evaluation configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperScenario {
    /// Number of chords added to the 101-ring.
    pub chords: usize,
}

impl PaperScenario {
    /// Scenario for "Topology `chords`".
    ///
    /// # Panics
    /// Panics if `chords` is not one of the paper's seven values.
    pub fn new(chords: usize) -> Self {
        assert!(
            PAPER_CHORDS.contains(&chords),
            "paper topologies use chords in {PAPER_CHORDS:?}, got {chords}"
        );
        Self { chords }
    }

    /// All seven scenarios in paper order.
    pub fn all() -> Vec<PaperScenario> {
        PAPER_CHORDS.iter().map(|&c| Self::new(c)).collect()
    }

    /// The figure number (2–7) that plots this topology, if any; the
    /// fully-connected case is omitted from the paper's figures because
    /// its curves coincide with topology 256.
    pub fn figure(&self) -> Option<u32> {
        match self.chords {
            0 => Some(2),
            1 => Some(3),
            2 => Some(4),
            4 => Some(5),
            16 => Some(6),
            256 => Some(7),
            _ => None,
        }
    }

    /// Builds the topology.
    pub fn topology(&self) -> Topology {
        Topology::ring_with_chords(PAPER_SITES, self.chords)
    }

    /// Display label ("Topology 16").
    pub fn label(&self) -> String {
        format!("Topology {}", self.chords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build() {
        for s in PaperScenario::all() {
            let t = s.topology();
            assert_eq!(t.num_sites(), 101);
            assert_eq!(t.num_links(), 101 + s.chords);
        }
    }

    #[test]
    fn figure_mapping() {
        assert_eq!(PaperScenario::new(0).figure(), Some(2));
        assert_eq!(PaperScenario::new(256).figure(), Some(7));
        assert_eq!(PaperScenario::new(4949).figure(), None);
    }

    #[test]
    fn labels() {
        assert_eq!(PaperScenario::new(16).label(), "Topology 16");
    }

    #[test]
    #[should_panic(expected = "paper topologies")]
    fn unknown_chord_count_rejected() {
        PaperScenario::new(3);
    }
}
