//! Shared site/link failure-process plumbing.
//!
//! Both the instantaneous simulator ([`crate::Simulation`]) and the
//! message-level cluster engine (`quorum-cluster`) drive the same §5.2
//! stochastic model: one alternating up/down renewal process per site and
//! per link, with optional per-component reliability overrides. Keeping
//! the process bank and its event-scheduling order in one place guarantees
//! the two engines consume the failure RNG stream identically — which is
//! what makes the zero-latency degeneracy test exact rather than merely
//! statistical.

use quorum_des::{EventSchedule, OnOffProcess, SimParams, SimTime};
use rand::Rng;

/// The bank of per-site and per-link on/off processes of one batch.
#[derive(Debug, Clone)]
pub struct FailureProcesses {
    sites: Vec<OnOffProcess>,
    links: Vec<OnOffProcess>,
}

fn build_bank(params: &SimParams, n: usize, rels: Option<&[f64]>) -> Vec<OnOffProcess> {
    let default = OnOffProcess::from_reliability(params.reliability, params.mu_fail())
        .with_distributions(params.fail_dist, params.repair_dist);
    match rels {
        None => vec![default; n],
        Some(rels) => {
            assert_eq!(rels.len(), n, "one reliability per component");
            rels.iter()
                .map(|&p| {
                    OnOffProcess::from_reliability(p, params.mu_fail())
                        .with_distributions(params.fail_dist, params.repair_dist)
                })
                .collect()
        }
    }
}

impl FailureProcesses {
    /// Creates the process bank: every component starts up, homogeneous
    /// parameters unless per-site / per-link reliabilities are supplied.
    ///
    /// # Panics
    /// Panics on reliability-list length mismatch.
    pub fn new(
        params: &SimParams,
        n_sites: usize,
        n_links: usize,
        site_rels: Option<&[f64]>,
        link_rels: Option<&[f64]>,
    ) -> Self {
        Self {
            sites: build_bank(params, n_sites, site_rels),
            links: build_bank(params, n_links, link_rels),
        }
    }

    /// Schedules the first transition of every component: all sites in
    /// index order, then all links — the canonical stream order both
    /// engines share. Generic over the event-list implementation so the
    /// same code drives the heap and the calendar queue.
    pub fn schedule_initial<E, Q: EventSchedule<E>, R: Rng + ?Sized>(
        &mut self,
        queue: &mut Q,
        rng: &mut R,
        mut site_event: impl FnMut(usize) -> E,
        mut link_event: impl FnMut(usize) -> E,
    ) {
        for (i, p) in self.sites.iter_mut().enumerate() {
            let (gap, _) = p.next_transition(rng);
            queue.schedule(SimTime::new(gap), site_event(i));
        }
        for (i, p) in self.links.iter_mut().enumerate() {
            let (gap, _) = p.next_transition(rng);
            queue.schedule(SimTime::new(gap), link_event(i));
        }
    }

    /// Handles a site-transition event: returns the site's new up/down
    /// state and the gap until its next transition (which the caller
    /// schedules).
    pub fn site_transition<R: Rng + ?Sized>(&mut self, i: usize, rng: &mut R) -> (bool, f64) {
        let up = self.sites[i].is_up();
        let (gap, _) = self.sites[i].next_transition(rng);
        (up, gap)
    }

    /// Handles a link-transition event (see
    /// [`FailureProcesses::site_transition`]).
    pub fn link_transition<R: Rng + ?Sized>(&mut self, i: usize, rng: &mut R) -> (bool, f64) {
        let up = self.links[i].is_up();
        let (gap, _) = self.links[i].next_transition(rng);
        (up, gap)
    }

    /// Number of site processes.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of link processes.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_des::EventQueue;
    use quorum_stats::rng::rng_from_seed;

    #[test]
    fn bank_sizes_and_defaults() {
        let p = SimParams::quick();
        let f = FailureProcesses::new(&p, 5, 7, None, None);
        assert_eq!(f.num_sites(), 5);
        assert_eq!(f.num_links(), 7);
    }

    #[test]
    fn initial_schedule_covers_every_component() {
        let p = SimParams::quick();
        let mut f = FailureProcesses::new(&p, 3, 4, None, None);
        let mut q: EventQueue<(bool, usize)> = EventQueue::new();
        let mut rng = rng_from_seed(1);
        f.schedule_initial(&mut q, &mut rng, |i| (true, i), |i| (false, i));
        assert_eq!(q.len(), 7);
        let mut sites = 0;
        let mut links = 0;
        while let Some((_, (is_site, _))) = q.pop() {
            if is_site {
                sites += 1;
            } else {
                links += 1;
            }
        }
        assert_eq!((sites, links), (3, 4));
    }

    #[test]
    fn transitions_alternate_state() {
        let p = SimParams::quick();
        let mut f = FailureProcesses::new(&p, 1, 0, None, None);
        let mut rng = rng_from_seed(2);
        // Initial next_transition (during scheduling) flips toward down.
        let mut q: EventQueue<usize> = EventQueue::new();
        f.schedule_initial(&mut q, &mut rng, |i| i, |i| i);
        let (up1, _) = f.site_transition(0, &mut rng);
        assert!(!up1, "first transition is the failure");
        let (up2, _) = f.site_transition(0, &mut rng);
        assert!(up2, "second is the repair");
    }

    #[test]
    fn heterogeneous_reliabilities_apply() {
        let p = SimParams::quick();
        let f = FailureProcesses::new(&p, 2, 1, Some(&[0.5, 0.99]), None);
        assert_eq!(f.sites[0].reliability(), 0.5);
        assert!((f.sites[1].reliability() - 0.99).abs() < 1e-12);
        assert_eq!(f.links[0].reliability(), p.reliability);
    }

    #[test]
    #[should_panic(expected = "one reliability per component")]
    fn wrong_override_length_rejected() {
        let p = SimParams::quick();
        FailureProcesses::new(&p, 3, 0, Some(&[0.9]), None);
    }
}
