//! Multi-batch (parallel) runs with batch-means confidence intervals.
//!
//! Reproduces the §5.2 methodology: independent batches are added (between
//! `min_batches` and `max_batches`) until the 95 % confidence interval on
//! ACC has half-width ≤ 0.5 %. Batches are statistically independent by
//! construction (disjoint derived seeds, network reset per batch), so they
//! can run on worker threads; results are merged deterministically by
//! batch index. The round structure, worker threads, stopping rule, and
//! utilization accounting all live in [`quorum_stats::converge`] — the
//! same orchestrator the message-level cluster runner uses.

use crate::results::{BatchStats, RunResults};
use crate::simulation::{NullObserver, Simulation};
use crate::workload::Workload;
use quorum_core::protocol::ConsistencyProtocol;
use quorum_core::{QuorumConsensus, QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_obs::{keys, Registry};
use quorum_stats::{converge, BatchMeans};

/// Configuration of a multi-batch run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Simulation parameters (scale, reliabilities, CI targets).
    pub params: SimParams,
    /// Master seed; batch `i` derives seed `(seed, i)`.
    pub seed: u64,
    /// Worker threads (1 = sequential). Batches beyond `min_batches` are
    /// added in rounds of `threads` until the CI converges.
    pub threads: usize,
}

impl RunConfig {
    /// Quick-scale config for tests and examples.
    pub fn quick(seed: u64) -> Self {
        Self {
            params: SimParams::quick(),
            seed,
            threads: std::thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(1),
        }
    }
}

/// Runs the static quorum consensus protocol until the CI converges.
///
/// Returns per-batch means, confidence intervals, and the merged raw
/// histograms (from which [`crate::curves::CurveSet`] derives the full
/// availability curves).
pub fn run_static(
    topology: &Topology,
    votes: VoteAssignment,
    spec: QuorumSpec,
    workload: Workload,
    cfg: RunConfig,
) -> RunResults {
    run_static_observed(topology, votes, spec, workload, cfg, &Registry::new())
}

/// [`run_static`] with observability: wall-clock phases, per-batch busy
/// time, thread utilization, the CI-convergence trace, and every DES/cache
/// counter land in `registry` (under the [`quorum_obs::keys`] names) in
/// addition to the returned [`RunResults`].
pub fn run_static_observed(
    topology: &Topology,
    votes: VoteAssignment,
    spec: QuorumSpec,
    workload: Workload,
    cfg: RunConfig,
    registry: &Registry,
) -> RunResults {
    let proto_votes = votes.clone();
    run_protocol_observed(
        topology,
        votes,
        workload,
        cfg,
        registry,
        keys::REPLICA_RUN_STATIC,
        move || QuorumConsensus::new(proto_votes.clone(), spec),
    )
}

/// Runs an arbitrary [`ConsistencyProtocol`] until the CI converges —
/// the batch/round/CI machinery of [`run_static_observed`] with the
/// protocol abstracted out, so general quorum systems (coteries,
/// expression-algebra systems) ride the same `ComponentView` grant
/// path, seed derivation, and thread-invariant merging as vote
/// thresholds. `make_protocol` builds one fresh protocol per batch
/// (batches are independent by construction); `phase` names the
/// whole-run wall-clock timer in `registry`.
pub fn run_protocol_observed<P, F>(
    topology: &Topology,
    votes: VoteAssignment,
    workload: Workload,
    cfg: RunConfig,
    registry: &Registry,
    phase: &str,
    make_protocol: F,
) -> RunResults
where
    P: ConsistencyProtocol,
    F: Fn() -> P + Sync,
{
    let _run_timer = registry.scoped_timer(phase);
    cfg.params.validate();
    let n = topology.num_sites();
    let total = votes.total() as usize;

    let mut read_acc = BatchMeans::new(
        cfg.params.confidence,
        cfg.params.ci_half_width,
        cfg.params.min_batches,
    );
    let mut write_acc = read_acc.clone();
    let mut combined = BatchStats::new(n, total);

    let conv = converge(
        &cfg.params.converge_params(cfg.threads),
        |index| {
            let mut sim = Simulation::with_votes(
                topology,
                cfg.params,
                votes.clone(),
                workload.clone(),
                cfg.seed,
            );
            let mut proto = make_protocol();
            sim.run_indexed_batch(&mut proto, &mut NullObserver, index)
        },
        BatchStats::availability,
        |_, stats, elapsed| {
            read_acc.push_batch(stats.read_availability());
            write_acc.push_batch(stats.write_availability());
            combined.merge(&stats);
            registry.record_duration(keys::REPLICA_BATCH, elapsed);
        },
    );

    registry.add(keys::RUN_BATCHES, conv.batches);
    registry.set_gauge(keys::RUN_THREADS, cfg.threads.max(1) as f64);
    // Busy batch-seconds over per-round available thread-seconds: 1.0
    // means the convergence loop kept every usable worker saturated.
    registry.set_gauge(keys::REPLICA_THREAD_UTILIZATION, conv.utilization());
    combined.observe_into(registry);

    RunResults {
        batches: conv.batches,
        acc: conv.acc,
        read_acc,
        write_acc,
        combined,
        ci_trace: quorum_des::ci_points(&conv.trace),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64, threads: usize) -> RunConfig {
        RunConfig {
            params: SimParams {
                warmup_accesses: 300,
                batch_accesses: 3_000,
                min_batches: 3,
                max_batches: 5,
                ci_half_width: 0.05,
                ..SimParams::paper()
            },
            seed,
            threads,
        }
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        // Pin the batch count so the convergence loop cannot add batches
        // in different-sized rounds; per-batch results depend only on
        // (seed, batch index), so the outcomes must then match exactly.
        let topo = Topology::ring_with_chords(13, 2);
        let votes = VoteAssignment::uniform(13);
        let spec = QuorumSpec::majority(13);
        let wl = Workload::uniform(13, 0.5);
        let mut c1 = tiny_cfg(9, 1);
        c1.params.max_batches = c1.params.min_batches;
        let mut c4 = tiny_cfg(9, 4);
        c4.params.max_batches = c4.params.min_batches;
        let seq = run_static(&topo, votes.clone(), spec, wl.clone(), c1);
        let par = run_static(&topo, votes, spec, wl, c4);
        assert_eq!(seq.batches, par.batches);
        assert_eq!(seq.availability(), par.availability());
        assert_eq!(
            seq.combined.reads_granted + seq.combined.writes_granted,
            par.combined.reads_granted + par.combined.writes_granted
        );
    }

    #[test]
    fn converged_run_reports_interval() {
        let topo = Topology::ring(9);
        let res = run_static(
            &topo,
            VoteAssignment::uniform(9),
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            tiny_cfg(1, 2),
        );
        assert!(res.batches >= 3);
        let ci = res.interval().expect("≥ 2 batches");
        assert!(ci.half_width >= 0.0);
        assert!(res.availability() > 0.0 && res.availability() < 1.0);
        assert!(res.is_one_copy_serializable());
    }

    #[test]
    fn observed_run_registry_matches_results() {
        let topo = Topology::ring(9);
        let registry = Registry::new();
        let res = run_static_observed(
            &topo,
            VoteAssignment::uniform(9),
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            tiny_cfg(4, 2),
            &registry,
        );
        let snap = registry.snapshot();
        // Cache counters in the registry equal the merged batch totals,
        // which equal the cache's own accounting.
        assert_eq!(snap.counter(keys::CACHE_HITS), res.combined.cache_hits);
        assert_eq!(
            snap.counter(keys::CACHE_RECOMPUTATIONS),
            res.combined.cache_recomputations
        );
        assert_eq!(
            snap.counter(keys::DES_EVENTS),
            res.combined.events_processed
        );
        assert_eq!(snap.counter(keys::RUN_BATCHES), res.batches);
        // One timer activation per batch, plus the whole-run phase timer.
        assert_eq!(snap.timers[keys::REPLICA_BATCH].1, res.batches);
        assert_eq!(snap.timers[keys::REPLICA_RUN_STATIC].1, 1);
        assert!(snap.timer_secs(keys::REPLICA_RUN_STATIC) > 0.0);
        // The convergence trace ends at the final batch count.
        assert_eq!(res.ci_trace.last().unwrap().batches, res.batches);
        assert!(res
            .ci_trace
            .iter()
            .all(|p| p.half_width >= 0.0 && p.batches >= 2));
        // Per-round thread-seconds accounting keeps utilization a true
        // fraction; ε absorbs clock-read noise only.
        let util = snap.gauges[keys::REPLICA_THREAD_UTILIZATION];
        assert!(util > 0.0 && util <= 1.0 + 0.005, "utilization {util}");
        assert!((snap.gauges[keys::RUN_THREADS] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stops_at_max_batches_when_noisy() {
        let topo = Topology::ring(9);
        let mut cfg = tiny_cfg(2, 2);
        cfg.params.ci_half_width = 1e-9; // unreachable target
        let res = run_static(
            &topo,
            VoteAssignment::uniform(9),
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            cfg,
        );
        assert_eq!(res.batches, cfg.params.max_batches);
    }

    #[test]
    fn availability_is_mixture_of_read_write() {
        let topo = Topology::ring_with_chords(13, 4);
        let res = run_static(
            &topo,
            VoteAssignment::uniform(13),
            QuorumSpec::from_read_quorum(3, 13).unwrap(),
            Workload::uniform(13, 0.75),
            tiny_cfg(5, 2),
        );
        let c = &res.combined;
        let mix = c.reads_submitted as f64 / c.submitted() as f64 * c.read_availability()
            + c.writes_submitted as f64 / c.submitted() as f64 * c.write_availability();
        assert!((c.availability() - mix).abs() < 1e-12);
    }
}
