//! Discrete-event simulation of the single-bus architecture (§4.2).
//!
//! The graph simulator models point-to-point links; a bus is a shared
//! medium, so it gets its own small event loop over
//! [`quorum_graph::BusNetwork`]: one on/off process for the bus, one per
//! site, Poisson accesses. Validates the §4.2 bus densities (both
//! architectural variants) end-to-end and lets examples explore bus-backed
//! replication.

use crate::object::SerializabilityChecker;
use crate::results::BatchStats;
use crate::workload::Workload;
use quorum_core::protocol::ConsistencyProtocol;
use quorum_core::{Access, VoteAssignment};
use quorum_des::{EventQueue, OnOffProcess, PoissonProcess, SimParams, SimTime};
use quorum_graph::{BusFailureMode, BusNetwork};
use quorum_stats::rng::{derive_seed, rng_from_seed};
use quorum_stats::VoteHistogram;

#[derive(Debug, Clone, Copy)]
enum Event {
    SiteTransition(usize),
    BusTransition,
    Access,
}

/// Simulation of one bus-network batch.
pub struct BusSimulation {
    n: usize,
    mode: BusFailureMode,
    params: SimParams,
    votes: VoteAssignment,
    workload: Workload,
    master_seed: u64,
    batches_run: u64,
}

impl BusSimulation {
    /// Creates the simulation (uniform one-vote-per-site assignment).
    pub fn new(
        n: usize,
        mode: BusFailureMode,
        params: SimParams,
        workload: Workload,
        master_seed: u64,
    ) -> Self {
        params.validate();
        assert_eq!(workload.num_sites(), n, "workload must cover every site");
        Self {
            n,
            mode,
            params,
            votes: VoteAssignment::uniform(n),
            workload,
            master_seed,
            batches_run: 0,
        }
    }

    /// Runs one warm-up + measurement batch.
    pub fn run_batch<P: ConsistencyProtocol>(&mut self, protocol: &mut P) -> BatchStats {
        let idx = self.batches_run;
        self.batches_run += 1;
        self.run_indexed_batch(protocol, idx)
    }

    /// Runs a batch with an explicit index.
    pub fn run_indexed_batch<P: ConsistencyProtocol>(
        &mut self,
        protocol: &mut P,
        batch_index: u64,
    ) -> BatchStats {
        let n = self.n;
        let seed = derive_seed(self.master_seed, batch_index);
        let mut fail_rng = rng_from_seed(derive_seed(seed, 1));
        let mut access_rng = rng_from_seed(derive_seed(seed, 2));
        let mut workload_rng = rng_from_seed(derive_seed(seed, 3));

        let mut net = BusNetwork::new(n, self.mode);
        let mut checker = SerializabilityChecker::new(n);
        let mut stats = BatchStats::new(n, self.votes.total() as usize);

        let component_process =
            OnOffProcess::from_reliability(self.params.reliability, self.params.mu_fail())
                .with_distributions(self.params.fail_dist, self.params.repair_dist);
        let mut site_procs = vec![component_process; n];
        let mut bus_proc = component_process;

        let mut queue: EventQueue<Event> = EventQueue::new();
        for (i, p) in site_procs.iter_mut().enumerate() {
            let (gap, _) = p.next_transition(&mut fail_rng);
            queue.schedule(SimTime::new(gap), Event::SiteTransition(i));
        }
        let (gap, _) = bus_proc.next_transition(&mut fail_rng);
        queue.schedule(SimTime::new(gap), Event::BusTransition);
        let access_proc = PoissonProcess::new(n as f64 / self.params.mu_access);
        queue.schedule(
            SimTime::new(access_proc.next_gap(&mut access_rng)),
            Event::Access,
        );

        let warmup = self.params.warmup_accesses;
        let target = warmup + self.params.batch_accesses;
        let mut seen = 0u64;
        let mut members: Vec<usize> = Vec::with_capacity(n);
        while seen < target {
            let (_t, ev) = queue.pop().expect("streams never drain");
            match ev {
                Event::SiteTransition(i) => {
                    net.set_site(i, site_procs[i].is_up());
                    let (gap, _) = site_procs[i].next_transition(&mut fail_rng);
                    queue.schedule_in(gap, Event::SiteTransition(i));
                }
                Event::BusTransition => {
                    net.set_bus(bus_proc.is_up());
                    let (gap, _) = bus_proc.next_transition(&mut fail_rng);
                    queue.schedule_in(gap, Event::BusTransition);
                }
                Event::Access => {
                    seen += 1;
                    queue.schedule_in(access_proc.next_gap(&mut access_rng), Event::Access);
                    let (kind, site) = self.workload.sample(&mut workload_rng);
                    let votes = net.votes_of(site, self.votes.as_slice());
                    members.clear();
                    if votes > 0 {
                        if net.bus_up() {
                            members.extend((0..n).filter(|&s| net.site_up(s)));
                        } else {
                            members.push(site);
                        }
                    }
                    let decision = protocol.decide(kind, &members, votes);
                    for refreshed in protocol.drain_refreshes() {
                        checker.on_refresh(&refreshed);
                    }
                    let measured = seen > warmup;
                    if measured {
                        match kind {
                            Access::Read => {
                                stats.reads_submitted += 1;
                                stats.read_votes.record(votes as usize);
                                if decision.is_granted() {
                                    stats.reads_granted += 1;
                                }
                            }
                            Access::Write => {
                                stats.writes_submitted += 1;
                                stats.write_votes.record(votes as usize);
                                if decision.is_granted() {
                                    stats.writes_granted += 1;
                                }
                            }
                        }
                        stats.access_votes.record(votes as usize);
                        // Largest component: the bus component if up, else
                        // the largest singleton (1 if any site up, 0 else).
                        let largest = if net.bus_up() {
                            (0..n).filter(|&s| net.site_up(s)).count() as u64
                        } else {
                            match self.mode {
                                BusFailureMode::SitesFailWithBus => 0,
                                BusFailureMode::SitesIndependent => {
                                    u64::from((0..n).any(|s| net.site_up(s)))
                                }
                            }
                        };
                        stats.largest_votes.record(largest as usize);
                        stats.per_site_votes[site].record(votes as usize);
                    }
                    if decision.is_granted() {
                        match kind {
                            Access::Write => {
                                if !checker.on_write_granted(&members) && measured {
                                    stats.write_conflicts += 1;
                                }
                            }
                            Access::Read => {
                                if !checker.on_read_granted(&members) && measured {
                                    stats.stale_reads += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_core::analytic::{bus_density_sites_fail, bus_density_sites_independent};
    use quorum_core::{QuorumConsensus, QuorumSpec};

    fn params() -> SimParams {
        SimParams {
            warmup_accesses: 2_000,
            batch_accesses: 60_000,
            ..SimParams::paper()
        }
    }

    #[test]
    fn sites_fail_variant_matches_analytic_density() {
        let n = 9;
        let mut sim = BusSimulation::new(
            n,
            BusFailureMode::SitesFailWithBus,
            params(),
            Workload::uniform(n, 0.5),
            1,
        );
        let mut proto = QuorumConsensus::majority(n);
        let stats = sim.run_batch(&mut proto);
        let empirical = stats.access_votes.estimate();
        let analytic = bus_density_sites_fail(n, 0.96, 0.96);
        let tv = empirical.total_variation(&analytic);
        // One 60k-access batch carries sampling error; with the bus-coupled
        // failure mode most mass sits on {0, n}, so the TV estimate is
        // noisier than the independent variant's. 0.05 still rules out a
        // wrong analytic density (a mismatched model is off by ≥ 0.2).
        assert!(tv < 0.05, "TV = {tv}");
    }

    #[test]
    fn independent_variant_matches_analytic_density() {
        let n = 9;
        let mut sim = BusSimulation::new(
            n,
            BusFailureMode::SitesIndependent,
            params(),
            Workload::uniform(n, 0.5),
            2,
        );
        let mut proto = QuorumConsensus::majority(n);
        let stats = sim.run_batch(&mut proto);
        let empirical = stats.access_votes.estimate();
        let analytic = bus_density_sites_independent(n, 0.96, 0.96);
        let tv = empirical.total_variation(&analytic);
        assert!(tv < 0.03, "TV = {tv}");
    }

    #[test]
    fn bus_simulation_is_serializable() {
        let n = 7;
        for mode in [
            BusFailureMode::SitesFailWithBus,
            BusFailureMode::SitesIndependent,
        ] {
            let mut sim = BusSimulation::new(n, mode, params(), Workload::uniform(n, 0.5), 3);
            let mut proto = QuorumConsensus::new(
                VoteAssignment::uniform(n),
                QuorumSpec::from_read_quorum(2, n as u64).unwrap(),
            );
            let stats = sim.run_batch(&mut proto);
            assert_eq!(stats.stale_reads, 0, "{mode:?}");
            assert_eq!(stats.write_conflicts, 0, "{mode:?}");
        }
    }

    #[test]
    fn rowa_reads_on_independent_bus_track_site_reliability() {
        // q_r = 1: reads succeed iff the submitting site is up, whether or
        // not the bus is (sites-independent variant).
        let n = 7;
        let mut sim = BusSimulation::new(
            n,
            BusFailureMode::SitesIndependent,
            params(),
            Workload::uniform(n, 1.0),
            4,
        );
        let mut proto = QuorumConsensus::read_one_write_all(n);
        let stats = sim.run_batch(&mut proto);
        let ra = stats.read_availability();
        assert!((ra - 0.96).abs() < 0.01, "read availability {ra}");
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 5;
        let run = |seed| {
            let mut sim = BusSimulation::new(
                n,
                BusFailureMode::SitesFailWithBus,
                SimParams {
                    warmup_accesses: 100,
                    batch_accesses: 2_000,
                    ..SimParams::paper()
                },
                Workload::uniform(n, 0.5),
                seed,
            );
            let mut proto = QuorumConsensus::majority(n);
            let s = sim.run_batch(&mut proto);
            (s.reads_granted, s.writes_granted)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
