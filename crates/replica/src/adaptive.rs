//! Dynamic quorum reassignment driven by on-line estimates (§4.3).
//!
//! [`AdaptiveQr`] wraps the QR protocol of §2.2 with the paper's feedback
//! loop: every access contributes its observed component votes to a
//! decayed histogram (the on-line `f̂` of §4.2) and its kind to an EWMA
//! estimate of the read ratio `α̂`; periodically the Figure-1 optimizer is
//! run on the estimates and, if the predicted gain is worth it, the new
//! assignment is installed through `QrProtocol::try_reassign` (which
//! enforces the write-quorum-under-the-old-assignment rule).
//!
//! [`run_adaptive`] drives the whole loop through a phased workload whose
//! read ratio shifts between phases — the "shifting pattern of data
//! access" scenario the paper argues dynamic reassignment exists for.

use crate::results::BatchStats;
use crate::simulation::{NullObserver, Simulation};
use crate::workload::Workload;
use quorum_core::optimal::optimal_quorum;
use quorum_core::protocol::{Access, ConsistencyProtocol, Decision};
use quorum_core::{AvailabilityModel, QrProtocol, QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_stats::{DecayedHistogram, VoteHistogram};

/// Tuning of the adaptive loop.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Accesses between optimization attempts.
    pub reassign_interval: u64,
    /// Decay factor of the vote histogram (effective window `1/(1−λ)`).
    pub decay: f64,
    /// Decay factor of the read-ratio EWMA.
    pub alpha_decay: f64,
    /// Minimum predicted availability gain before attempting a switch
    /// (avoids thrashing on noise).
    pub min_gain: f64,
    /// Optimizer search strategy.
    pub strategy: SearchStrategy,
    /// Observations required before the first reassignment attempt.
    /// Should be close to the decay window `1/(1−λ)` (the weight's upper
    /// bound): the simulation starts from the biased all-up state, and
    /// optimizing on early observations installs assignments tuned to a
    /// network that is about to degrade.
    pub min_observations: f64,
    /// Optional §5.4 write-availability floor applied to candidate
    /// assignments. Besides guaranteeing write throughput, this keeps the
    /// protocol *re-assignable*: installing an assignment whose `q_w` is
    /// almost never attainable (e.g. read-one/write-all on a flaky ring)
    /// would freeze the QR protocol, since the next change needs a
    /// component holding the old `q_w`.
    pub write_floor: Option<f64>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            reassign_interval: 1_000,
            decay: 0.999,
            alpha_decay: 0.995,
            min_gain: 0.01,
            strategy: SearchStrategy::Exhaustive,
            // 90% of the decay window (= 1000 observations): the weight
            // reaches this around access ~2300, by which time the
            // alternating-renewal processes have mixed to steady state.
            min_observations: 900.0,
            write_floor: None,
        }
    }
}

/// The QR protocol + estimator feedback loop as a [`ConsistencyProtocol`].
#[derive(Debug, Clone)]
pub struct AdaptiveQr {
    qr: QrProtocol,
    hist: DecayedHistogram,
    alpha_est: f64,
    accesses: u64,
    cfg: AdaptiveConfig,
    attempts: u64,
    successes: u64,
}

impl AdaptiveQr {
    /// Starts from `initial` with an empty estimator.
    pub fn new(votes: VoteAssignment, initial: QuorumSpec, cfg: AdaptiveConfig) -> Self {
        let total = votes.total() as usize;
        Self {
            qr: QrProtocol::new(votes, initial),
            hist: DecayedHistogram::new(total, cfg.decay),
            alpha_est: 0.5,
            accesses: 0,
            cfg,
            attempts: 0,
            successes: 0,
        }
    }

    /// Reassignment attempts so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Successful reassignments so far.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Current read-ratio estimate `α̂`.
    pub fn alpha_estimate(&self) -> f64 {
        self.alpha_est
    }

    /// The underlying QR protocol.
    pub fn qr(&self) -> &QrProtocol {
        &self.qr
    }

    fn maybe_reassign(&mut self, members: &[usize]) {
        if members.is_empty() || self.hist.weight() < self.cfg.min_observations {
            return;
        }
        let d = self.hist.estimate();
        let model = AvailabilityModel::from_mixtures(&d, &d);
        let opt = match self.cfg.write_floor {
            // Infeasible floor (estimates too pessimistic): hold position.
            Some(floor) => match quorum_core::optimal::optimal_with_write_floor(
                &model,
                self.alpha_est,
                floor,
                self.cfg.strategy,
            ) {
                Some(o) => o,
                None => return,
            },
            None => optimal_quorum(&model, self.alpha_est, self.cfg.strategy),
        };
        let Some(current) = self.qr.effective(members) else {
            return;
        };
        if opt.spec == current.spec {
            return;
        }
        // Predicted availability of the *current* assignment under the
        // same estimates (computed from the tails directly: the current
        // q_r may sit outside the optimizer's 1..=⌊T/2⌋ domain, e.g. an
        // odd-T majority).
        let cur_value = self.alpha_est * model.read_availability(current.spec.q_r())
            + (1.0 - self.alpha_est) * model.write_availability(current.spec.q_w());
        if opt.availability - cur_value < self.cfg.min_gain {
            return;
        }
        self.attempts += 1;
        if self.qr.try_reassign(members, opt.spec).is_ok() {
            self.successes += 1;
        }
    }
}

impl ConsistencyProtocol for AdaptiveQr {
    fn can_grant(&self, kind: Access, members: &[usize], votes: u64) -> bool {
        self.qr.can_grant(kind, members, votes)
    }

    fn drain_refreshes(&mut self) -> Vec<Vec<usize>> {
        self.qr.drain_refreshes()
    }

    fn decide(&mut self, kind: Access, members: &[usize], votes: u64) -> Decision {
        self.accesses += 1;
        self.hist.record(votes as usize);
        let is_read = matches!(kind, Access::Read);
        self.alpha_est = self.cfg.alpha_decay * self.alpha_est
            + (1.0 - self.cfg.alpha_decay) * if is_read { 1.0 } else { 0.0 };
        if self.accesses.is_multiple_of(self.cfg.reassign_interval) {
            self.maybe_reassign(members);
        }
        self.qr.decide(kind, members, votes)
    }

    fn effective_spec(&self, members: &[usize]) -> QuorumSpec {
        self.qr.effective_spec(members)
    }

    fn total_votes(&self) -> u64 {
        self.qr.total_votes()
    }
}

/// One phase of a shifting workload.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// Read ratio during the phase.
    pub alpha: f64,
    /// Measured accesses in the phase.
    pub accesses: u64,
    /// Optional component-reliability override for the phase — models the
    /// "periodic component failure" regime changes §4.3 motivates dynamic
    /// reassignment with (e.g. a nightly maintenance window dropping
    /// reliability from 96 % to 85 %).
    pub reliability: Option<f64>,
}

impl Phase {
    /// A phase at the base reliability.
    pub fn new(alpha: f64, accesses: u64) -> Self {
        Self {
            alpha,
            accesses,
            reliability: None,
        }
    }

    /// A phase with degraded (or improved) component reliability.
    pub fn with_reliability(alpha: f64, accesses: u64, reliability: f64) -> Self {
        Self {
            alpha,
            accesses,
            reliability: Some(reliability),
        }
    }
}

/// Outcome of one phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// The phase definition.
    pub phase: Phase,
    /// Measured statistics.
    pub stats: BatchStats,
    /// Cumulative successful reassignments at the end of the phase.
    pub reassignments: u64,
    /// The assignment in force (highest-versioned) at the end of the phase.
    pub final_spec: QuorumSpec,
}

/// Runs a phased workload under any protocol, preserving protocol state
/// across phases (the network itself resets to all-up at each phase
/// boundary and re-warms briefly).
pub fn run_phased<P: ConsistencyProtocol>(
    topology: &Topology,
    base_params: SimParams,
    phases: &[Phase],
    protocol: &mut P,
    seed: u64,
) -> Vec<(Phase, BatchStats)> {
    let n = topology.num_sites();
    let mut out = Vec::with_capacity(phases.len());
    for (i, ph) in phases.iter().enumerate() {
        let params = SimParams {
            batch_accesses: ph.accesses,
            reliability: ph.reliability.unwrap_or(base_params.reliability),
            ..base_params
        };
        let mut sim = Simulation::new(topology, params, Workload::uniform(n, ph.alpha), seed);
        let stats = sim.run_indexed_batch(protocol, &mut NullObserver, i as u64);
        out.push((*ph, stats));
    }
    out
}

/// Runs the adaptive QR loop through `phases`, returning per-phase results.
pub fn run_adaptive(
    topology: &Topology,
    base_params: SimParams,
    phases: &[Phase],
    initial: QuorumSpec,
    cfg: AdaptiveConfig,
    seed: u64,
) -> Vec<PhaseResult> {
    let n = topology.num_sites();
    let mut proto = AdaptiveQr::new(VoteAssignment::uniform(n), initial, cfg);
    let mut results = Vec::with_capacity(phases.len());
    for (phase, stats) in run_phased(topology, base_params, phases, &mut proto, seed) {
        let all: Vec<usize> = (0..n).collect();
        results.push(PhaseResult {
            phase,
            stats,
            reassignments: proto.successes(),
            final_spec: proto.effective_spec(&all),
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SimParams {
        SimParams {
            warmup_accesses: 500,
            batch_accesses: 10_000,
            ..SimParams::paper()
        }
    }

    #[test]
    fn alpha_estimate_tracks_workload() {
        let topo = Topology::ring_with_chords(15, 4);
        let mut proto = AdaptiveQr::new(
            VoteAssignment::uniform(15),
            QuorumSpec::majority(15),
            AdaptiveConfig::default(),
        );
        run_phased(&topo, params(), &[Phase::new(0.9, 5_000)], &mut proto, 3);
        assert!(
            (proto.alpha_estimate() - 0.9).abs() < 0.1,
            "α̂ = {}",
            proto.alpha_estimate()
        );
    }

    #[test]
    fn adaptive_reassigns_toward_reads_on_ring() {
        // On a ring (tiny components) with a read-heavy workload the
        // optimizer strongly prefers small q_r; starting from majority,
        // the adaptive loop should install a smaller read quorum.
        let topo = Topology::ring(15);
        let results = run_adaptive(
            &topo,
            params(),
            &[Phase::new(1.0, 20_000)],
            QuorumSpec::majority(15),
            AdaptiveConfig::default(),
            9,
        );
        let last = results.last().unwrap();
        assert!(last.reassignments >= 1, "no reassignment happened");
        assert!(
            last.final_spec.q_r() < QuorumSpec::majority(15).q_r(),
            "final spec {:?} should favor reads",
            last.final_spec
        );
    }

    #[test]
    fn adaptive_beats_static_after_alpha_shift() {
        // Static protocol stays at the majority assignment; adaptive
        // follows the workload to read-one when α jumps to 1 on a ring,
        // where majority reads almost never reach 8 of 15 votes.
        let topo = Topology::ring(15);
        let phases = [Phase::new(0.0, 8_000), Phase::new(1.0, 20_000)];
        let adaptive = run_adaptive(
            &topo,
            params(),
            &phases,
            QuorumSpec::majority(15),
            AdaptiveConfig::default(),
            4,
        );
        let mut static_proto = quorum_core::QuorumConsensus::majority(15);
        let static_runs = run_phased(&topo, params(), &phases, &mut static_proto, 4);

        let a = adaptive[1].stats.availability();
        let s = static_runs[1].1.availability();
        assert!(
            a > s + 0.1,
            "adaptive ({a}) should clearly beat static ({s}) after the shift"
        );
    }

    #[test]
    fn adaptive_respects_min_gain() {
        // With an enormous min_gain nothing should ever be reassigned.
        let topo = Topology::ring(15);
        let results = run_adaptive(
            &topo,
            params(),
            &[Phase::new(1.0, 10_000)],
            QuorumSpec::majority(15),
            AdaptiveConfig {
                min_gain: 10.0,
                ..AdaptiveConfig::default()
            },
            5,
        );
        assert_eq!(results.last().unwrap().reassignments, 0);
    }

    #[test]
    fn write_floor_keeps_assignments_reassignable() {
        // Without a floor the controller may install a near-ROWA spec
        // whose q_w is unattainable on a ring, freezing QR. With a floor,
        // every installed spec keeps W(q_w) reasonably reachable.
        let topo = Topology::ring(15);
        let results = run_adaptive(
            &topo,
            params(),
            &[Phase::new(1.0, 15_000), Phase::new(0.0, 15_000)],
            QuorumSpec::majority(15),
            AdaptiveConfig {
                write_floor: Some(0.25),
                ..AdaptiveConfig::default()
            },
            12,
        );
        for r in &results {
            // The floor bounds q_w away from T (ROWA would be q_w = 15).
            assert!(
                r.final_spec.q_w() < 15,
                "installed spec {:?} violates the floor's intent",
                r.final_spec
            );
            assert_eq!(r.stats.stale_reads, 0);
        }
    }

    #[test]
    fn adaptive_tracks_reliability_degradation() {
        // §4.3: dynamic reassignment adjusts for "periodic component
        // failure". Degrade reliability from 96% to 80% mid-run on a
        // chorded ring: the estimated f̂ shifts toward small components
        // and the installed assignment's q_w must loosen (or at least the
        // protocol must keep functioning with zero violations).
        let topo = Topology::ring_with_chords(15, 6);
        let phases = [
            Phase::new(0.8, 12_000),
            Phase::with_reliability(0.8, 12_000, 0.80),
        ];
        let results = run_adaptive(
            &topo,
            params(),
            &phases,
            QuorumSpec::majority(15),
            AdaptiveConfig {
                write_floor: Some(0.05),
                ..AdaptiveConfig::default()
            },
            21,
        );
        for r in &results {
            assert_eq!(r.stats.stale_reads, 0);
            assert_eq!(r.stats.write_conflicts, 0);
        }
        // The degraded phase really is degraded.
        assert!(
            results[1].stats.availability() < results[0].stats.availability(),
            "phase 1 ({}) should be worse than phase 0 ({})",
            results[1].stats.availability(),
            results[0].stats.availability()
        );
    }

    #[test]
    fn adaptive_is_one_copy_serializable() {
        let topo = Topology::ring_with_chords(15, 2);
        let results = run_adaptive(
            &topo,
            params(),
            &[Phase::new(0.2, 8_000), Phase::new(0.9, 8_000)],
            QuorumSpec::majority(15),
            AdaptiveConfig::default(),
            6,
        );
        for r in &results {
            assert_eq!(r.stats.stale_reads, 0, "QR must preserve 1SR");
        }
    }
}
