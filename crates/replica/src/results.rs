//! Result containers for simulation batches and multi-batch runs.

use quorum_obs::CiPoint;
use quorum_stats::{BatchMeans, ConfidenceInterval, CountingHistogram};

/// Everything measured during one batch.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Read accesses submitted (after warm-up).
    pub reads_submitted: u64,
    /// Read accesses granted.
    pub reads_granted: u64,
    /// Write accesses submitted.
    pub writes_submitted: u64,
    /// Write accesses granted.
    pub writes_granted: u64,
    /// Histogram of votes reachable from the submitting site at each
    /// access instant (0 for a down site) — the on-line sample of the
    /// mixture `r(v) = w(v)` under uniform access.
    pub access_votes: CountingHistogram,
    /// Same observation split by access kind: the sample of `r(v)`.
    /// Differs from `write_votes` exactly when `r_i ≠ w_i`.
    pub read_votes: CountingHistogram,
    /// The sample of `w(v)`.
    pub write_votes: CountingHistogram,
    /// Histogram of the *largest* component's votes at each access
    /// instant — drives the SURV variant (§3, footnote 3).
    pub largest_votes: CountingHistogram,
    /// Per-site histograms (the estimator bank each site would keep).
    pub per_site_votes: Vec<CountingHistogram>,
    /// Time-weighted mass over component votes (one entry per vote count,
    /// averaged over sites), populated only when the simulation enables
    /// time weighting. Lets tests verify PASTA: Poisson access instants
    /// see time averages, so this must match `access_votes`.
    pub time_weighted_votes: Vec<f64>,
    /// Total measured simulated time backing `time_weighted_votes`.
    pub measured_time: f64,
    /// Measured accesses for which *some* component could have granted the
    /// access — the SURV numerator (§3). Only counted when the run enables
    /// survivability probing.
    pub surv_possible: u64,
    /// Sites contacted by measured accesses: a granted access contacts the
    /// cheapest member set reaching its quorum; a denied access polls the
    /// whole component before giving up. (Vote-collection messages; the
    /// reply leg doubles it.)
    pub contact_messages: u64,
    /// Granted reads that missed the most recent write (0 under valid
    /// quorums — condition 1).
    pub stale_reads: u64,
    /// Granted writes that did not see the most recent write — lost
    /// updates (0 under valid quorums — condition 2).
    pub write_conflicts: u64,
    /// Component BFS recomputations performed.
    pub cache_recomputations: u64,
    /// Accesses served without recomputation.
    pub cache_hits: u64,
    /// Topology events the incremental kernel absorbed by merging
    /// components (zero when the kernel is disabled).
    pub delta_merges: u64,
    /// Topology events absorbed by re-scanning one component.
    pub delta_rescans: u64,
    /// Topology events filtered as partition-preserving no-ops.
    pub delta_noops: u64,
    /// Topology events absorbed by a from-scratch kernel rebuild.
    pub full_recomputes: u64,
    /// DES events popped from the future-event list (all kinds,
    /// including warm-up).
    pub events_processed: u64,
    /// Site up/down transitions applied.
    pub site_transitions: u64,
    /// Link up/down transitions applied.
    pub link_transitions: u64,
    /// Accesses dispatched, warm-up included (`submitted()` counts only
    /// the measured ones).
    pub accesses_dispatched: u64,
}

impl BatchStats {
    /// Creates empty stats for a system of `n_sites` sites and `total`
    /// votes.
    pub fn new(n_sites: usize, total_votes: usize) -> Self {
        Self {
            reads_submitted: 0,
            reads_granted: 0,
            writes_submitted: 0,
            writes_granted: 0,
            access_votes: CountingHistogram::new(total_votes),
            read_votes: CountingHistogram::new(total_votes),
            write_votes: CountingHistogram::new(total_votes),
            largest_votes: CountingHistogram::new(total_votes),
            per_site_votes: (0..n_sites)
                .map(|_| CountingHistogram::new(total_votes))
                .collect(),
            time_weighted_votes: vec![0.0; total_votes + 1],
            measured_time: 0.0,
            surv_possible: 0,
            contact_messages: 0,
            stale_reads: 0,
            write_conflicts: 0,
            cache_recomputations: 0,
            cache_hits: 0,
            delta_merges: 0,
            delta_rescans: 0,
            delta_noops: 0,
            full_recomputes: 0,
            events_processed: 0,
            site_transitions: 0,
            link_transitions: 0,
            accesses_dispatched: 0,
        }
    }

    /// Total accesses submitted.
    pub fn submitted(&self) -> u64 {
        self.reads_submitted + self.writes_submitted
    }

    /// Total accesses granted.
    pub fn granted(&self) -> u64 {
        self.reads_granted + self.writes_granted
    }

    /// ACC estimate: fraction of all accesses granted.
    pub fn availability(&self) -> f64 {
        if self.submitted() == 0 {
            0.0
        } else {
            self.granted() as f64 / self.submitted() as f64
        }
    }

    /// Fraction of reads granted.
    pub fn read_availability(&self) -> f64 {
        if self.reads_submitted == 0 {
            0.0
        } else {
            self.reads_granted as f64 / self.reads_submitted as f64
        }
    }

    /// Time-weighted density of component votes (PASTA cross-check).
    ///
    /// # Panics
    /// Panics if time weighting was not enabled (no measured time).
    pub fn time_weighted_density(&self) -> quorum_stats::DiscreteDist {
        assert!(
            self.measured_time > 0.0,
            "time weighting was not enabled on this run"
        );
        let norm = self.measured_time * self.per_site_votes.len() as f64;
        quorum_stats::DiscreteDist::from_pmf(
            self.time_weighted_votes.iter().map(|&m| m / norm).collect(),
        )
    }

    /// SURV estimate: fraction of accesses some component could serve
    /// (0 when probing was disabled).
    pub fn surv_availability(&self) -> f64 {
        if self.submitted() == 0 {
            0.0
        } else {
            self.surv_possible as f64 / self.submitted() as f64
        }
    }

    /// Mean vote-collection contacts per measured access.
    pub fn contacts_per_access(&self) -> f64 {
        if self.submitted() == 0 {
            0.0
        } else {
            self.contact_messages as f64 / self.submitted() as f64
        }
    }

    /// Fraction of writes granted.
    pub fn write_availability(&self) -> f64 {
        if self.writes_submitted == 0 {
            0.0
        } else {
            self.writes_granted as f64 / self.writes_submitted as f64
        }
    }

    /// Merges another batch's raw observations into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.reads_submitted += other.reads_submitted;
        self.reads_granted += other.reads_granted;
        self.writes_submitted += other.writes_submitted;
        self.writes_granted += other.writes_granted;
        self.access_votes.merge(&other.access_votes);
        self.read_votes.merge(&other.read_votes);
        self.write_votes.merge(&other.write_votes);
        self.largest_votes.merge(&other.largest_votes);
        assert_eq!(self.per_site_votes.len(), other.per_site_votes.len());
        for (a, b) in self.per_site_votes.iter_mut().zip(&other.per_site_votes) {
            a.merge(b);
        }
        assert_eq!(
            self.time_weighted_votes.len(),
            other.time_weighted_votes.len()
        );
        for (a, b) in self
            .time_weighted_votes
            .iter_mut()
            .zip(&other.time_weighted_votes)
        {
            *a += b;
        }
        self.measured_time += other.measured_time;
        self.surv_possible += other.surv_possible;
        self.contact_messages += other.contact_messages;
        self.stale_reads += other.stale_reads;
        self.write_conflicts += other.write_conflicts;
        self.cache_recomputations += other.cache_recomputations;
        self.cache_hits += other.cache_hits;
        self.delta_merges += other.delta_merges;
        self.delta_rescans += other.delta_rescans;
        self.delta_noops += other.delta_noops;
        self.full_recomputes += other.full_recomputes;
        self.events_processed += other.events_processed;
        self.site_transitions += other.site_transitions;
        self.link_transitions += other.link_transitions;
        self.accesses_dispatched += other.accesses_dispatched;
    }

    /// Records the batch's event and cache totals into an observability
    /// registry under the [`quorum_obs::keys`] names.
    pub fn observe_into(&self, registry: &quorum_obs::Registry) {
        use quorum_obs::keys;
        registry.add(keys::DES_EVENTS, self.events_processed);
        registry.add(keys::DES_SITE_TRANSITIONS, self.site_transitions);
        registry.add(keys::DES_LINK_TRANSITIONS, self.link_transitions);
        registry.add(keys::DES_ACCESSES, self.accesses_dispatched);
        registry.add(keys::CACHE_HITS, self.cache_hits);
        registry.add(keys::CACHE_RECOMPUTATIONS, self.cache_recomputations);
        registry.add(keys::DELTA_MERGES, self.delta_merges);
        registry.add(keys::DELTA_RESCANS, self.delta_rescans);
        registry.add(keys::DELTA_NOOPS, self.delta_noops);
        registry.add(keys::FULL_RECOMPUTES, self.full_recomputes);
    }
}

/// Aggregated outcome of a multi-batch run.
#[derive(Debug, Clone)]
pub struct RunResults {
    /// Batch-means accumulator over per-batch ACC.
    pub acc: BatchMeans,
    /// Batch-means accumulator over per-batch read availability.
    pub read_acc: BatchMeans,
    /// Batch-means accumulator over per-batch write availability.
    pub write_acc: BatchMeans,
    /// Union of all batches' raw observations.
    pub combined: BatchStats,
    /// Number of batches executed.
    pub batches: u64,
    /// Convergence trace: the ACC estimate and CI half-width after each
    /// round of batches the runner added (§5.2's stop-when-tight loop,
    /// made visible for run manifests).
    pub ci_trace: Vec<CiPoint>,
}

impl RunResults {
    /// Point estimate of ACC.
    pub fn availability(&self) -> f64 {
        self.acc.mean()
    }

    /// Confidence interval on ACC (if ≥ 2 batches).
    pub fn interval(&self) -> Option<ConfidenceInterval> {
        self.acc.interval()
    }

    /// True if every granted access saw the latest write in every batch
    /// (no stale reads, no lost updates).
    pub fn is_one_copy_serializable(&self) -> bool {
        self.combined.stale_reads == 0 && self.combined.write_conflicts == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_ratios() {
        let mut b = BatchStats::new(3, 3);
        b.reads_submitted = 80;
        b.reads_granted = 60;
        b.writes_submitted = 20;
        b.writes_granted = 5;
        assert!((b.availability() - 0.65).abs() < 1e-12);
        assert!((b.read_availability() - 0.75).abs() < 1e-12);
        assert!((b.write_availability() - 0.25).abs() < 1e-12);
        assert_eq!(b.submitted(), 100);
        assert_eq!(b.granted(), 65);
    }

    #[test]
    fn empty_stats_are_zero() {
        let b = BatchStats::new(2, 2);
        assert_eq!(b.availability(), 0.0);
        assert_eq!(b.read_availability(), 0.0);
        assert_eq!(b.write_availability(), 0.0);
    }

    #[test]
    fn surv_and_contact_accounting() {
        let mut b = BatchStats::new(2, 3);
        b.reads_submitted = 10;
        b.writes_submitted = 10;
        b.surv_possible = 15;
        b.contact_messages = 60;
        assert!((b.surv_availability() - 0.75).abs() < 1e-12);
        assert!((b.contacts_per_access() - 3.0).abs() < 1e-12);
        let empty = BatchStats::new(2, 3);
        assert_eq!(empty.surv_availability(), 0.0);
        assert_eq!(empty.contacts_per_access(), 0.0);
    }

    #[test]
    fn time_weighted_density_requires_enablement() {
        let b = BatchStats::new(2, 3);
        let r = std::panic::catch_unwind(|| b.time_weighted_density());
        assert!(r.is_err(), "must panic without measured time");
    }

    #[test]
    fn merge_accumulates() {
        use quorum_stats::VoteHistogram;
        let mut a = BatchStats::new(2, 4);
        let mut b = BatchStats::new(2, 4);
        a.reads_submitted = 10;
        a.reads_granted = 5;
        a.access_votes.record(3);
        b.reads_submitted = 10;
        b.reads_granted = 10;
        b.access_votes.record(3);
        b.access_votes.record(0);
        b.per_site_votes[1].record(2);
        a.merge(&b);
        assert_eq!(a.reads_submitted, 20);
        assert_eq!(a.reads_granted, 15);
        assert_eq!(a.access_votes.observations(), 3);
        assert_eq!(a.per_site_votes[1].observations(), 1);
    }

    #[test]
    fn event_totals_merge_and_observe() {
        let mut a = BatchStats::new(1, 2);
        let mut b = BatchStats::new(1, 2);
        a.events_processed = 100;
        a.site_transitions = 10;
        a.cache_hits = 70;
        a.cache_recomputations = 30;
        b.events_processed = 50;
        b.link_transitions = 5;
        b.accesses_dispatched = 45;
        a.merge(&b);
        assert_eq!(a.events_processed, 150);
        assert_eq!(a.site_transitions, 10);
        assert_eq!(a.link_transitions, 5);
        assert_eq!(a.accesses_dispatched, 45);
        let r = quorum_obs::Registry::new();
        a.observe_into(&r);
        let snap = r.snapshot();
        assert_eq!(snap.counter(quorum_obs::keys::DES_EVENTS), 150);
        assert_eq!(snap.counter(quorum_obs::keys::CACHE_HITS), 70);
        assert_eq!(snap.counter(quorum_obs::keys::CACHE_RECOMPUTATIONS), 30);
    }

    #[test]
    fn merge_accumulates_kind_histograms_and_time() {
        use quorum_stats::VoteHistogram;
        let mut a = BatchStats::new(1, 2);
        let mut b = BatchStats::new(1, 2);
        a.read_votes.record(2);
        b.read_votes.record(1);
        b.write_votes.record(0);
        a.time_weighted_votes[2] = 1.5;
        b.time_weighted_votes[2] = 0.5;
        a.measured_time = 3.0;
        b.measured_time = 1.0;
        a.merge(&b);
        assert_eq!(a.read_votes.observations(), 2);
        assert_eq!(a.write_votes.observations(), 1);
        assert!((a.time_weighted_votes[2] - 2.0).abs() < 1e-12);
        assert!((a.measured_time - 4.0).abs() < 1e-12);
    }
}
