//! Access-request generation.
//!
//! §5.2: each site submits accesses as a Poisson process with mean
//! inter-access time `μ_t = 1`; a fraction `α` of all accesses are reads.
//! The paper's experiments use uniform submission (`r_i = w_i = 1/n`), but
//! the Figure-1 algorithm supports arbitrary `r_i`, `w_i`, so the workload
//! does too.

use quorum_core::Access;
use rand::Rng;

/// Generates `(kind, submitting site)` pairs.
#[derive(Debug, Clone)]
pub struct Workload {
    alpha: f64,
    read_cdf: Vec<f64>,
    write_cdf: Vec<f64>,
    read_frac: Vec<f64>,
    write_frac: Vec<f64>,
}

fn build_cdf(weights: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert!(!weights.is_empty(), "need at least one site");
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "weights must have positive mass");
    for &w in weights {
        assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
    }
    let frac: Vec<f64> = weights.iter().map(|w| w / sum).collect();
    let mut cdf = Vec::with_capacity(frac.len());
    let mut acc = 0.0;
    for &f in &frac {
        acc += f;
        cdf.push(acc);
    }
    // Guard against rounding: the last entry must cover u → 1.
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    (cdf, frac)
}

fn sample_cdf<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.random();
    match cdf.binary_search_by(|x| x.partial_cmp(&u).expect("finite cdf")) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
    .min(cdf.len() - 1)
}

impl Workload {
    /// Uniform submission over `n` sites with read fraction `alpha`.
    pub fn uniform(n: usize, alpha: f64) -> Self {
        Self::weighted(alpha, &vec![1.0; n], &vec![1.0; n])
    }

    /// Zipf-skewed submission: site `i` gets weight `1/(i+1)^s` (site 0 is
    /// the hot spot). Models the skewed access patterns whose drift the
    /// paper's on-line estimation is designed to follow.
    pub fn zipf(n: usize, alpha: f64, s: f64) -> Self {
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let w: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        Self::weighted(alpha, &w, &w)
    }

    /// Arbitrary (unnormalized) read/write site weights.
    ///
    /// # Panics
    /// Panics if `alpha ∉ [0,1]`, lengths differ, or weights are invalid.
    pub fn weighted(alpha: f64, read_weights: &[f64], write_weights: &[f64]) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "α must lie in [0,1]");
        assert_eq!(
            read_weights.len(),
            write_weights.len(),
            "per-site weight lists must align"
        );
        let (read_cdf, read_frac) = build_cdf(read_weights);
        let (write_cdf, write_frac) = build_cdf(write_weights);
        Self {
            alpha,
            read_cdf,
            write_cdf,
            read_frac,
            write_frac,
        }
    }

    /// The read fraction `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Changes `α` (used by shifting-workload experiments).
    pub fn set_alpha(&mut self, alpha: f64) {
        assert!((0.0..=1.0).contains(&alpha), "α must lie in [0,1]");
        self.alpha = alpha;
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.read_cdf.len()
    }

    /// Normalized per-site read fractions `r_i`.
    pub fn read_frac(&self) -> &[f64] {
        &self.read_frac
    }

    /// Normalized per-site write fractions `w_i`.
    pub fn write_frac(&self) -> &[f64] {
        &self.write_frac
    }

    /// True if `r_i = w_i` for all sites (then `r(v) = w(v)`, §4.1).
    pub fn is_symmetric(&self) -> bool {
        self.read_frac
            .iter()
            .zip(&self.write_frac)
            .all(|(a, b)| (a - b).abs() < 1e-12)
    }

    /// Samples the next access.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Access, usize) {
        let is_read = rng.random::<f64>() < self.alpha;
        if is_read {
            (Access::Read, sample_cdf(&self.read_cdf, rng))
        } else {
            (Access::Write, sample_cdf(&self.write_cdf, rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_stats::rng::rng_from_seed;

    #[test]
    fn uniform_alpha_frequencies() {
        let w = Workload::uniform(10, 0.75);
        let mut rng = rng_from_seed(1);
        let n = 100_000;
        let reads = (0..n)
            .filter(|_| matches!(w.sample(&mut rng).0, Access::Read))
            .count();
        let f = reads as f64 / n as f64;
        assert!((f - 0.75).abs() < 0.01, "read fraction {f}");
    }

    #[test]
    fn uniform_sites_equally_likely() {
        let w = Workload::uniform(5, 0.5);
        let mut rng = rng_from_seed(2);
        let mut counts = [0u64; 5];
        for _ in 0..100_000 {
            counts[w.sample(&mut rng).1] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 100_000.0;
            assert!((f - 0.2).abs() < 0.01, "site frequency {f}");
        }
    }

    #[test]
    fn weighted_sites_follow_weights() {
        let w = Workload::weighted(1.0, &[1.0, 3.0], &[1.0, 1.0]);
        let mut rng = rng_from_seed(3);
        let mut hits = [0u64; 2];
        for _ in 0..100_000 {
            let (kind, site) = w.sample(&mut rng);
            assert_eq!(kind, Access::Read);
            hits[site] += 1;
        }
        let f1 = hits[1] as f64 / 100_000.0;
        assert!((f1 - 0.75).abs() < 0.01, "site 1 frequency {f1}");
    }

    #[test]
    fn zipf_concentrates_on_low_sites() {
        let w = Workload::zipf(10, 0.5, 1.0);
        let mut rng = rng_from_seed(6);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[w.sample(&mut rng).1] += 1;
        }
        assert!(counts[0] > counts[4] && counts[4] > counts[9]);
        // Harmonic weights: site 0 should get ≈ 1/H_10 ≈ 34%.
        let f0 = counts[0] as f64 / 100_000.0;
        assert!((f0 - 0.3414).abs() < 0.01, "hot-spot share {f0}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Workload::zipf(5, 0.5, 0.0);
        assert_eq!(z.read_frac(), &[0.2; 5]);
    }

    #[test]
    fn alpha_extremes() {
        let mut rng = rng_from_seed(4);
        let all_reads = Workload::uniform(3, 1.0);
        let all_writes = Workload::uniform(3, 0.0);
        for _ in 0..1000 {
            assert_eq!(all_reads.sample(&mut rng).0, Access::Read);
            assert_eq!(all_writes.sample(&mut rng).0, Access::Write);
        }
    }

    #[test]
    fn symmetric_detection() {
        assert!(Workload::uniform(4, 0.5).is_symmetric());
        assert!(!Workload::weighted(0.5, &[1.0, 2.0], &[2.0, 1.0]).is_symmetric());
    }

    #[test]
    fn fractions_normalized() {
        let w = Workload::weighted(0.5, &[2.0, 2.0], &[1.0, 3.0]);
        assert_eq!(w.read_frac(), &[0.5, 0.5]);
        assert_eq!(w.write_frac(), &[0.25, 0.75]);
    }

    #[test]
    fn set_alpha_updates() {
        let mut w = Workload::uniform(3, 0.1);
        w.set_alpha(0.9);
        assert_eq!(w.alpha(), 0.9);
    }

    #[test]
    #[should_panic(expected = "α must lie")]
    fn bad_alpha_rejected() {
        Workload::uniform(3, 1.1);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_weights_rejected() {
        Workload::weighted(0.5, &[0.0, 0.0], &[1.0, 1.0]);
    }
}
