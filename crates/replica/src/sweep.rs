//! Parameter-sweep utilities.
//!
//! The experiment binaries all share the same shape: fix a topology, vary
//! one knob (read quorum, read ratio, reliability), simulate each setting,
//! tabulate. This module productizes that loop — one simulation per
//! setting, batches parallelized inside each run, deterministic seeds per
//! setting — so studies stay three lines instead of thirty.

use crate::results::RunResults;
use crate::runner::{run_static, RunConfig};
use crate::workload::Workload;
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_graph::Topology;

/// One row of a sweep result.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The swept value (meaning depends on the sweep kind).
    pub x: f64,
    /// Full results at that setting.
    pub results: RunResults,
}

impl SweepRow {
    /// Shorthand for the availability point estimate.
    pub fn availability(&self) -> f64 {
        self.results.availability()
    }
}

/// Sweeps the read quorum over `q_r_values` at fixed `alpha`.
///
/// # Panics
/// Panics if any `q_r` is outside the domain for the assignment's total.
pub fn sweep_read_quorum(
    topology: &Topology,
    votes: &VoteAssignment,
    alpha: f64,
    q_r_values: &[u64],
    cfg: RunConfig,
) -> Vec<SweepRow> {
    let n = topology.num_sites();
    let total = votes.total();
    q_r_values
        .iter()
        .map(|&q_r| {
            let spec = QuorumSpec::from_read_quorum(q_r, total)
                .unwrap_or_else(|e| panic!("q_r = {q_r}: {e}"));
            let results = run_static(
                topology,
                votes.clone(),
                spec,
                Workload::uniform(n, alpha),
                RunConfig {
                    seed: cfg.seed.wrapping_add(q_r),
                    ..cfg
                },
            );
            SweepRow {
                x: q_r as f64,
                results,
            }
        })
        .collect()
}

/// Sweeps the read ratio over `alphas` at a fixed assignment.
pub fn sweep_alpha(
    topology: &Topology,
    votes: &VoteAssignment,
    spec: QuorumSpec,
    alphas: &[f64],
    cfg: RunConfig,
) -> Vec<SweepRow> {
    let n = topology.num_sites();
    alphas
        .iter()
        .enumerate()
        .map(|(i, &alpha)| {
            let results = run_static(
                topology,
                votes.clone(),
                spec,
                Workload::uniform(n, alpha),
                RunConfig {
                    seed: cfg.seed.wrapping_add(i as u64),
                    ..cfg
                },
            );
            SweepRow { x: alpha, results }
        })
        .collect()
}

/// Sweeps component reliability over `reliabilities` at a fixed
/// assignment and ratio.
pub fn sweep_reliability(
    topology: &Topology,
    votes: &VoteAssignment,
    spec: QuorumSpec,
    alpha: f64,
    reliabilities: &[f64],
    cfg: RunConfig,
) -> Vec<SweepRow> {
    let n = topology.num_sites();
    reliabilities
        .iter()
        .enumerate()
        .map(|(i, &rel)| {
            let mut params = cfg.params;
            params.reliability = rel;
            let results = run_static(
                topology,
                votes.clone(),
                spec,
                Workload::uniform(n, alpha),
                RunConfig {
                    params,
                    seed: cfg.seed.wrapping_add(i as u64),
                    threads: cfg.threads,
                },
            );
            SweepRow { x: rel, results }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_des::SimParams;

    fn cfg(seed: u64) -> RunConfig {
        RunConfig {
            params: SimParams {
                warmup_accesses: 500,
                batch_accesses: 6_000,
                min_batches: 3,
                max_batches: 3,
                ci_half_width: 0.05,
                ..SimParams::paper()
            },
            seed,
            threads: 2,
        }
    }

    #[test]
    fn read_quorum_sweep_shapes() {
        // On a ring at α = 1, availability decreases with q_r.
        let topo = Topology::ring(15);
        let votes = VoteAssignment::uniform(15);
        let rows = sweep_read_quorum(&topo, &votes, 1.0, &[1, 4, 7], cfg(1));
        assert_eq!(rows.len(), 3);
        assert!(rows[0].availability() > rows[2].availability());
        for r in &rows {
            assert!(r.results.is_one_copy_serializable());
        }
    }

    #[test]
    fn alpha_sweep_is_monotone_at_loose_reads() {
        // q_r = 1: A(α) = α·R(1) + (1−α)·W(T) is increasing in α on a
        // partition-prone ring (reads easy, writes nearly impossible).
        let topo = Topology::ring(15);
        let votes = VoteAssignment::uniform(15);
        let spec = QuorumSpec::read_one_write_all(15);
        let rows = sweep_alpha(&topo, &votes, spec, &[0.0, 0.5, 1.0], cfg(2));
        assert!(rows[0].availability() < rows[1].availability());
        assert!(rows[1].availability() < rows[2].availability());
    }

    #[test]
    fn reliability_sweep_is_monotone() {
        let topo = Topology::ring_with_chords(11, 3);
        let votes = VoteAssignment::uniform(11);
        let spec = QuorumSpec::majority(11);
        let rows = sweep_reliability(&topo, &votes, spec, 0.5, &[0.80, 0.90, 0.98], cfg(3));
        assert!(rows[0].availability() < rows[1].availability());
        assert!(rows[1].availability() < rows[2].availability());
        assert!((rows[2].x - 0.98).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "q_r = 9")]
    fn out_of_domain_quorum_panics() {
        let topo = Topology::ring(9);
        let votes = VoteAssignment::uniform(9);
        sweep_read_quorum(&topo, &votes, 0.5, &[9], cfg(4));
    }
}
