//! The steady-state discrete-event simulation of one batch (§5.2).
//!
//! Event model:
//!
//! * every site and link runs an alternating up/down renewal process
//!   (`μ_f = μ_t/ρ`, `μ_r` from the 96 % reliability identity);
//! * accesses arrive as the superposition of the per-site Poisson streams —
//!   an aggregate Poisson process of rate `n/μ_t` whose submitting site is
//!   drawn from the workload's `r_i`/`w_i` distribution;
//! * all events are instantaneous; components are recomputed lazily (dirty
//!   flag) only when a failure/recovery intervened since the last access.
//!
//! The first `warmup_accesses` accesses after the all-up initial state are
//! discarded; the next `batch_accesses` are measured.

use crate::failure::FailureProcesses;
use crate::object::SerializabilityChecker;
use crate::results::BatchStats;
use crate::workload::Workload;
use quorum_core::protocol::{ConsistencyProtocol, Decision};
use quorum_core::{Access, VoteAssignment};
use quorum_des::{CalendarQueue, EventQueue, EventSchedule, PoissonProcess, SimParams, SimTime};
use quorum_graph::{ComponentCache, NetworkState, Topology, TopologyEvent};
use quorum_stats::rng::{derive_seed, rng_from_seed};
use quorum_stats::VoteHistogram;
use rand::rngs::StdRng;

/// One scheduled simulation event.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Site `i` toggles up/down.
    SiteTransition(usize),
    /// Link `i` toggles up/down.
    LinkTransition(usize),
    /// An access arrives (kind and site sampled at dispatch).
    Access,
}

/// A single-batch simulation of one topology.
///
/// Reusable across batches via [`Simulation::run_batch`], which resets the
/// network to the all-up initial state first (§5.2: "the network is reset
/// to the initial state before each batch").
pub struct Simulation<'a> {
    topology: &'a Topology,
    params: SimParams,
    votes: VoteAssignment,
    workload: Workload,
    master_seed: u64,
    batches_run: u64,
    probe_survivability: bool,
    time_weighted: bool,
    delta_kernel: bool,
    timer_wheel: bool,
    site_reliabilities: Option<Vec<f64>>,
    link_reliabilities: Option<Vec<f64>>,
}

/// Observer hooks invoked on every measured access; used by the adaptive
/// (QR) driver. The default no-op observer serves static runs.
pub trait AccessObserver {
    /// Called for every access *after* the decision, with the submitting
    /// site, its component members (empty if down), the component votes,
    /// the access kind, the decision, and the measured-access index
    /// (0-based within the batch; warm-up accesses report `None`).
    fn on_access(
        &mut self,
        site: usize,
        members: &[usize],
        votes: u64,
        kind: Access,
        decision: Decision,
        measured_index: Option<u64>,
    );
}

/// No-op observer.
pub struct NullObserver;

impl AccessObserver for NullObserver {
    fn on_access(
        &mut self,
        _site: usize,
        _members: &[usize],
        _votes: u64,
        _kind: Access,
        _decision: Decision,
        _measured_index: Option<u64>,
    ) {
    }
}

impl<'a> Simulation<'a> {
    /// Creates a simulation with uniform one-vote-per-site assignment.
    pub fn new(
        topology: &'a Topology,
        params: SimParams,
        workload: Workload,
        master_seed: u64,
    ) -> Self {
        Self::with_votes(
            topology,
            params,
            VoteAssignment::uniform(topology.num_sites()),
            workload,
            master_seed,
        )
    }

    /// Creates a simulation with an explicit vote assignment.
    ///
    /// # Panics
    /// Panics on inconsistent dimensions or invalid parameters.
    pub fn with_votes(
        topology: &'a Topology,
        params: SimParams,
        votes: VoteAssignment,
        workload: Workload,
        master_seed: u64,
    ) -> Self {
        params.validate();
        assert_eq!(
            votes.num_sites(),
            topology.num_sites(),
            "vote assignment must cover every site"
        );
        assert_eq!(
            workload.num_sites(),
            topology.num_sites(),
            "workload must cover every site"
        );
        Self {
            topology,
            params,
            votes,
            workload,
            master_seed,
            batches_run: 0,
            probe_survivability: false,
            time_weighted: false,
            delta_kernel: true,
            timer_wheel: true,
            site_reliabilities: None,
            link_reliabilities: None,
        }
    }

    /// Selects the component-maintenance kernel (default: incremental).
    /// The reported numbers are bit-identical either way — pinned by
    /// `tests/delta_kernel.rs` — so this knob exists for that pin test
    /// and for benchmarking the kernels against each other.
    pub fn with_delta_kernel(mut self, enable: bool) -> Self {
        self.delta_kernel = enable;
        self
    }

    /// Selects the future-event list (default: calendar queue / timer
    /// wheel). The binary heap stays available as the reference
    /// implementation; both pop bit-identical event sequences on a
    /// shared seed, pinned by the `timer_wheel_matches_heap` test and
    /// the queue-level equivalence proptest in `quorum-des`.
    pub fn with_timer_wheel(mut self, enable: bool) -> Self {
        self.timer_wheel = enable;
        self
    }

    /// Overrides the per-site reliabilities (links keep the global
    /// parameter). The paper's model is homogeneous (§5.2); heterogeneous
    /// fleets are the norm in practice and the estimator/optimizer stack
    /// handles them — this knob lets tests and examples exercise that.
    ///
    /// # Panics
    /// Panics on length mismatch or probabilities outside `(0, 1)`.
    pub fn with_site_reliabilities(mut self, reliabilities: Vec<f64>) -> Self {
        assert_eq!(
            reliabilities.len(),
            self.topology.num_sites(),
            "one reliability per site"
        );
        for &p in &reliabilities {
            assert!(p > 0.0 && p < 1.0, "site reliability must lie in (0,1)");
        }
        self.site_reliabilities = Some(reliabilities);
        self
    }

    /// Overrides the per-link reliabilities (sites keep their settings).
    /// Lets scenarios distinguish flaky WAN links from solid LAN links.
    ///
    /// # Panics
    /// Panics on length mismatch or probabilities outside `(0, 1)`.
    pub fn with_link_reliabilities(mut self, reliabilities: Vec<f64>) -> Self {
        assert_eq!(
            reliabilities.len(),
            self.topology.num_links(),
            "one reliability per link"
        );
        for &p in &reliabilities {
            assert!(p > 0.0 && p < 1.0, "link reliability must lie in (0,1)");
        }
        self.link_reliabilities = Some(reliabilities);
        self
    }

    /// Enables time-weighted vote accounting: between events, every site's
    /// component votes accrue duration-weighted mass. Used to verify PASTA
    /// (Poisson arrivals see time averages): the access-sampled histogram
    /// must match this time average. Costs O(n) per event.
    pub fn time_weighted(mut self, enable: bool) -> Self {
        self.time_weighted = enable;
        self
    }

    /// Enables per-access SURV probing: at every measured access the
    /// simulator asks every component (via the protocol's non-mutating
    /// [`ConsistencyProtocol::can_grant`]) whether it could serve the
    /// access, populating [`BatchStats::surv_possible`]. Costs an extra
    /// O(n) per access.
    pub fn probe_survivability(mut self, enable: bool) -> Self {
        self.probe_survivability = enable;
        self
    }

    /// The vote assignment.
    pub fn votes(&self) -> &VoteAssignment {
        &self.votes
    }

    /// The workload (mutable, so callers can shift `α` between batches).
    pub fn workload_mut(&mut self) -> &mut Workload {
        &mut self.workload
    }

    /// Runs one warm-up + measurement batch under `protocol`, invoking
    /// `observer` on every access. Each batch uses an independent seed
    /// derived from the master seed and the batch index.
    pub fn run_batch<P: ConsistencyProtocol>(
        &mut self,
        protocol: &mut P,
        observer: &mut dyn AccessObserver,
    ) -> BatchStats {
        let batch_index = self.batches_run;
        self.batches_run += 1;
        self.run_indexed_batch(protocol, observer, batch_index)
    }

    /// Runs the batch with an explicit index (parallel runners assign
    /// disjoint indices to worker threads).
    pub fn run_indexed_batch<P: ConsistencyProtocol>(
        &mut self,
        protocol: &mut P,
        observer: &mut dyn AccessObserver,
        batch_index: u64,
    ) -> BatchStats {
        // Both event lists consume the RNG streams identically and pop
        // in the same order, so this dispatch never changes a number.
        if self.timer_wheel {
            self.run_batch_on(CalendarQueue::new(), protocol, observer, batch_index)
        } else {
            self.run_batch_on(EventQueue::new(), protocol, observer, batch_index)
        }
    }

    fn run_batch_on<P: ConsistencyProtocol, Q: EventSchedule<Event>>(
        &mut self,
        mut queue: Q,
        protocol: &mut P,
        observer: &mut dyn AccessObserver,
        batch_index: u64,
    ) -> BatchStats {
        let n = self.topology.num_sites();
        let m = self.topology.num_links();
        let total_votes = self.votes.total() as usize;
        let seed = derive_seed(self.master_seed, batch_index);

        // Independent RNG streams: failures, accesses, workload choices.
        let mut fail_rng: StdRng = rng_from_seed(derive_seed(seed, 1));
        let mut access_rng: StdRng = rng_from_seed(derive_seed(seed, 2));
        let mut workload_rng: StdRng = rng_from_seed(derive_seed(seed, 3));

        let mut state = NetworkState::all_up(self.topology);
        let mut cache = if self.delta_kernel {
            ComponentCache::incremental()
        } else {
            ComponentCache::new()
        };
        let mut checker = SerializabilityChecker::new(n);
        let mut stats = BatchStats::new(n, total_votes);

        let mut procs = FailureProcesses::new(
            &self.params,
            n,
            m,
            self.site_reliabilities.as_deref(),
            self.link_reliabilities.as_deref(),
        );

        // Schedule the first transition of every component.
        procs.schedule_initial(
            &mut queue,
            &mut fail_rng,
            Event::SiteTransition,
            Event::LinkTransition,
        );
        // Aggregate access process: rate n/μ_t.
        let access_proc = PoissonProcess::new(n as f64 / self.params.mu_access);
        queue.schedule(
            SimTime::new(access_proc.next_gap(&mut access_rng)),
            Event::Access,
        );

        let warmup = self.params.warmup_accesses;
        let target = warmup + self.params.batch_accesses;
        let mut accesses_seen = 0u64;
        let mut members_buf: Vec<usize> = Vec::with_capacity(n);
        let mut surv_buf: Vec<usize> = Vec::with_capacity(n);

        let mut last_time = SimTime::ZERO;
        while accesses_seen < target {
            let (t, ev) = queue.pop().expect("regenerative streams never drain");
            if self.time_weighted && accesses_seen >= warmup {
                let dt = t - last_time;
                if dt > 0.0 {
                    let view = cache.view(self.topology, &state, self.votes.as_slice());
                    for site in 0..n {
                        stats.time_weighted_votes[view.votes_of(site) as usize] += dt;
                    }
                    stats.measured_time += dt;
                }
            }
            last_time = t;
            match ev {
                Event::SiteTransition(i) => {
                    stats.site_transitions += 1;
                    let (up, gap) = procs.site_transition(i, &mut fail_rng);
                    if state.set_site(i, up) {
                        cache.apply_event(
                            self.topology,
                            &state,
                            self.votes.as_slice(),
                            TopologyEvent::Site { site: i, up },
                        );
                    }
                    queue.schedule_in(gap, Event::SiteTransition(i));
                }
                Event::LinkTransition(i) => {
                    stats.link_transitions += 1;
                    let (up, gap) = procs.link_transition(i, &mut fail_rng);
                    if state.set_link(i, up) {
                        cache.apply_event(
                            self.topology,
                            &state,
                            self.votes.as_slice(),
                            TopologyEvent::Link { link: i, up },
                        );
                    }
                    queue.schedule_in(gap, Event::LinkTransition(i));
                }
                Event::Access => {
                    accesses_seen += 1;
                    queue.schedule_in(access_proc.next_gap(&mut access_rng), Event::Access);

                    let (kind, site) = self.workload.sample(&mut workload_rng);
                    let (votes, largest, surv) = {
                        let view = cache.view(self.topology, &state, self.votes.as_slice());
                        let votes = view.votes_of(site);
                        members_buf.clear();
                        if votes > 0 {
                            members_buf.extend(view.members_of(site));
                        }
                        let largest = view.largest_component_votes();
                        // Per-component member bitsets make this probe
                        // allocation-free: the member fill reuses one
                        // scratch buffer and the vote total is already
                        // maintained per component.
                        let surv = self.probe_survivability
                            && (0..view.num_components() as u32).any(|id| {
                                surv_buf.clear();
                                surv_buf.extend(view.members_of_component(id));
                                let comp_votes = view.component_votes()[id as usize];
                                protocol.can_grant(kind, &surv_buf, comp_votes)
                            });
                        (votes, largest, surv)
                    };
                    let decision = protocol.decide(kind, &members_buf, votes);
                    // Reassignments performed inside decide() copy the
                    // current value across the installing component;
                    // apply those refreshes before accounting the access.
                    for refreshed in protocol.drain_refreshes() {
                        checker.on_refresh(&refreshed);
                    }

                    let measured = accesses_seen > warmup;
                    if measured {
                        // Vote-collection cost: a granted access contacts
                        // the cheapest member subset reaching its quorum
                        // (largest votes first); a denied access polls the
                        // whole component before giving up.
                        let spec = protocol.effective_spec(&members_buf);
                        let threshold = spec.threshold(kind);
                        stats.contact_messages += if decision.is_granted() {
                            let mut vote_counts: Vec<u64> = members_buf
                                .iter()
                                .map(|&s| self.votes.votes_of(s))
                                .collect();
                            vote_counts.sort_unstable_by(|a, b| b.cmp(a));
                            let mut acc = 0u64;
                            let mut contacted = 0u64;
                            for v in vote_counts {
                                contacted += 1;
                                acc += v;
                                if acc >= threshold {
                                    break;
                                }
                            }
                            contacted
                        } else {
                            members_buf.len() as u64
                        };
                        match kind {
                            Access::Read => {
                                stats.reads_submitted += 1;
                                stats.read_votes.record(votes as usize);
                                if decision.is_granted() {
                                    stats.reads_granted += 1;
                                }
                            }
                            Access::Write => {
                                stats.writes_submitted += 1;
                                stats.write_votes.record(votes as usize);
                                if decision.is_granted() {
                                    stats.writes_granted += 1;
                                }
                            }
                        }
                        if surv {
                            stats.surv_possible += 1;
                        }
                        stats.access_votes.record(votes as usize);
                        stats.largest_votes.record(largest as usize);
                        stats.per_site_votes[site].record(votes as usize);
                    }
                    // The 1SR checker tracks *all* granted accesses —
                    // consistency must hold during warm-up too.
                    if decision.is_granted() {
                        match kind {
                            Access::Write => {
                                let aware = checker.on_write_granted(&members_buf);
                                if !aware && measured {
                                    stats.write_conflicts += 1;
                                }
                            }
                            Access::Read => {
                                let fresh = checker.on_read_granted(&members_buf);
                                if !fresh && measured {
                                    stats.stale_reads += 1;
                                }
                            }
                        }
                    }
                    observer.on_access(
                        site,
                        &members_buf,
                        votes,
                        kind,
                        decision,
                        measured.then(|| accesses_seen - warmup - 1),
                    );
                }
            }
        }
        stats.cache_recomputations = cache.recomputations();
        stats.cache_hits = cache.hits();
        let delta = cache.delta_counters();
        stats.delta_merges = delta.merges;
        stats.delta_rescans = delta.rescans;
        stats.delta_noops = delta.noops;
        stats.full_recomputes = delta.full_recomputes;
        stats.events_processed = queue.popped();
        stats.accesses_dispatched = accesses_seen;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_core::{QuorumConsensus, QuorumSpec};

    fn quick_params() -> SimParams {
        SimParams {
            warmup_accesses: 500,
            batch_accesses: 4_000,
            ..SimParams::paper()
        }
    }

    #[test]
    fn batch_counts_add_up() {
        let topo = Topology::ring(11);
        let mut sim = Simulation::new(&topo, quick_params(), Workload::uniform(11, 0.5), 1);
        let mut proto = QuorumConsensus::new(VoteAssignment::uniform(11), QuorumSpec::majority(11));
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        assert_eq!(stats.submitted(), 4_000);
        assert!(stats.granted() <= stats.submitted());
        assert_eq!(stats.access_votes.observations(), 4_000);
        assert_eq!(stats.largest_votes.observations(), 4_000);
        let per_site: u64 = stats.per_site_votes.iter().map(|h| h.observations()).sum();
        assert_eq!(per_site, 4_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Topology::ring_with_chords(11, 3);
        let run = |seed| {
            let mut sim = Simulation::new(&topo, quick_params(), Workload::uniform(11, 0.25), seed);
            let mut proto = QuorumConsensus::new(
                VoteAssignment::uniform(11),
                QuorumSpec::from_read_quorum(2, 11).unwrap(),
            );
            let s = sim.run_batch(&mut proto, &mut NullObserver);
            (s.reads_granted, s.writes_granted, s.granted())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn timer_wheel_matches_heap_bit_identically() {
        // The calendar queue is the production event list; the heap is
        // the reference. On a shared seed every statistic must agree
        // exactly — the wheel only changes how the next event is found,
        // never which event is next.
        let topo = Topology::ring_with_chords(13, 3);
        let run = |wheel: bool| {
            let mut sim = Simulation::new(&topo, quick_params(), Workload::uniform(13, 0.6), 19)
                .with_timer_wheel(wheel);
            let mut proto =
                QuorumConsensus::new(VoteAssignment::uniform(13), QuorumSpec::majority(13));
            let s = sim.run_batch(&mut proto, &mut NullObserver);
            (
                s.reads_granted,
                s.writes_granted,
                s.reads_submitted,
                s.writes_submitted,
                s.site_transitions,
                s.link_transitions,
                s.events_processed,
                s.contact_messages,
                s.cache_hits,
                s.cache_recomputations,
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn batches_are_independent_streams() {
        let topo = Topology::ring(9);
        let mut sim = Simulation::new(&topo, quick_params(), Workload::uniform(9, 0.5), 3);
        let mut proto = QuorumConsensus::majority(9);
        let a = sim.run_batch(&mut proto, &mut NullObserver);
        let b = sim.run_batch(&mut proto, &mut NullObserver);
        assert_ne!(
            (a.reads_granted, a.writes_granted),
            (b.reads_granted, b.writes_granted),
            "consecutive batches must not replay the same randomness"
        );
    }

    #[test]
    fn valid_quorums_are_one_copy_serializable() {
        let topo = Topology::ring_with_chords(15, 4);
        for q_r in [1u64, 3, 7] {
            let mut sim = Simulation::new(&topo, quick_params(), Workload::uniform(15, 0.5), 11);
            let mut proto = QuorumConsensus::new(
                VoteAssignment::uniform(15),
                QuorumSpec::from_read_quorum(q_r, 15).unwrap(),
            );
            let stats = sim.run_batch(&mut proto, &mut NullObserver);
            assert_eq!(stats.stale_reads, 0, "q_r = {q_r} must be 1SR");
        }
    }

    #[test]
    fn rowa_reads_succeed_iff_site_up() {
        // q_r = 1: a read succeeds exactly when the submitting site is up
        // (96 % of the time), independent of topology (§5.3).
        let topo = Topology::ring(21);
        let mut params = quick_params();
        params.batch_accesses = 30_000;
        let mut sim = Simulation::new(&topo, params, Workload::uniform(21, 1.0), 5);
        let mut proto = QuorumConsensus::new(
            VoteAssignment::uniform(21),
            QuorumSpec::read_one_write_all(21),
        );
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        let ra = stats.read_availability();
        assert!((ra - 0.96).abs() < 0.01, "read availability {ra}");
    }

    #[test]
    fn observer_sees_every_access() {
        struct Counter {
            total: u64,
            measured: u64,
        }
        impl AccessObserver for Counter {
            fn on_access(
                &mut self,
                _s: usize,
                _m: &[usize],
                _v: u64,
                _k: Access,
                _d: Decision,
                idx: Option<u64>,
            ) {
                self.total += 1;
                if idx.is_some() {
                    self.measured += 1;
                }
            }
        }
        let topo = Topology::ring(7);
        let mut sim = Simulation::new(&topo, quick_params(), Workload::uniform(7, 0.5), 2);
        let mut proto = QuorumConsensus::majority(7);
        let mut obs = Counter {
            total: 0,
            measured: 0,
        };
        sim.run_batch(&mut proto, &mut obs);
        assert_eq!(obs.total, 4_500); // warmup + measured
        assert_eq!(obs.measured, 4_000);
    }

    #[test]
    fn event_counters_are_consistent() {
        let topo = Topology::ring(11);
        let mut sim = Simulation::new(&topo, quick_params(), Workload::uniform(11, 0.5), 6);
        let mut proto = QuorumConsensus::majority(11);
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        // Every processed event is a site transition, a link transition,
        // or an access.
        assert_eq!(
            stats.events_processed,
            stats.site_transitions + stats.link_transitions + stats.accesses_dispatched
        );
        // Warm-up (500) + measured (4000) accesses were dispatched.
        assert_eq!(stats.accesses_dispatched, 4_500);
        // Every access consulted the component view exactly once (plus
        // possible SURV probes, disabled here).
        assert_eq!(
            stats.cache_hits + stats.cache_recomputations,
            stats.accesses_dispatched
        );
        assert!(stats.site_transitions > 0);
        assert!(stats.link_transitions > 0);
    }

    #[test]
    fn cache_is_effective_on_sparse_topologies() {
        let topo = Topology::ring(31);
        let mut sim = Simulation::new(&topo, quick_params(), Workload::uniform(31, 0.5), 4);
        let mut proto = QuorumConsensus::majority(31);
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        assert!(
            stats.cache_hits > 0,
            "some consecutive accesses should share a view"
        );
        assert!(stats.cache_recomputations > 0);
    }

    #[test]
    fn flaky_links_reduce_availability() {
        // Same ring, same sites; drop three links to 60% reliability and
        // availability must fall versus the uniform baseline.
        let topo = Topology::ring(15);
        let params = SimParams {
            warmup_accesses: 1_000,
            batch_accesses: 25_000,
            ..SimParams::paper()
        };
        let base = {
            let mut sim = Simulation::new(&topo, params, Workload::uniform(15, 0.5), 52);
            let mut proto = QuorumConsensus::majority(15);
            sim.run_batch(&mut proto, &mut NullObserver).availability()
        };
        let degraded = {
            let mut rels = vec![0.96; 15];
            rels[0] = 0.60;
            rels[5] = 0.60;
            rels[10] = 0.60;
            let mut sim = Simulation::new(&topo, params, Workload::uniform(15, 0.5), 52)
                .with_link_reliabilities(rels);
            let mut proto = QuorumConsensus::majority(15);
            sim.run_batch(&mut proto, &mut NullObserver).availability()
        };
        assert!(
            degraded < base - 0.03,
            "flaky links should hurt: {degraded} vs {base}"
        );
    }

    #[test]
    fn heterogeneous_site_reliabilities_show_in_per_site_histograms() {
        // Site 0 is flaky (70%), the rest are solid (98%): site 0's
        // estimated density must carry far more zero-vote mass.
        let topo = Topology::fully_connected(7);
        let mut rels = vec![0.98; 7];
        rels[0] = 0.70;
        let params = SimParams {
            warmup_accesses: 2_000,
            batch_accesses: 40_000,
            ..SimParams::paper()
        };
        let mut sim = Simulation::new(&topo, params, Workload::uniform(7, 0.5), 31)
            .with_site_reliabilities(rels);
        let mut proto = QuorumConsensus::majority(7);
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        let flaky_zero = stats.per_site_votes[0].estimate().pmf(0);
        let solid_zero = stats.per_site_votes[1].estimate().pmf(0);
        assert!(
            (flaky_zero - 0.30).abs() < 0.03,
            "flaky site down mass {flaky_zero}"
        );
        assert!(
            (solid_zero - 0.02).abs() < 0.01,
            "solid site down mass {solid_zero}"
        );
        assert_eq!(stats.stale_reads, 0);
    }

    #[test]
    fn pasta_access_sampling_equals_time_average() {
        // Poisson Arrivals See Time Averages: the histogram of component
        // votes sampled at access instants must equal the time-weighted
        // average over the whole measurement window. This justifies the
        // paper's access-driven on-line estimation of "availability at an
        // arbitrary time".
        let topo = Topology::ring(15);
        let params = SimParams {
            warmup_accesses: 2_000,
            batch_accesses: 60_000,
            ..SimParams::paper()
        };
        let mut sim =
            Simulation::new(&topo, params, Workload::uniform(15, 0.5), 44).time_weighted(true);
        let mut proto = QuorumConsensus::majority(15);
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        let sampled = stats.access_votes.estimate();
        let time_avg = stats.time_weighted_density();
        let tv = sampled.total_variation(&time_avg);
        assert!(tv < 0.02, "PASTA violated: TV = {tv}");
        assert!((time_avg.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn survivability_probe_dominates_acc() {
        // SURV counts accesses SOME component could serve; ACC counts the
        // submitting site's. SURV ≥ ACC always, and on a partition-prone
        // ring strictly more.
        let topo = Topology::ring(15);
        let mut params = quick_params();
        params.batch_accesses = 20_000;
        let mut sim =
            Simulation::new(&topo, params, Workload::uniform(15, 0.5), 8).probe_survivability(true);
        let mut proto = QuorumConsensus::majority(15);
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        let acc = stats.availability();
        let surv = stats.surv_availability();
        assert!(surv >= acc, "SURV {surv} < ACC {acc}");
        assert!(surv > acc + 0.01, "ring partitions should separate them");
        // And SURV of a majority protocol cannot exceed 1 or fall below
        // the single-site floor badly.
        assert!(surv <= 1.0);
    }

    #[test]
    fn probe_disabled_reports_zero_surv() {
        let topo = Topology::ring(9);
        let mut sim = Simulation::new(&topo, quick_params(), Workload::uniform(9, 0.5), 2);
        let mut proto = QuorumConsensus::majority(9);
        let stats = sim.run_batch(&mut proto, &mut NullObserver);
        assert_eq!(stats.surv_possible, 0);
        assert_eq!(stats.surv_availability(), 0.0);
    }

    #[test]
    fn invalid_quorums_violate_serializability() {
        // Deliberately break condition 1 by bypassing QuorumSpec: a raw
        // protocol with q_r + q_w <= T lets a read miss the latest write
        // during partitions. We emulate via a custom protocol.
        struct BrokenProtocol;
        impl ConsistencyProtocol for BrokenProtocol {
            fn decide(&mut self, kind: Access, m: &[usize], votes: u64) -> Decision {
                if self.can_grant(kind, m, votes) {
                    Decision::Granted
                } else {
                    Decision::Denied
                }
            }
            fn can_grant(&self, kind: Access, _m: &[usize], votes: u64) -> bool {
                // q_r = 1, q_w = 8 on T = 15: 1 + 8 = 9 <= 15 (unsafe).
                match kind {
                    Access::Read => votes >= 1,
                    Access::Write => votes >= 8,
                }
            }
            fn effective_spec(&self, _m: &[usize]) -> QuorumSpec {
                QuorumSpec::majority(15)
            }
            fn total_votes(&self) -> u64 {
                15
            }
        }
        let topo = Topology::ring(15); // rings partition often
        let mut params = quick_params();
        params.batch_accesses = 30_000;
        let mut sim = Simulation::new(&topo, params, Workload::uniform(15, 0.5), 21);
        let stats = sim.run_batch(&mut BrokenProtocol, &mut NullObserver);
        assert!(
            stats.stale_reads > 0,
            "an unsafe quorum pair must eventually produce a stale read"
        );
    }
}
