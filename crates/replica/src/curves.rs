//! Availability curves `A(α, q_r)` from measured histograms.
//!
//! This is the measurement half of the paper's method: a single simulation
//! run per topology yields the empirical component-vote distribution at
//! access instants, and the Figure-1 model then produces the *entire*
//! family of curves (every `α`, every `q_r`) that Figures 2–7 plot —
//! no re-simulation per point needed. Down-site submissions are included
//! as zero-vote observations, so the curves estimate `A` directly (not the
//! conditional `A'` of footnote 4).

use crate::results::RunResults;
use quorum_core::metrics::AvailabilityMetric;
use quorum_core::optimal::{optimal_quorum, optimal_with_write_floor, OptimalAssignment};
use quorum_core::{AvailabilityModel, SearchStrategy};
use quorum_stats::VoteHistogram;

/// A family of availability curves for one topology/workload.
#[derive(Debug, Clone)]
pub struct CurveSet {
    acc_model: AvailabilityModel,
    surv_model: AvailabilityModel,
    total: u64,
}

impl CurveSet {
    /// Builds curve models from a run's merged histograms.
    ///
    /// Uses the per-kind vote histograms — the samples of `r(v)` and
    /// `w(v)` — so asymmetric workloads (`r_i ≠ w_i`) are handled
    /// correctly; under uniform access the two coincide statistically.
    /// SURV uses the largest-component histogram (footnote 3). If a kind
    /// received no accesses (α = 0 or 1), the aggregate histogram stands
    /// in for its mixture.
    pub fn from_run(results: &RunResults) -> Self {
        let c = &results.combined;
        let aggregate = c.access_votes.estimate();
        let r = if c.read_votes.observations() > 0 {
            c.read_votes.estimate()
        } else {
            aggregate.clone()
        };
        let w = if c.write_votes.observations() > 0 {
            c.write_votes.estimate()
        } else {
            aggregate.clone()
        };
        let surv = c.largest_votes.estimate();
        Self {
            acc_model: AvailabilityModel::from_mixtures(&r, &w),
            surv_model: AvailabilityModel::from_mixtures(&surv, &surv),
            total: aggregate.max_votes() as u64,
        }
    }

    /// Builds the ACC model from per-site histograms mixed with explicit
    /// `r_i`/`w_i` weights (step 2 of Figure 1 with estimated densities).
    ///
    /// Sites with no observations are excluded (their weight is
    /// redistributed by renormalization inside the mixture).
    pub fn from_per_site(results: &RunResults, read_frac: &[f64], write_frac: &[f64]) -> Self {
        let per_site = &results.combined.per_site_votes;
        assert_eq!(per_site.len(), read_frac.len());
        assert_eq!(per_site.len(), write_frac.len());
        let mut densities = Vec::new();
        let mut r_w = Vec::new();
        let mut w_w = Vec::new();
        for (i, h) in per_site.iter().enumerate() {
            if h.weight() > 0.0 {
                densities.push(h.estimate());
                r_w.push(read_frac[i]);
                w_w.push(write_frac[i]);
            }
        }
        assert!(!densities.is_empty(), "no site recorded any observation");
        let rs: f64 = r_w.iter().sum();
        let ws: f64 = w_w.iter().sum();
        for x in &mut r_w {
            *x /= rs;
        }
        for x in &mut w_w {
            *x /= ws;
        }
        let acc_model = AvailabilityModel::from_site_densities(&densities, &r_w, &w_w);
        let surv = results.combined.largest_votes.estimate();
        let total = acc_model.total_votes();
        Self {
            acc_model,
            surv_model: AvailabilityModel::from_mixtures(&surv, &surv),
            total,
        }
    }

    /// Wraps analytically-derived models (e.g. ring/FC closed forms).
    pub fn from_models(acc_model: AvailabilityModel, surv_model: AvailabilityModel) -> Self {
        let total = acc_model.total_votes();
        Self {
            acc_model,
            surv_model,
            total,
        }
    }

    /// Total votes `T`.
    pub fn total_votes(&self) -> u64 {
        self.total
    }

    /// The model behind a metric.
    pub fn model(&self, metric: AvailabilityMetric) -> &AvailabilityModel {
        match metric {
            AvailabilityMetric::Accessibility => &self.acc_model,
            AvailabilityMetric::Survivability => &self.surv_model,
        }
    }

    /// `A(α, q_r)` under a metric.
    pub fn availability(&self, metric: AvailabilityMetric, alpha: f64, q_r: u64) -> f64 {
        self.model(metric).availability(alpha, q_r)
    }

    /// Full curve over the `q_r` domain (the series one paper figure
    /// plots for one `α`).
    pub fn curve(&self, metric: AvailabilityMetric, alpha: f64) -> Vec<f64> {
        let hi = if self.total == 1 { 1 } else { self.total / 2 };
        (1..=hi)
            .map(|q| self.availability(metric, alpha, q))
            .collect()
    }

    /// Optimal assignment for a read ratio (Figure-1 step 4 on the
    /// measured model).
    pub fn optimal(&self, alpha: f64, strategy: SearchStrategy) -> OptimalAssignment {
        optimal_quorum(&self.acc_model, alpha, strategy)
    }

    /// §5.4: optimal assignment under a write-availability floor.
    pub fn optimal_with_write_floor(
        &self,
        alpha: f64,
        min_write: f64,
        strategy: SearchStrategy,
    ) -> Option<OptimalAssignment> {
        optimal_with_write_floor(&self.acc_model, alpha, min_write, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_static, RunConfig};
    use crate::workload::Workload;
    use quorum_core::{QuorumSpec, VoteAssignment};
    use quorum_des::SimParams;
    use quorum_graph::Topology;

    fn small_run() -> RunResults {
        let topo = Topology::ring_with_chords(13, 2);
        run_static(
            &topo,
            VoteAssignment::uniform(13),
            QuorumSpec::from_read_quorum(6, 13).unwrap(),
            Workload::uniform(13, 0.5),
            RunConfig {
                params: SimParams {
                    warmup_accesses: 500,
                    batch_accesses: 8_000,
                    min_batches: 3,
                    max_batches: 4,
                    ci_half_width: 0.05,
                    ..SimParams::paper()
                },
                seed: 17,
                threads: 2,
            },
        )
    }

    #[test]
    fn curves_match_direct_measurement() {
        // The histogram-derived A(α, q_r) at the simulated spec must agree
        // with the directly counted grant rate.
        let res = small_run();
        let curves = CurveSet::from_run(&res);
        let spec = QuorumSpec::from_read_quorum(6, 13).unwrap();
        let predicted = curves.availability(AvailabilityMetric::Accessibility, 0.5, spec.q_r());
        let direct = res.combined.availability();
        assert!(
            (predicted - direct).abs() < 0.02,
            "model {predicted} vs direct {direct}"
        );
    }

    #[test]
    fn q_r_one_read_availability_is_site_reliability() {
        // §5.3: at q_r = 1 a read succeeds iff the submitting site is up.
        let res = small_run();
        let curves = CurveSet::from_run(&res);
        let a = curves.availability(AvailabilityMetric::Accessibility, 1.0, 1);
        assert!((a - 0.96).abs() < 0.02, "A(α=1, q_r=1) = {a}");
    }

    #[test]
    fn curves_converge_at_majority_end() {
        // §5.3: all α-curves meet at q_r = ⌊T/2⌋ (q_r ≈ q_w there, and
        // with uniform access r(v) = w(v)).
        let res = small_run();
        let curves = CurveSet::from_run(&res);
        let hi = 13 / 2;
        let at_end: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&a| curves.availability(AvailabilityMetric::Accessibility, a, hi))
            .collect();
        let spread = at_end.iter().cloned().fold(f64::MIN, f64::max)
            - at_end.iter().cloned().fold(f64::MAX, f64::min);
        // q_w = T − q_r + 1 = 8 vs q_r = 6: near-equal thresholds; the
        // residual spread is the mass between 6 and 8 votes.
        assert!(spread < 0.12, "spread at majority end {spread}");
    }

    #[test]
    fn surv_dominates_acc() {
        // The largest component is at least as big as the submitter's.
        let res = small_run();
        let curves = CurveSet::from_run(&res);
        for q in 1..=6u64 {
            let acc = curves.availability(AvailabilityMetric::Accessibility, 0.5, q);
            let surv = curves.availability(AvailabilityMetric::Survivability, 0.5, q);
            assert!(surv >= acc - 1e-12, "q_r = {q}: SURV {surv} < ACC {acc}");
        }
    }

    #[test]
    fn per_site_mixture_equals_aggregate_under_uniform_access() {
        // The aggregate histogram weights each *observation* equally while
        // the per-site mixture weights each *site* exactly 1/n; the two
        // coincide only in expectation (realized per-site access counts
        // fluctuate), so compare statistically, not bitwise.
        let res = small_run();
        let agg = CurveSet::from_run(&res);
        let frac = vec![1.0 / 13.0; 13];
        let per = CurveSet::from_per_site(&res, &frac, &frac);
        for q in 1..=6u64 {
            let a = agg.availability(AvailabilityMetric::Accessibility, 0.5, q);
            let b = per.availability(AvailabilityMetric::Accessibility, 0.5, q);
            assert!((a - b).abs() < 0.01, "q = {q}: {a} vs {b}");
        }
    }

    #[test]
    fn curve_length_covers_domain() {
        let res = small_run();
        let curves = CurveSet::from_run(&res);
        assert_eq!(
            curves.curve(AvailabilityMetric::Accessibility, 0.5).len(),
            6
        );
    }

    #[test]
    fn asymmetric_workload_separates_r_and_w_mixtures() {
        // Reads originate at the star's hub, writes at the leaves: the
        // measured r(v) concentrates high (the hub sees big components),
        // w(v) carries isolated-leaf mass, and from_run must keep them
        // apart.
        let n = 11usize;
        let topo = Topology::star(n);
        let mut read_w = vec![0.0; n];
        read_w[0] = 1.0;
        let write_w: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { 1.0 }).collect();
        let res = run_static(
            &topo,
            VoteAssignment::uniform(n),
            QuorumSpec::majority(n as u64),
            Workload::weighted(0.5, &read_w, &write_w),
            RunConfig {
                params: SimParams {
                    warmup_accesses: 1_000,
                    batch_accesses: 20_000,
                    min_batches: 3,
                    max_batches: 3,
                    ci_half_width: 0.05,
                    ..SimParams::paper()
                },
                seed: 23,
                threads: 2,
            },
        );
        let curves = CurveSet::from_run(&res);
        let m = curves.model(AvailabilityMetric::Accessibility);
        // Reads (hub) reach moderate quorums far more often than writes
        // (leaves) reach the same vote level.
        for q in 3..=5u64 {
            assert!(
                m.read_availability(q) > m.write_availability(q) + 0.02,
                "q = {q}: R {} vs W {}",
                m.read_availability(q),
                m.write_availability(q)
            );
        }
    }

    #[test]
    fn optimal_on_measured_model_is_consistent() {
        let res = small_run();
        let curves = CurveSet::from_run(&res);
        let opt = curves.optimal(0.75, SearchStrategy::Exhaustive);
        let series = curves.curve(AvailabilityMetric::Accessibility, 0.75);
        let best = series.iter().cloned().fold(f64::MIN, f64::max);
        assert!((opt.availability - best).abs() < 1e-12);
    }
}
