//! The quorum consensus protocol (Gifford \[9\], §2.1) and the protocol
//! abstraction shared with the dynamic QR protocol.

use crate::quorum::QuorumSpec;
use crate::votes::VoteAssignment;

/// The two access kinds the protocol distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A read transaction.
    Read,
    /// A write transaction.
    Write,
}

/// Outcome of submitting an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The required quorum of votes was collected.
    Granted,
    /// The component lacked the required votes.
    Denied,
}

impl Decision {
    /// True if granted.
    pub fn is_granted(self) -> bool {
        self == Decision::Granted
    }
}

/// Common interface of the consistency-control protocols the simulator can
/// drive (static quorum consensus, dynamic quorum reassignment).
///
/// `members` is the set of sites in the component of the submitting site
/// (empty when that site is down); implementations that don't need
/// membership (static protocols) may ignore it and use only the vote total.
pub trait ConsistencyProtocol {
    /// Decides an access submitted to a site whose component contains
    /// `members` holding `votes` total votes.
    fn decide(&mut self, kind: Access, members: &[usize], votes: u64) -> Decision;

    /// Drains the component-membership lists whose data copies were
    /// refreshed by protocol-internal actions since the last call
    /// (quorum *reassignments* must copy the current value to the whole
    /// installing component — see `QrProtocol`). Static protocols never
    /// refresh; the default returns nothing.
    fn drain_refreshes(&mut self) -> Vec<Vec<usize>> {
        Vec::new()
    }

    /// Non-mutating decision probe: *would* an access of this kind be
    /// granted in a component with these members/votes? Used by the
    /// simulator's SURV instrumentation, which must ask the question of
    /// every component without perturbing protocol state.
    fn can_grant(&self, kind: Access, members: &[usize], votes: u64) -> bool;

    /// The quorum specification currently governing a component with the
    /// given membership.
    fn effective_spec(&self, members: &[usize]) -> QuorumSpec;

    /// Total votes in the system.
    fn total_votes(&self) -> u64;
}

/// The static quorum consensus protocol: fixed vote and quorum assignment.
///
/// When an access is submitted to a site, the site collects the votes of
/// every site in its component and grants the access iff they reach the
/// relevant quorum (§2.1).
#[derive(Debug, Clone)]
pub struct QuorumConsensus {
    votes: VoteAssignment,
    spec: QuorumSpec,
}

impl QuorumConsensus {
    /// Creates the protocol from a vote assignment and quorum spec.
    ///
    /// # Panics
    /// Panics if the spec's `T` differs from the assignment's total.
    pub fn new(votes: VoteAssignment, spec: QuorumSpec) -> Self {
        assert_eq!(
            votes.total(),
            spec.total(),
            "quorum spec is for {} votes but assignment totals {}",
            spec.total(),
            votes.total()
        );
        Self { votes, spec }
    }

    /// Uniform votes + majority quorums (the majority consensus protocol
    /// [Thomas 79]).
    pub fn majority(n_sites: usize) -> Self {
        let votes = VoteAssignment::uniform(n_sites);
        let spec = QuorumSpec::majority(votes.total());
        Self::new(votes, spec)
    }

    /// Uniform votes + read-one/write-all quorums.
    pub fn read_one_write_all(n_sites: usize) -> Self {
        let votes = VoteAssignment::uniform(n_sites);
        let spec = QuorumSpec::read_one_write_all(votes.total());
        Self::new(votes, spec)
    }

    /// The primary copy protocol [Alsberg-Day 76] as a quorum consensus
    /// instance: all votes at `primary`, `q_r = q_w = 1`.
    pub fn primary_copy(n_sites: usize, primary: usize) -> Self {
        let votes = VoteAssignment::primary_copy(n_sites, primary);
        let spec = QuorumSpec::new(1, 1, 1).expect("valid for T=1");
        Self::new(votes, spec)
    }

    /// The vote assignment.
    pub fn votes(&self) -> &VoteAssignment {
        &self.votes
    }

    /// The quorum specification.
    pub fn spec(&self) -> QuorumSpec {
        self.spec
    }

    /// Replaces the quorum specification (used by off-line re-optimization;
    /// the *on-line* path goes through [`crate::reassign::QrProtocol`]).
    ///
    /// # Panics
    /// Panics if the totals disagree.
    pub fn set_spec(&mut self, spec: QuorumSpec) {
        assert_eq!(spec.total(), self.votes.total(), "total votes mismatch");
        self.spec = spec;
    }

    /// Pure decision function on a vote total.
    pub fn decide_votes(&self, kind: Access, votes: u64) -> Decision {
        let granted = match kind {
            Access::Read => self.spec.read_granted(votes),
            Access::Write => self.spec.write_granted(votes),
        };
        if granted {
            Decision::Granted
        } else {
            Decision::Denied
        }
    }
}

impl ConsistencyProtocol for QuorumConsensus {
    fn decide(&mut self, kind: Access, _members: &[usize], votes: u64) -> Decision {
        self.decide_votes(kind, votes)
    }

    fn can_grant(&self, kind: Access, _members: &[usize], votes: u64) -> bool {
        self.decide_votes(kind, votes).is_granted()
    }

    fn effective_spec(&self, _members: &[usize]) -> QuorumSpec {
        self.spec
    }

    fn total_votes(&self) -> u64 {
        self.votes.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_grants_in_majority_component() {
        // Valid majority for odd T = 101 is q_r = q_w = 51 (see
        // QuorumSpec::majority for why the paper's (50, 51) is unsafe).
        let mut p = QuorumConsensus::majority(101);
        assert_eq!(p.decide(Access::Read, &[], 51), Decision::Granted);
        assert_eq!(p.decide(Access::Read, &[], 50), Decision::Denied);
        assert_eq!(p.decide(Access::Write, &[], 51), Decision::Granted);
        assert_eq!(p.decide(Access::Write, &[], 50), Decision::Denied);
    }

    #[test]
    fn rowa_read_anywhere_write_everywhere() {
        let mut p = QuorumConsensus::read_one_write_all(10);
        assert_eq!(p.decide(Access::Read, &[], 1), Decision::Granted);
        assert_eq!(p.decide(Access::Write, &[], 9), Decision::Denied);
        assert_eq!(p.decide(Access::Write, &[], 10), Decision::Granted);
    }

    #[test]
    fn rowa_denies_read_at_down_site() {
        let mut p = QuorumConsensus::read_one_write_all(10);
        // Down site = component of zero votes (§5.2).
        assert_eq!(p.decide(Access::Read, &[], 0), Decision::Denied);
    }

    #[test]
    fn primary_copy_depends_only_on_primary() {
        let p = QuorumConsensus::primary_copy(5, 3);
        assert_eq!(p.votes().votes_of(3), 1);
        assert_eq!(p.votes().total(), 1);
        // Component containing the primary has 1 vote; any other has 0.
        assert!(p.decide_votes(Access::Read, 1).is_granted());
        assert!(!p.decide_votes(Access::Write, 0).is_granted());
    }

    #[test]
    fn set_spec_swaps_quorums() {
        let mut p = QuorumConsensus::majority(11);
        p.set_spec(QuorumSpec::read_one_write_all(11));
        assert!(p.decide_votes(Access::Read, 1).is_granted());
        assert!(!p.decide_votes(Access::Write, 10).is_granted());
    }

    #[test]
    fn effective_spec_is_static() {
        let p = QuorumConsensus::majority(7);
        assert_eq!(p.effective_spec(&[0, 1]), QuorumSpec::majority(7));
        assert_eq!(p.total_votes(), 7);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn set_spec_total_mismatch_panics() {
        let mut p = QuorumConsensus::majority(7);
        p.set_spec(QuorumSpec::majority(9));
    }
}
