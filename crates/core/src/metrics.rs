//! Availability metrics (§3).

/// The two data-availability metrics from the literature.
///
/// * **Survivability (SURV)** — the probability that, at an arbitrary
///   time, *some* site can access the data object (a distinguished
///   component exists). Upper-bounded below by single-site reliability
///   (one unreplicated copy achieves it).
/// * **Accessibility (ACC)** — the probability that an *arbitrary* site
///   can access the object at an arbitrary time. Upper-bounded by the
///   reliability of the submitting site. The paper reports ACC, arguing it
///   reflects the experience of a user who cannot hop between sites.
///
/// Footnote 3: the Figure-1 algorithm optimizes SURV instead of ACC by
/// substituting the distribution of the *largest* component's votes for
/// the submitting site's component votes — the simulator exposes both
/// observations, so either metric can drive the optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AvailabilityMetric {
    /// Probability that an arbitrary site can access the object.
    Accessibility,
    /// Probability that at least one site can access the object.
    Survivability,
}

impl AvailabilityMetric {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            AvailabilityMetric::Accessibility => "ACC",
            AvailabilityMetric::Survivability => "SURV",
        }
    }
}

impl std::fmt::Display for AvailabilityMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(AvailabilityMetric::Accessibility.label(), "ACC");
        assert_eq!(AvailabilityMetric::Survivability.to_string(), "SURV");
    }
}
