//! Vote assignments (Gifford's weighted voting, §2.1).

/// An assignment of non-negative integer votes to each copy/site.
///
/// The paper's experiments use the uniform assignment (one vote per copy,
/// §5.1) because its access distributions and reliabilities are uniform and
/// its topologies roughly symmetric; weighted assignments are supported for
/// the general protocol (e.g. the primary-copy reduction gives all votes to
/// one site).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteAssignment {
    votes: Vec<u64>,
    total: u64,
}

impl VoteAssignment {
    /// One vote per site.
    pub fn uniform(n_sites: usize) -> Self {
        Self::weighted(vec![1; n_sites])
    }

    /// Arbitrary per-site votes.
    ///
    /// # Panics
    /// Panics if empty or if the total is zero.
    pub fn weighted(votes: Vec<u64>) -> Self {
        assert!(!votes.is_empty(), "need at least one site");
        let total: u64 = votes.iter().sum();
        assert!(total > 0, "total votes must be positive");
        Self { votes, total }
    }

    /// The primary-copy reduction: all `T` votes at `primary`, zero
    /// elsewhere. With `q_r = q_w = 1` (relative to `T = 1`), access is
    /// possible exactly in the component containing the primary site
    /// (§2.1's reduction to the primary copy protocol \[2\]).
    pub fn primary_copy(n_sites: usize, primary: usize) -> Self {
        assert!(primary < n_sites, "primary {primary} out of range");
        let mut votes = vec![0; n_sites];
        votes[primary] = 1;
        Self::weighted(votes)
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.votes.len()
    }

    /// Votes held by `site`.
    pub fn votes_of(&self, site: usize) -> u64 {
        self.votes[site]
    }

    /// Total votes `T`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-site votes as a slice (used by the connectivity layer to weight
    /// components).
    pub fn as_slice(&self) -> &[u64] {
        &self.votes
    }

    /// Sum of votes over a set of sites.
    pub fn votes_in(&self, sites: impl IntoIterator<Item = usize>) -> u64 {
        sites.into_iter().map(|s| self.votes[s]).sum()
    }

    /// True if every site holds exactly one vote.
    pub fn is_uniform(&self) -> bool {
        self.votes.iter().all(|&v| v == 1)
    }

    /// The minimal site-sets whose votes reach `quorum`, as sorted site
    /// lists in ascending mask order — the family a vote threshold
    /// induces. Shared by the coterie and bicoterie constructors (and
    /// cross-checked by the algebra layer's expression enumeration), so
    /// all three derive vote-induced families from one definition.
    ///
    /// Exponential subset scan; capped at 20 sites like the other
    /// exponential routines.
    ///
    /// # Panics
    /// Panics if the site count exceeds 20.
    pub fn minimal_reaching(&self, quorum: u64) -> Vec<Vec<usize>> {
        let n = self.num_sites();
        assert!(n <= 20, "exponential enumeration capped at 20 sites");
        let mut reaching: Vec<u32> = Vec::new();
        for mask in 1u32..(1 << n) {
            let sum: u64 = (0..n)
                .filter(|&s| mask >> s & 1 == 1)
                .map(|s| self.votes[s])
                .sum();
            if sum >= quorum {
                reaching.push(mask);
            }
        }
        reaching
            .iter()
            .filter(|&&m| !reaching.iter().any(|&o| o != m && o & m == o))
            .map(|&m| (0..n).filter(|&s| m >> s & 1 == 1).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_assignment() {
        let va = VoteAssignment::uniform(101);
        assert_eq!(va.total(), 101);
        assert_eq!(va.num_sites(), 101);
        assert!(va.is_uniform());
        assert_eq!(va.votes_of(50), 1);
    }

    #[test]
    fn weighted_assignment() {
        let va = VoteAssignment::weighted(vec![3, 0, 2]);
        assert_eq!(va.total(), 5);
        assert_eq!(va.votes_of(1), 0);
        assert!(!va.is_uniform());
        assert_eq!(va.votes_in([0, 2]), 5);
    }

    #[test]
    fn primary_copy_assignment() {
        let va = VoteAssignment::primary_copy(5, 2);
        assert_eq!(va.total(), 1);
        assert_eq!(va.votes_of(2), 1);
        assert_eq!(va.votes_of(0), 0);
    }

    #[test]
    fn votes_in_subset() {
        let va = VoteAssignment::uniform(10);
        assert_eq!(va.votes_in(0..4), 4);
        assert_eq!(va.votes_in(std::iter::empty()), 0);
    }

    #[test]
    #[should_panic(expected = "total votes must be positive")]
    fn all_zero_votes_rejected() {
        VoteAssignment::weighted(vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_rejected() {
        VoteAssignment::weighted(vec![]);
    }
}
