//! Read/write quorum specifications and the §2.1 consistency conditions.

use std::fmt;

/// Why a quorum specification is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumError {
    /// `q_r + q_w <= T`: a read could miss the most recent write.
    ReadWriteIntersection {
        /// Offending read quorum.
        q_r: u64,
        /// Offending write quorum.
        q_w: u64,
        /// Total votes.
        total: u64,
    },
    /// `2·q_w <= T`: two disjoint write quorums could exist.
    WriteWriteIntersection {
        /// Offending write quorum.
        q_w: u64,
        /// Total votes.
        total: u64,
    },
    /// A quorum of zero or exceeding the total.
    OutOfRange {
        /// The offending value.
        value: u64,
        /// Total votes.
        total: u64,
    },
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QuorumError::ReadWriteIntersection { q_r, q_w, total } => write!(
                f,
                "q_r + q_w must exceed T: {q_r} + {q_w} <= {total} (condition 1, §2.1)"
            ),
            QuorumError::WriteWriteIntersection { q_w, total } => write!(
                f,
                "q_w must exceed T/2: 2·{q_w} <= {total} (condition 2, §2.1)"
            ),
            QuorumError::OutOfRange { value, total } => {
                write!(f, "quorum {value} outside 1..={total}")
            }
        }
    }
}

impl std::error::Error for QuorumError {}

/// A validated `(q_r, q_w)` pair for a system with `T` total votes.
///
/// Invariants (conditions 1 and 2 of §2.1):
/// 1. `q_r + q_w > T` — every read intersects the most recent write;
/// 2. `q_w > T/2` — writes mutually intersect (no simultaneous writes).
///
/// # Examples
/// ```
/// use quorum_core::QuorumSpec;
///
/// // The paper's parameterization: pick q_r, get q_w = T − q_r + 1.
/// let spec = QuorumSpec::from_read_quorum(10, 101).unwrap();
/// assert_eq!(spec.q_w(), 92);
/// assert!(spec.read_granted(10));
/// assert!(!spec.write_granted(91));
///
/// // Violating condition 1 is rejected at construction.
/// assert!(QuorumSpec::new(3, 7, 10).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuorumSpec {
    q_r: u64,
    q_w: u64,
    total: u64,
}

impl QuorumSpec {
    /// Validates an explicit `(q_r, q_w)` pair.
    pub fn new(q_r: u64, q_w: u64, total: u64) -> Result<Self, QuorumError> {
        if q_r == 0 || q_r > total {
            return Err(QuorumError::OutOfRange { value: q_r, total });
        }
        if q_w == 0 || q_w > total {
            return Err(QuorumError::OutOfRange { value: q_w, total });
        }
        if q_r + q_w <= total {
            return Err(QuorumError::ReadWriteIntersection { q_r, q_w, total });
        }
        if 2 * q_w <= total {
            return Err(QuorumError::WriteWriteIntersection { q_w, total });
        }
        Ok(Self { q_r, q_w, total })
    }

    /// The paper's primary parameterization: choose `q_r` and take the
    /// loosest legal write quorum `q_w = T − q_r + 1` (condition 1 tight).
    ///
    /// Valid for `1 <= q_r <= ⌊T/2⌋` (larger `q_r` would be "unnecessarily
    /// restrictive", §2.1) — except `T = 1`, where `q_r = q_w = 1` is the
    /// only assignment.
    pub fn from_read_quorum(q_r: u64, total: u64) -> Result<Self, QuorumError> {
        if total == 1 {
            return Self::new(1, 1, 1);
        }
        if q_r == 0 || q_r > total / 2 {
            return Err(QuorumError::OutOfRange { value: q_r, total });
        }
        Self::new(q_r, total - q_r + 1, total)
    }

    /// Majority consensus [Thomas 79]: `q_w = ⌊T/2⌋ + 1` with the loosest
    /// legal read quorum `q_r = T − q_w + 1`.
    ///
    /// The paper describes majority as `(⌊T/2⌋, ⌊T/2⌋+1)`, but for odd `T`
    /// that pair sums to exactly `T`, violating strict condition 1 (a
    /// 50-vote read set and a 51-vote write set can be disjoint when
    /// `T = 101`). We therefore use the closest valid pair: for even `T`
    /// this is exactly the paper's `(T/2, T/2+1)`; for odd `T` it is
    /// `((T+1)/2, (T+1)/2)` — Thomas's original all-accesses-need-majority
    /// protocol.
    pub fn majority(total: u64) -> Self {
        if total == 1 {
            return Self {
                q_r: 1,
                q_w: 1,
                total,
            };
        }
        let q_w = total / 2 + 1;
        Self::new(total - q_w + 1, q_w, total).expect("majority is always valid")
    }

    /// Read-one/write-all: `q_r = 1`, `q_w = T`.
    pub fn read_one_write_all(total: u64) -> Self {
        Self::new(1, total, total).expect("ROWA is always valid")
    }

    /// Read quorum.
    pub fn q_r(&self) -> u64 {
        self.q_r
    }

    /// Write quorum.
    pub fn q_w(&self) -> u64 {
        self.q_w
    }

    /// Total votes `T`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The quorum an access of `kind` must collect (`q_r` for reads,
    /// `q_w` for writes). Shared by the instantaneous simulator's
    /// vote-collection accounting and the message-level cluster engine's
    /// session threshold.
    #[inline]
    pub fn threshold(&self, kind: crate::protocol::Access) -> u64 {
        match kind {
            crate::protocol::Access::Read => self.q_r,
            crate::protocol::Access::Write => self.q_w,
        }
    }

    /// May a read proceed with `votes` collectable?
    #[inline]
    pub fn read_granted(&self, votes: u64) -> bool {
        votes >= self.q_r
    }

    /// May a write proceed with `votes` collectable?
    #[inline]
    pub fn write_granted(&self, votes: u64) -> bool {
        votes >= self.q_w
    }

    /// The domain of read quorums the optimizer searches: `1..=⌊T/2⌋`
    /// (§2.1 justifies the upper cut; `T = 1` degenerates to `{1}`).
    pub fn read_quorum_domain(total: u64) -> std::ops::RangeInclusive<u64> {
        if total == 1 {
            1..=1
        } else {
            1..=(total / 2)
        }
    }
}

impl fmt::Display for QuorumSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(q_r={}, q_w={}, T={})", self.q_r, self.q_w, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_specs_accepted() {
        let s = QuorumSpec::new(3, 8, 10).unwrap();
        assert_eq!(s.q_r(), 3);
        assert_eq!(s.q_w(), 8);
        assert_eq!(s.total(), 10);
    }

    #[test]
    fn condition_one_enforced() {
        // 3 + 7 = 10 <= 10: read may miss latest write.
        assert_eq!(
            QuorumSpec::new(3, 7, 10),
            Err(QuorumError::ReadWriteIntersection {
                q_r: 3,
                q_w: 7,
                total: 10
            })
        );
    }

    #[test]
    fn condition_two_enforced() {
        // q_w = 5, T = 10: two disjoint write quorums possible.
        assert_eq!(
            QuorumSpec::new(6, 5, 10),
            Err(QuorumError::WriteWriteIntersection { q_w: 5, total: 10 })
        );
    }

    #[test]
    fn from_read_quorum_tightens_condition_one() {
        for total in [2u64, 3, 10, 101] {
            for q_r in 1..=total / 2 {
                let s = QuorumSpec::from_read_quorum(q_r, total).unwrap();
                assert_eq!(s.q_r() + s.q_w(), total + 1, "tight condition 1");
                assert!(2 * s.q_w() > total, "condition 2");
            }
        }
    }

    #[test]
    fn from_read_quorum_rejects_large_q_r() {
        assert!(QuorumSpec::from_read_quorum(51, 101).is_err());
        assert!(QuorumSpec::from_read_quorum(0, 101).is_err());
        assert!(QuorumSpec::from_read_quorum(50, 101).is_ok());
    }

    #[test]
    fn majority_both_parities() {
        // Odd T: the paper's (⌊T/2⌋, ⌊T/2⌋+1) = (50, 51) sums to exactly
        // T and is unsafe; the valid majority is (51, 51).
        let odd = QuorumSpec::majority(101);
        assert_eq!((odd.q_r(), odd.q_w()), (51, 51));
        // Even T matches the paper exactly.
        let even = QuorumSpec::majority(10);
        assert_eq!((even.q_r(), even.q_w()), (5, 6));
    }

    #[test]
    fn paper_majority_pair_is_invalid_for_odd_t() {
        // Documents the subtlety: disjoint 50- and 51-vote sets exist when
        // T = 101, so a read could miss the latest write.
        assert!(QuorumSpec::new(50, 51, 101).is_err());
        assert!(QuorumSpec::new(51, 51, 101).is_ok());
    }

    #[test]
    fn rowa() {
        let s = QuorumSpec::read_one_write_all(101);
        assert_eq!((s.q_r(), s.q_w()), (1, 101));
        assert!(s.read_granted(1));
        assert!(!s.write_granted(100));
        assert!(s.write_granted(101));
    }

    #[test]
    fn single_vote_system() {
        let s = QuorumSpec::from_read_quorum(1, 1).unwrap();
        assert_eq!((s.q_r(), s.q_w()), (1, 1));
        let m = QuorumSpec::majority(1);
        assert_eq!((m.q_r(), m.q_w()), (1, 1));
        assert_eq!(QuorumSpec::read_quorum_domain(1), 1..=1);
    }

    #[test]
    fn grant_thresholds() {
        let s = QuorumSpec::new(4, 8, 10).unwrap();
        assert!(!s.read_granted(3));
        assert!(s.read_granted(4));
        assert!(!s.write_granted(7));
        assert!(s.write_granted(8));
    }

    #[test]
    fn domain_for_101_votes() {
        let d = QuorumSpec::read_quorum_domain(101);
        assert_eq!(d, 1..=50);
    }

    #[test]
    fn error_display_mentions_condition() {
        let e = QuorumSpec::new(3, 7, 10).unwrap_err();
        assert!(e.to_string().contains("condition 1"));
        let e = QuorumSpec::new(6, 5, 10).unwrap_err();
        assert!(e.to_string().contains("condition 2"));
    }

    #[test]
    fn zero_quorum_rejected() {
        assert!(matches!(
            QuorumSpec::new(0, 10, 10),
            Err(QuorumError::OutOfRange { .. })
        ));
        assert!(matches!(
            QuorumSpec::new(1, 11, 10),
            Err(QuorumError::OutOfRange { .. })
        ));
    }
}
