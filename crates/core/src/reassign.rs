//! The dynamic quorum reassignment (QR) protocol (§2.2, §4.3).
//!
//! Each site carries a quorum assignment and a *version number* (initially
//! 1). The assignment in effect for an access submitted to site `x` is the
//! one held by the highest-versioned site in `x`'s component. Assignments
//! may be changed only inside a component holding at least a write quorum
//! of votes *under the old assignment*; the change bumps the version.
//!
//! Safety argument (reproduced from the paper, and enforced by the property
//! tests): the installing component `C₁` holds `q_w` votes under the old
//! assignment, and since `q_r + q_w > T` it is the *only* component with
//! `q_r` or more votes. Hence no other component can access the item until
//! some site of `C₁` joins it — at which point the join propagates the new
//! assignment. No access is ever granted under a stale assignment.
//!
//! **Correctness addendum (deviation from the paper's literal rule).** The
//! old-write-quorum requirement alone is *not* sufficient for one-copy
//! serializability: after a read-loosening install (say majority →
//! read-one/write-all), the current value lives on only `q_w(old)` votes
//! worth of sites, while a new read needs just `q_r(new)` votes —
//! `q_r(new) + q_w(old)` may be ≤ `T`, so the read can miss every current
//! copy (our simulator demonstrates exactly this; see
//! [`QrProtocol::try_reassign_paper_rule`] and the stale-read tests).
//! [`QrProtocol::try_reassign`] therefore requires the installing
//! component to hold `max(q_w(old), q_w(new))` votes **and** refreshes the
//! current value onto every member (always possible: any two write
//! quorums intersect, so a current copy is present). The value then rests
//! on ≥ `q_w(new)` votes, which every new read and write provably
//! intersects — the same joint-quorum shape used by the dynamic-voting
//! literature the paper cites [4, 5, 12, 13, 17].

use crate::protocol::{Access, ConsistencyProtocol, Decision};
use crate::quorum::QuorumSpec;
use crate::votes::VoteAssignment;
use std::fmt;

/// Why a reassignment attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassignError {
    /// The component lacks a write quorum under the *old* assignment.
    InsufficientVotes {
        /// Votes present in the component.
        have: u64,
        /// Old write quorum required.
        need: u64,
    },
    /// The proposed spec is for a different vote total.
    TotalMismatch {
        /// Total of the proposed spec.
        proposed: u64,
        /// Total of the system.
        system: u64,
    },
    /// The component is empty (submitting site down).
    EmptyComponent,
}

impl fmt::Display for ReassignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ReassignError::InsufficientVotes { have, need } => write!(
                f,
                "component holds {have} votes but the install requires {need} \
                 (the larger of the old and new write quorums)"
            ),
            ReassignError::TotalMismatch { proposed, system } => {
                write!(
                    f,
                    "proposed spec totals {proposed} votes, system has {system}"
                )
            }
            ReassignError::EmptyComponent => write!(f, "no operational site in component"),
        }
    }
}

impl std::error::Error for ReassignError {}

/// Per-site replicated state of the QR protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteAssignment {
    /// Version number of the assignment this site knows.
    pub version: u64,
    /// The quorum assignment itself.
    pub spec: QuorumSpec,
}

/// The dynamic quorum reassignment protocol.
///
/// # Examples
/// ```
/// use quorum_core::{QrProtocol, QuorumSpec, VoteAssignment};
///
/// let mut qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));
/// // Installing (q_r=2, q_w=4) needs max(q_w_old, q_w_new) = 4 votes.
/// let new = QuorumSpec::from_read_quorum(2, 5).unwrap();
/// assert!(qr.try_reassign(&[0, 1, 2], new).is_err());
/// let v = qr.try_reassign(&[0, 1, 2, 3], new).unwrap();
/// assert_eq!(v, 2);
/// // Joins propagate the new assignment.
/// qr.sync(&[3, 4]);
/// assert_eq!(qr.site(4).version, 2);
/// ```
#[derive(Debug, Clone)]
pub struct QrProtocol {
    votes: VoteAssignment,
    sites: Vec<SiteAssignment>,
    reassignments: u64,
    /// Components whose data copies were refreshed by an installation and
    /// not yet drained by the environment (see
    /// [`ConsistencyProtocol::drain_refreshes`]).
    pending_refreshes: Vec<Vec<usize>>,
}

impl QrProtocol {
    /// Initializes every site with `initial` at version 1.
    ///
    /// # Panics
    /// Panics if `initial.total()` differs from the assignment total.
    pub fn new(votes: VoteAssignment, initial: QuorumSpec) -> Self {
        assert_eq!(
            votes.total(),
            initial.total(),
            "spec total must match vote total"
        );
        let n = votes.num_sites();
        Self {
            votes,
            sites: vec![
                SiteAssignment {
                    version: 1,
                    spec: initial,
                };
                n
            ],
            reassignments: 0,
            pending_refreshes: Vec::new(),
        }
    }

    /// The vote assignment.
    pub fn votes(&self) -> &VoteAssignment {
        &self.votes
    }

    /// State of one site.
    pub fn site(&self, site: usize) -> SiteAssignment {
        self.sites[site]
    }

    /// Number of successful reassignments so far.
    pub fn reassignments(&self) -> u64 {
        self.reassignments
    }

    /// Highest version across all sites (the authoritative assignment).
    pub fn global_max_version(&self) -> u64 {
        self.sites.iter().map(|s| s.version).max().unwrap_or(0)
    }

    /// The assignment in effect for a component with the given members:
    /// the one held by the highest-versioned member.
    ///
    /// Returns `None` for an empty component.
    pub fn effective(&self, members: &[usize]) -> Option<SiteAssignment> {
        members
            .iter()
            .map(|&s| self.sites[s])
            .max_by_key(|a| a.version)
    }

    /// Models the version-number exchange among communicating sites: every
    /// member adopts the highest-versioned assignment in the component.
    /// Returns that assignment.
    ///
    /// The paper performs this implicitly whenever sites communicate (vote
    /// collection, joins); the simulator calls it on every access and on
    /// every membership observation.
    pub fn sync(&mut self, members: &[usize]) -> Option<SiteAssignment> {
        let best = self.effective(members)?;
        for &s in members {
            if self.sites[s].version < best.version {
                self.sites[s] = best;
            }
        }
        Some(best)
    }

    /// Attempts to install `new_spec` from within the component `members`.
    ///
    /// Succeeds iff the component holds at least
    /// `max(q_w(old), q_w(new))` votes — the old write quorum makes the
    /// change exclusive (the paper's rule); the new write quorum makes the
    /// refreshed copies reachable by every future access (the correctness
    /// addendum in the module docs). On success every member adopts the
    /// new assignment at version `old_version + 1`, the current value is
    /// refreshed onto all members, and the new version is returned.
    pub fn try_reassign(
        &mut self,
        members: &[usize],
        new_spec: QuorumSpec,
    ) -> Result<u64, ReassignError> {
        self.reassign_with_requirement(members, new_spec, true)
    }

    /// The paper's §2.2 rule verbatim: only the *old* write quorum is
    /// required. **Unsafe for read-loosening changes** — retained so tests
    /// and experiments can demonstrate the stale reads it admits.
    pub fn try_reassign_paper_rule(
        &mut self,
        members: &[usize],
        new_spec: QuorumSpec,
    ) -> Result<u64, ReassignError> {
        self.reassign_with_requirement(members, new_spec, false)
    }

    fn reassign_with_requirement(
        &mut self,
        members: &[usize],
        new_spec: QuorumSpec,
        require_new_quorum: bool,
    ) -> Result<u64, ReassignError> {
        if new_spec.total() != self.votes.total() {
            return Err(ReassignError::TotalMismatch {
                proposed: new_spec.total(),
                system: self.votes.total(),
            });
        }
        let current = self.sync(members).ok_or(ReassignError::EmptyComponent)?;
        let have = self.votes.votes_in(members.iter().copied());
        let need = if require_new_quorum {
            current.spec.q_w().max(new_spec.q_w())
        } else {
            current.spec.q_w()
        };
        if have < need {
            return Err(ReassignError::InsufficientVotes { have, need });
        }
        let new_version = current.version + 1;
        for &s in members {
            self.sites[s] = SiteAssignment {
                version: new_version,
                spec: new_spec,
            };
        }
        self.reassignments += 1;
        // Installation copies the current value to every member: the
        // component holds a write quorum under the old assignment, and any
        // two write quorums intersect, so a current copy is present. This
        // is what keeps reads correct after a *loosening* reassignment
        // (the new q_r need not intersect the old q_w).
        self.pending_refreshes.push(members.to_vec());
        Ok(new_version)
    }
}

impl ConsistencyProtocol for QrProtocol {
    fn can_grant(&self, kind: Access, members: &[usize], votes: u64) -> bool {
        let Some(current) = self.effective(members) else {
            return false;
        };
        match kind {
            Access::Read => current.spec.read_granted(votes),
            Access::Write => current.spec.write_granted(votes),
        }
    }

    fn drain_refreshes(&mut self) -> Vec<Vec<usize>> {
        std::mem::take(&mut self.pending_refreshes)
    }

    fn decide(&mut self, kind: Access, members: &[usize], votes: u64) -> Decision {
        let Some(current) = self.sync(members) else {
            return Decision::Denied;
        };
        let granted = match kind {
            Access::Read => current.spec.read_granted(votes),
            Access::Write => current.spec.write_granted(votes),
        };
        if granted {
            Decision::Granted
        } else {
            Decision::Denied
        }
    }

    fn effective_spec(&self, members: &[usize]) -> QuorumSpec {
        self.effective(members)
            .map(|a| a.spec)
            .unwrap_or_else(|| self.sites[0].spec)
    }

    fn total_votes(&self) -> u64 {
        self.votes.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(v: std::ops::Range<usize>) -> Vec<usize> {
        v.collect()
    }

    #[test]
    fn initial_state_is_version_one_everywhere() {
        let qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));
        for s in 0..5 {
            assert_eq!(qr.site(s).version, 1);
        }
        assert_eq!(qr.global_max_version(), 1);
    }

    #[test]
    fn reassign_in_joint_quorum_component() {
        let mut qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));
        // Installing (2,4) needs max(q_w_old=3, q_w_new=4) = 4 votes.
        let new = QuorumSpec::from_read_quorum(2, 5).unwrap();
        let v = qr.try_reassign(&members(0..4), new).unwrap();
        assert_eq!(v, 2);
        assert_eq!(qr.site(0).spec, new);
        assert_eq!(qr.site(4).version, 1, "outside component keeps old");
        assert_eq!(qr.reassignments(), 1);
    }

    #[test]
    fn reassign_refused_without_write_quorum() {
        let mut qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));
        let err = qr
            .try_reassign(&members(0..2), QuorumSpec::majority(5))
            .unwrap_err();
        assert_eq!(err, ReassignError::InsufficientVotes { have: 2, need: 3 });
    }

    #[test]
    fn loosening_reads_requires_new_write_quorum() {
        // Installing ROWA means the refreshed copies must cover q_w(new) =
        // 5 votes — a 3-vote component may NOT do it (the paper's literal
        // rule would allow it, and stale reads follow; see the replica
        // crate's demonstration test).
        let mut qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));
        let err = qr
            .try_reassign(&members(0..3), QuorumSpec::read_one_write_all(5))
            .unwrap_err();
        assert_eq!(err, ReassignError::InsufficientVotes { have: 3, need: 5 });
        // The full network can.
        assert!(qr
            .try_reassign(&members(0..5), QuorumSpec::read_one_write_all(5))
            .is_ok());
        // Tightening reads back only needs the (now large) old q_w... and
        // the new one: max(5, 3) = 5.
        let err = qr
            .try_reassign(&members(0..4), QuorumSpec::majority(5))
            .unwrap_err();
        assert_eq!(err, ReassignError::InsufficientVotes { have: 4, need: 5 });
    }

    #[test]
    fn paper_rule_allows_what_the_safe_rule_refuses() {
        let mut qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));
        // Old rule: only q_w(old) = 3 votes required, even for ROWA.
        let v = qr
            .try_reassign_paper_rule(&members(0..3), QuorumSpec::read_one_write_all(5))
            .unwrap();
        assert_eq!(v, 2);
    }

    #[test]
    fn join_propagates_new_assignment() {
        let mut qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));
        let new = QuorumSpec::from_read_quorum(2, 5).unwrap();
        qr.try_reassign(&members(0..4), new).unwrap();
        // Site 0 joins {4}: sync spreads version 2.
        qr.sync(&[0, 4]);
        assert_eq!(qr.site(4).version, 2);
        assert_eq!(qr.site(4).spec, new);
    }

    #[test]
    fn stale_component_cannot_access() {
        // After {0,1,2,3} installs version 2, the stale remainder {4}
        // holds 1 vote < q_r(old) = 3 (majority(5) = (3,3)), so the stale
        // component can grant nothing — the paper's §2.2 safety argument
        // in miniature.
        let mut qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));
        qr.try_reassign(&members(0..4), QuorumSpec::from_read_quorum(2, 5).unwrap())
            .unwrap();
        let eff = qr.effective(&[4]).unwrap();
        assert_eq!(eff.version, 1);
        assert!(
            !eff.spec.read_granted(1),
            "stale component must not reach a read quorum"
        );
        assert_eq!(
            qr.decide(Access::Read, &[4], 1),
            Decision::Denied,
            "stale component denied"
        );
    }

    #[test]
    fn granted_access_always_sees_latest_version() {
        // Randomized schedule: partitions evolve, reassignments happen
        // opportunistically; any granted access must be under the global
        // max version (the paper's safety claim).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 9;
        let mut qr = QrProtocol::new(VoteAssignment::uniform(n), QuorumSpec::majority(n as u64));
        for step in 0..500 {
            // Random partition of 0..n into two blocks (plus down sites).
            let mut comp_a = Vec::new();
            let mut comp_b = Vec::new();
            for s in 0..n {
                match rng.random_range(0..3) {
                    0 => comp_a.push(s),
                    1 => comp_b.push(s),
                    _ => {} // down
                }
            }
            for comp in [&comp_a, &comp_b] {
                if comp.is_empty() {
                    continue;
                }
                let votes = comp.len() as u64;
                // Occasionally attempt a reassignment to a random spec.
                if rng.random_range(0..4) == 0 {
                    let q_r = rng.random_range(1..=(n as u64) / 2);
                    let spec = QuorumSpec::from_read_quorum(q_r, n as u64).unwrap();
                    let _ = qr.try_reassign(comp, spec);
                }
                let kind = if rng.random_range(0..2) == 0 {
                    Access::Read
                } else {
                    Access::Write
                };
                let decision = qr.decide(kind, comp, votes);
                if decision.is_granted() {
                    let eff = qr.effective(comp).unwrap();
                    assert_eq!(
                        eff.version,
                        qr.global_max_version(),
                        "step {step}: access granted under stale version"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_component_denied() {
        let mut qr = QrProtocol::new(VoteAssignment::uniform(3), QuorumSpec::majority(3));
        assert_eq!(qr.decide(Access::Read, &[], 0), Decision::Denied);
        assert_eq!(
            qr.try_reassign(&[], QuorumSpec::majority(3)).unwrap_err(),
            ReassignError::EmptyComponent
        );
    }

    #[test]
    fn total_mismatch_rejected() {
        let mut qr = QrProtocol::new(VoteAssignment::uniform(5), QuorumSpec::majority(5));
        let err = qr
            .try_reassign(&[0, 1, 2], QuorumSpec::majority(7))
            .unwrap_err();
        assert!(matches!(err, ReassignError::TotalMismatch { .. }));
    }
}
