//! Coteries (Garcia-Molina & Barbara \[8\]).
//!
//! A *coterie* over sites `U = {0..n}` is a set of groups (quorums) that
//! pairwise intersect and form an antichain (no group contains another).
//! Coteries generalize vote/quorum assignments: every `(votes, q)` pair
//! induces the coterie of minimal vote-sets reaching `q`, but some coteries
//! are not realizable by voting. The related work the paper builds on
//! (\[7\], \[8\]) searches coterie space exhaustively for ≤ 7 sites; we provide
//! that machinery for completeness and for cross-checking the quorum layer.

use crate::votes::VoteAssignment;
use std::fmt;

/// Maximum universe size for the exponential routines.
const MAX_SITES: usize = 20;

/// Error constructing a coterie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoterieError {
    /// Two groups fail to intersect.
    DisjointGroups(Vec<usize>, Vec<usize>),
    /// One group contains another (violates minimality).
    NonMinimal(Vec<usize>, Vec<usize>),
    /// Empty group or empty coterie.
    Empty,
    /// Site index out of range.
    OutOfRange(usize),
}

impl fmt::Display for CoterieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoterieError::DisjointGroups(a, b) => {
                write!(f, "groups {a:?} and {b:?} do not intersect")
            }
            CoterieError::NonMinimal(a, b) => write!(f, "group {a:?} contains group {b:?}"),
            CoterieError::Empty => write!(f, "coterie and its groups must be non-empty"),
            CoterieError::OutOfRange(s) => write!(f, "site {s} out of range"),
        }
    }
}

impl std::error::Error for CoterieError {}

/// A coterie over `0..n`, stored as sorted bitmask groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coterie {
    n: usize,
    groups: Vec<u32>,
}

fn mask_to_vec(mask: u32) -> Vec<usize> {
    (0..32).filter(|b| mask >> b & 1 == 1).collect()
}

impl Coterie {
    /// Builds and validates a coterie from explicit site groups.
    pub fn new(n: usize, groups: &[Vec<usize>]) -> Result<Self, CoterieError> {
        assert!(n > 0 && n <= MAX_SITES, "1..={MAX_SITES} sites supported");
        if groups.is_empty() {
            return Err(CoterieError::Empty);
        }
        let mut masks = Vec::with_capacity(groups.len());
        for g in groups {
            if g.is_empty() {
                return Err(CoterieError::Empty);
            }
            let mut m = 0u32;
            for &s in g {
                if s >= n {
                    return Err(CoterieError::OutOfRange(s));
                }
                m |= 1 << s;
            }
            masks.push(m);
        }
        masks.sort_unstable();
        masks.dedup();
        for i in 0..masks.len() {
            for j in i + 1..masks.len() {
                if masks[i] & masks[j] == 0 {
                    return Err(CoterieError::DisjointGroups(
                        mask_to_vec(masks[i]),
                        mask_to_vec(masks[j]),
                    ));
                }
                if masks[i] & masks[j] == masks[i] {
                    return Err(CoterieError::NonMinimal(
                        mask_to_vec(masks[j]),
                        mask_to_vec(masks[i]),
                    ));
                }
                if masks[i] & masks[j] == masks[j] {
                    return Err(CoterieError::NonMinimal(
                        mask_to_vec(masks[i]),
                        mask_to_vec(masks[j]),
                    ));
                }
            }
        }
        Ok(Self { n, groups: masks })
    }

    /// The majority coterie: all `⌈(n+1)/2⌉`-subsets (requires odd `n` for
    /// the classic antichain; even `n` uses `n/2 + 1`-subsets).
    pub fn majority(n: usize) -> Self {
        let k = n / 2 + 1;
        let mut groups = Vec::new();
        for mask in 1u32..(1 << n) {
            if mask.count_ones() as usize == k {
                groups.push(mask_to_vec(mask));
            }
        }
        Self::new(n, &groups).expect("majority coterie is valid")
    }

    /// The singleton (primary-site) coterie `{{primary}}`.
    pub fn primary(n: usize, primary: usize) -> Self {
        Self::new(n, &[vec![primary]]).expect("singleton coterie is valid")
    }

    /// Derives the coterie induced by a vote assignment and (write) quorum:
    /// the minimal site-sets whose votes reach `quorum`.
    ///
    /// Requires `2·quorum > total` so the result pairwise-intersects.
    ///
    /// # Panics
    /// Panics if the intersection precondition fails or `n > 20`.
    pub fn from_votes(votes: &VoteAssignment, quorum: u64) -> Self {
        let n = votes.num_sites();
        assert!(
            n <= MAX_SITES,
            "exponential enumeration capped at {MAX_SITES} sites"
        );
        assert!(
            2 * quorum > votes.total(),
            "need 2·quorum > T for pairwise intersection"
        );
        let groups = votes.minimal_reaching(quorum);
        Self::new(n, &groups).expect("vote-derived coterie is valid")
    }

    /// Universe size.
    pub fn num_sites(&self) -> usize {
        self.n
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Groups as site lists.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        self.groups.iter().map(|&m| mask_to_vec(m)).collect()
    }

    /// True if the up-site set `alive` contains some group (i.e. a
    /// distinguished component exists within `alive`).
    // clippy::manual_contains misfires on `any(|&g| g & mask == g)` — the
    // closure variable appears on both sides, so `contains` cannot apply.
    #[allow(clippy::manual_contains)]
    pub fn contains_quorum(&self, alive: &[usize]) -> bool {
        let mut mask = 0u32;
        for &s in alive {
            assert!(s < self.n, "site {s} out of range");
            mask |= 1 << s;
        }
        self.groups.iter().any(|&g| g & mask == g)
    }

    /// True if `self` dominates `other`: they differ and every group of
    /// `other` contains some group of `self` (so `self` grants access in
    /// every state `other` does, and more).
    #[allow(clippy::manual_contains)] // see contains_quorum
    pub fn dominates(&self, other: &Coterie) -> bool {
        assert_eq!(self.n, other.n, "coteries over different universes");
        self != other
            && other
                .groups
                .iter()
                .all(|&og| self.groups.iter().any(|&sg| og & sg == sg))
    }

    /// True if some coterie dominates `self`.
    ///
    /// Uses the Garcia-Molina–Barbara witness characterization: `self` is
    /// dominated iff some site-set intersects every group yet contains no
    /// group. Exponential in `n` (fine for `n ≤ 20`).
    #[allow(clippy::manual_contains)] // see contains_quorum
    pub fn is_dominated(&self) -> bool {
        for mask in 1u32..(1 << self.n) {
            let intersects_all = self.groups.iter().all(|&g| g & mask != 0);
            let contains_none = !self.groups.iter().any(|&g| g & mask == g);
            if intersects_all && contains_none {
                return true;
            }
        }
        false
    }

    /// Enumerates every coterie over `0..n` (exponential; practical for
    /// `n <= 4`, mirroring the ≤ 7-site exhaustive searches of \[7\]).
    pub fn enumerate_all(n: usize) -> Vec<Coterie> {
        assert!(
            (1..=5).contains(&n),
            "enumeration practical only for n <= 5"
        );
        let all_masks: Vec<u32> = (1u32..(1 << n)).collect();
        let mut out = Vec::new();
        let mut current: Vec<u32> = Vec::new();
        fn dfs(start: usize, all: &[u32], current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if !current.is_empty() {
                out.push(current.clone());
            }
            for i in start..all.len() {
                let cand = all[i];
                let ok = current
                    .iter()
                    .all(|&g| g & cand != 0 && g & cand != g && g & cand != cand);
                if ok {
                    current.push(cand);
                    dfs(i + 1, all, current, out);
                    current.pop();
                }
            }
        }
        let mut families = Vec::new();
        dfs(0, &all_masks, &mut current, &mut families);
        for f in families {
            out.push(Coterie {
                n,
                groups: {
                    let mut g = f;
                    g.sort_unstable();
                    g
                },
            });
        }
        out
    }

    /// Enumerates only the non-dominated coteries over `0..n`.
    pub fn enumerate_non_dominated(n: usize) -> Vec<Coterie> {
        Self::enumerate_all(n)
            .into_iter()
            .filter(|c| !c.is_dominated())
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn majority_coterie_three_sites() {
        let c = Coterie::majority(3);
        assert_eq!(c.num_groups(), 3); // {01, 02, 12}
        assert!(!c.is_dominated());
        assert!(c.contains_quorum(&[0, 1]));
        assert!(!c.contains_quorum(&[2]));
    }

    #[test]
    fn primary_coterie() {
        let c = Coterie::primary(4, 2);
        assert_eq!(c.num_groups(), 1);
        assert!(c.contains_quorum(&[2]));
        assert!(!c.contains_quorum(&[0, 1, 3]));
        assert!(!c.is_dominated(), "singleton coterie is non-dominated");
    }

    #[test]
    fn disjoint_groups_rejected() {
        let e = Coterie::new(4, &[vec![0, 1], vec![2, 3]]).unwrap_err();
        assert!(matches!(e, CoterieError::DisjointGroups(..)));
    }

    #[test]
    fn non_minimal_rejected() {
        let e = Coterie::new(3, &[vec![0], vec![0, 1]]).unwrap_err();
        assert!(matches!(e, CoterieError::NonMinimal(..)));
    }

    #[test]
    fn from_uniform_votes_majority_quorum() {
        let votes = VoteAssignment::uniform(5);
        let c = Coterie::from_votes(&votes, 3);
        // All 3-subsets of 5 sites: C(5,3) = 10 groups.
        assert_eq!(c.num_groups(), 10);
        assert_eq!(c, Coterie::majority(5));
    }

    #[test]
    fn from_weighted_votes() {
        // Votes (2,1,1), T = 4, q = 3: minimal sets {0,1}, {0,2}, {1,2}? —
        // {1,2} has 2 votes < 3, so groups are {0,1}, {0,2} only... but
        // those intersect in 0, and {0,1,2}\{0} can't reach 3. Check.
        let votes = VoteAssignment::weighted(vec![2, 1, 1]);
        let c = Coterie::from_votes(&votes, 3);
        assert_eq!(c.groups(), vec![vec![0, 1], vec![0, 2]]);
        // Site 0 is a "king": this coterie is dominated by primary(0).
        assert!(Coterie::primary(3, 0).dominates(&c));
        assert!(c.is_dominated());
    }

    #[test]
    fn domination_is_irreflexive() {
        let c = Coterie::majority(3);
        assert!(!c.dominates(&c.clone()));
    }

    #[test]
    fn majority_is_non_dominated_small_n() {
        for n in [1usize, 3, 5] {
            assert!(!Coterie::majority(n).is_dominated(), "n = {n}");
        }
    }

    #[test]
    fn even_majority_is_dominated() {
        // For even n, the (n/2+1)-majority coterie is dominated (classic
        // result — adding a tie-breaking site produces a better coterie).
        assert!(Coterie::majority(4).is_dominated());
    }

    #[test]
    fn enumerate_n1_and_n2() {
        let c1 = Coterie::enumerate_all(1);
        assert_eq!(c1.len(), 1); // {{0}}
        let c2 = Coterie::enumerate_all(2);
        // {{0}}, {{1}}, {{01}}, {{0},{... }} — {0} and {1} disjoint, so
        // coteries over 2 sites: {{0}}, {{1}}, {{0,1}}.
        assert_eq!(c2.len(), 3);
        let nd2 = Coterie::enumerate_non_dominated(2);
        // {{0,1}} is dominated by {{0}} (and {{1}}).
        assert_eq!(nd2.len(), 2);
    }

    #[test]
    fn enumerate_n3_counts() {
        let all = Coterie::enumerate_all(3);
        // Every enumerated family satisfies the axioms by construction;
        // spot-check validity and that majority(3) is found.
        assert!(all.contains(&Coterie::majority(3)));
        for c in &all {
            let groups = c.groups();
            assert!(Coterie::new(3, &groups).is_ok());
        }
        let nd = Coterie::enumerate_non_dominated(3);
        // Non-dominated coteries correspond to non-constant self-dual
        // monotone boolean functions; on 3 variables there are exactly 4
        // (the three dictators and majority). Verify the count and that
        // every ND coterie is undominated by any enumerated coterie.
        for c in &nd {
            for other in &all {
                assert!(!other.dominates(c), "{other:?} dominates {c:?}");
            }
        }
        assert_eq!(nd.len(), 4);
    }

    #[test]
    fn dominated_coterie_has_witness_dominator() {
        let all = Coterie::enumerate_all(3);
        for c in &all {
            if c.is_dominated() {
                assert!(
                    all.iter().any(|o| o.dominates(c)),
                    "dominated {c:?} lacks dominator in enumeration"
                );
            }
        }
    }

    #[test]
    fn contains_quorum_requires_full_group() {
        let c = Coterie::majority(5);
        assert!(c.contains_quorum(&[0, 2, 4]));
        assert!(!c.contains_quorum(&[0, 2]));
        assert!(!c.contains_quorum(&[]));
    }
}
