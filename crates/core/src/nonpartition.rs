//! The non-partitionable model of Ahamad & Ammar \[1\] and the vote-and-
//! quorum co-optimization of Cheung, Ahamad & Ammar \[7\].
//!
//! The paper positions itself against these analyses (§1): they assume
//! "if two sites are operational then they can communicate" — no link
//! failures, no partitions — which makes availability *exactly* computable
//! by dynamic programming over the independent site up/down states, and
//! makes joint vote/quorum optimization tractable for small `n`. The paper
//! shows their extreme-endpoint and majority-optimality conclusions
//! carry over to partitionable networks; this module lets the test-suite
//! and experiments verify that correspondence directly.
//!
//! Model: site `i` is up with probability `p_i` independently; an up site
//! can reach every other up site. A read submitted anywhere succeeds iff
//! the up-vote total reaches `q_r` (writes: `q_w`). Following the paper's
//! ACC convention, the submitting site must itself be up.

use crate::availability::AvailabilityModel;
use crate::quorum::QuorumSpec;
use quorum_stats::DiscreteDist;

/// Exact distribution of the total up-votes *excluding* a designated site,
/// by subset-sum DP: `O(n · T)`.
fn up_vote_distribution_excluding(
    votes: &[u64],
    reliabilities: &[f64],
    excluded: usize,
) -> Vec<f64> {
    let total: u64 = votes.iter().sum();
    let mut dist = vec![0.0; (total + 1) as usize];
    dist[0] = 1.0;
    let mut reachable: u64 = 0;
    for (i, (&v, &p)) in votes.iter().zip(reliabilities).enumerate() {
        if i == excluded {
            continue;
        }
        if v == 0 {
            continue; // zero-vote sites don't shift the sum
        }
        reachable += v;
        // Iterate downward so each site is counted once.
        let lo = v as usize;
        for s in (lo..=reachable as usize).rev() {
            dist[s] = dist[s] * (1.0 - p) + dist[s - lo] * p;
        }
        for s in 0..lo.min(dist.len()) {
            dist[s] *= 1.0 - p;
        }
    }
    dist
}

/// Exact distribution of the total up-votes over *all* sites — the SURV
/// analogue (§3): no conditioning on a submitting site, so
/// `P[V ≥ q]` is the probability that *somebody* can assemble quorum `q`.
pub fn up_vote_distribution(votes: &[u64], reliabilities: &[f64]) -> DiscreteDist {
    assert_eq!(votes.len(), reliabilities.len(), "one reliability per site");
    for &p in reliabilities {
        assert!((0.0..=1.0).contains(&p), "reliabilities must lie in [0,1]");
    }
    // Reuse the exclusion DP with a sentinel index that matches nothing.
    let dist = up_vote_distribution_excluding(votes, reliabilities, usize::MAX);
    DiscreteDist::from_pmf(dist)
}

/// The per-site density `f_i(v)` in the non-partitionable model: with
/// probability `1 − p_i` the site is down (`v = 0`); otherwise `v` is
/// `votes[i]` plus the independent up-votes of the others.
pub fn site_density(votes: &[u64], reliabilities: &[f64], site: usize) -> DiscreteDist {
    assert_eq!(votes.len(), reliabilities.len(), "one reliability per site");
    assert!(site < votes.len(), "site out of range");
    for &p in reliabilities {
        assert!((0.0..=1.0).contains(&p), "reliabilities must lie in [0,1]");
    }
    let total: u64 = votes.iter().sum();
    let others = up_vote_distribution_excluding(votes, reliabilities, site);
    let p_i = reliabilities[site];
    let v_i = votes[site] as usize;
    let mut pmf = vec![0.0; (total + 1) as usize];
    pmf[0] = 1.0 - p_i;
    for (s, &m) in others.iter().enumerate() {
        if s + v_i < pmf.len() {
            pmf[s + v_i] += p_i * m;
        }
    }
    DiscreteDist::from_pmf(pmf)
}

/// Availability model for uniform access in the non-partitionable model.
pub fn model_uniform_access(votes: &[u64], reliabilities: &[f64]) -> AvailabilityModel {
    let n = votes.len();
    let densities: Vec<DiscreteDist> = (0..n)
        .map(|i| site_density(votes, reliabilities, i))
        .collect();
    AvailabilityModel::uniform_access(&densities)
}

/// `A(α, q_r)` for a given vote assignment in the non-partitionable model.
pub fn availability(votes: &[u64], reliabilities: &[f64], alpha: f64, q_r: u64) -> f64 {
    model_uniform_access(votes, reliabilities).availability(alpha, q_r)
}

/// Result of a joint vote/quorum search.
#[derive(Debug, Clone, PartialEq)]
pub struct VoteOptimum {
    /// The winning vote assignment.
    pub votes: Vec<u64>,
    /// The winning quorum pair.
    pub spec: QuorumSpec,
    /// Its availability.
    pub availability: f64,
    /// Vote/quorum combinations evaluated.
    pub evaluations: u64,
}

/// Exhaustive joint vote/quorum optimization (Cheung-Ahamad-Ammar style):
/// tries every vote vector with entries in `0..=max_votes_per_site`
/// (skipping the all-zero vector) and every `q_r` in the domain.
///
/// Exponential (`(max+1)^n` vote vectors) — mirrors \[7\], which reports
/// numbers for networks of up to seven sites.
///
/// # Panics
/// Panics if `n > 8` or `max_votes_per_site == 0` (guard rails on the
/// exponential search).
pub fn optimal_votes_exhaustive(
    reliabilities: &[f64],
    alpha: f64,
    max_votes_per_site: u64,
) -> VoteOptimum {
    let n = reliabilities.len();
    assert!(
        (1..=8).contains(&n),
        "exhaustive vote search capped at 8 sites"
    );
    assert!(max_votes_per_site >= 1);
    let base = max_votes_per_site + 1;
    let combos = base.pow(n as u32);
    let mut best: Option<VoteOptimum> = None;
    let mut evals = 0u64;
    for code in 1..combos {
        let mut c = code;
        let mut votes = vec![0u64; n];
        for site_votes in votes.iter_mut() {
            *site_votes = c % base;
            c /= base;
        }
        let total: u64 = votes.iter().sum();
        if total == 0 {
            continue;
        }
        let model = model_uniform_access(&votes, reliabilities);
        let hi = if total == 1 { 1 } else { total / 2 };
        for q_r in 1..=hi {
            evals += 1;
            let a = model.availability(alpha, q_r);
            if best.as_ref().is_none_or(|b| a > b.availability + 1e-15) {
                best = Some(VoteOptimum {
                    votes: votes.clone(),
                    spec: QuorumSpec::from_read_quorum(q_r, total).expect("domain-checked"),
                    availability: a,
                    evaluations: 0,
                });
            }
        }
    }
    let mut out = best.expect("at least one assignment evaluated");
    out.evaluations = evals;
    out
}

/// Multi-start hill-climbing vote optimization for larger `n`.
///
/// Starts from the uniform assignment *and* from each single-site
/// dictator (the primary-copy shape, which plain hill climbing from
/// uniform cannot reach through monotone single-vote moves), then
/// repeatedly applies the best ±1-vote single-site perturbation
/// (re-optimizing `q_r` each time) until no move improves.
pub fn optimal_votes_hill_climb(
    reliabilities: &[f64],
    alpha: f64,
    max_votes_per_site: u64,
) -> VoteOptimum {
    let n = reliabilities.len();
    assert!(n >= 1);
    let mut evals = 0u64;
    let eval_best_q = |votes: &[u64], evals: &mut u64| -> (u64, f64) {
        let total: u64 = votes.iter().sum();
        let model = model_uniform_access(votes, reliabilities);
        let hi = if total == 1 { 1 } else { total / 2 };
        let mut best = (1u64, f64::MIN);
        for q_r in 1..=hi {
            *evals += 1;
            let a = model.availability(alpha, q_r);
            if a > best.1 {
                best = (q_r, a);
            }
        }
        best
    };

    let mut starts: Vec<Vec<u64>> = vec![vec![1u64; n]];
    for site in 0..n {
        let mut dictator = vec![0u64; n];
        dictator[site] = 1;
        starts.push(dictator);
    }

    let mut overall: Option<(Vec<u64>, u64, f64)> = None;
    for start in starts {
        let mut votes = start;
        let (mut best_q, mut best_a) = eval_best_q(&votes, &mut evals);
        loop {
            let mut improved = false;
            for site in 0..n {
                for delta in [-1i64, 1] {
                    let nv = votes[site] as i64 + delta;
                    if nv < 0 || nv > max_votes_per_site as i64 {
                        continue;
                    }
                    let mut cand = votes.clone();
                    cand[site] = nv as u64;
                    if cand.iter().sum::<u64>() == 0 {
                        continue;
                    }
                    let (q, a) = eval_best_q(&cand, &mut evals);
                    if a > best_a + 1e-12 {
                        votes = cand;
                        best_q = q;
                        best_a = a;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        if overall.as_ref().is_none_or(|(_, _, a)| best_a > *a) {
            overall = Some((votes, best_q, best_a));
        }
    }
    let (votes, best_q, best_a) = overall.expect("at least one start");
    let total: u64 = votes.iter().sum();
    VoteOptimum {
        spec: QuorumSpec::from_read_quorum(best_q, total).expect("domain-checked"),
        votes,
        availability: best_a,
        evaluations: evals,
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn density_matches_brute_force_enumeration() {
        // 4 sites, weighted votes, mixed reliabilities: enumerate all 2^4
        // up/down states and compare against the DP.
        let votes = [3u64, 1, 2, 1];
        let rel = [0.9, 0.8, 0.7, 0.95];
        for site in 0..4 {
            let d = site_density(&votes, &rel, site);
            let total: u64 = votes.iter().sum();
            let mut expect = vec![0.0; (total + 1) as usize];
            for mask in 0u32..16 {
                let mut p = 1.0;
                let mut v = 0u64;
                for i in 0..4 {
                    if mask >> i & 1 == 1 {
                        p *= rel[i];
                        v += votes[i];
                    } else {
                        p *= 1.0 - rel[i];
                    }
                }
                if mask >> site & 1 == 1 {
                    expect[v as usize] += p;
                } else {
                    expect[0] += p;
                }
            }
            for v in 0..=total as usize {
                assert_close(d.pmf(v), expect[v], 1e-12);
            }
        }
    }

    #[test]
    fn density_is_normalized() {
        let votes = [2u64, 2, 1, 1, 3];
        let rel = [0.96; 5];
        for site in 0..5 {
            let d = site_density(&votes, &rel, site);
            assert_close(d.total_mass(), 1.0, 1e-9);
        }
    }

    #[test]
    fn matches_fully_connected_closed_form_with_perfect_links() {
        // r = 1 in the FC closed form == the non-partitionable model.
        use crate::analytic::fully_connected_density;
        let n = 9;
        let p = 0.9;
        let np = site_density(&vec![1; n], &vec![p; n], 0);
        let fc = fully_connected_density(n, p, 1.0);
        assert!(np.max_abs_diff(&fc) < 1e-9);
    }

    #[test]
    fn zero_vote_sites_do_not_affect_totals() {
        let d1 = site_density(&[1, 1, 1], &[0.9, 0.9, 0.9], 0);
        let d2 = site_density(&[1, 1, 1, 0], &[0.9, 0.9, 0.9, 0.5], 0);
        for v in 0..=3 {
            assert_close(d1.pmf(v), d2.pmf(v), 1e-12);
        }
    }

    #[test]
    fn up_vote_distribution_is_binomial_for_uniform() {
        // Uniform votes and reliabilities: total up-votes ~ Binomial(n,p).
        let (n, p) = (6usize, 0.7);
        let d = up_vote_distribution(&vec![1; n], &vec![p; n]);
        let choose = |n: usize, k: usize| -> f64 {
            let mut acc = 1f64;
            for i in 0..k {
                acc = acc * (n - i) as f64 / (i + 1) as f64;
            }
            acc
        };
        for v in 0..=n {
            let binom = choose(n, v) * p.powi(v as i32) * (1.0 - p).powi((n - v) as i32);
            assert_close(d.pmf(v), binom, 1e-12);
        }
    }

    #[test]
    fn surv_dominates_acc_in_nonpartition_model() {
        let votes = [1u64; 7];
        let rel = [0.9; 7];
        let surv = up_vote_distribution(&votes, &rel);
        let acc = site_density(&votes, &rel, 0);
        for q in 1..=7usize {
            assert!(
                surv.tail_sum(q) >= acc.tail_sum(q) - 1e-12,
                "q = {q}: SURV tail {} < ACC tail {}",
                surv.tail_sum(q),
                acc.tail_sum(q)
            );
        }
    }

    #[test]
    fn availability_all_reads_is_site_reliability() {
        // α = 1, q_r = 1: a read succeeds iff the submitting site is up.
        let a = availability(&[1; 7], &[0.85; 7], 1.0, 1);
        assert_close(a, 0.85, 1e-12);
    }

    #[test]
    fn exhaustive_prefers_uniform_votes_for_symmetric_sites() {
        // Symmetric reliabilities: some uniform-equivalent assignment is
        // optimal (Ahamad-Ammar). Check the optimum's availability equals
        // the uniform assignment's best.
        let rel = [0.9; 4];
        let opt = optimal_votes_exhaustive(&rel, 0.5, 2);
        let uniform_model = model_uniform_access(&[1; 4], &rel);
        let best_uniform = (1..=2u64)
            .map(|q| uniform_model.availability(0.5, q))
            .fold(f64::MIN, f64::max);
        assert!(
            opt.availability >= best_uniform - 1e-12,
            "optimum {} below uniform {}",
            opt.availability,
            best_uniform
        );
        // And not meaningfully above: symmetric sites can't be beaten by
        // asymmetric votes in this model at α = .5? They CAN (e.g. a
        // 3-vote dictator when p is low) — so only assert ≥ and report.
        assert!(opt.availability >= best_uniform - 1e-12);
    }

    #[test]
    fn exhaustive_gives_reliable_site_more_votes() {
        // One highly-reliable site among flaky ones at α = 0 (writes):
        // the optimizer should lean on the reliable site.
        let rel = [0.99, 0.5, 0.5, 0.5];
        let opt = optimal_votes_exhaustive(&rel, 0.0, 3);
        assert!(
            opt.votes[0] > *opt.votes[1..].iter().max().unwrap(),
            "reliable site should dominate: {:?}",
            opt.votes
        );
    }

    #[test]
    fn hill_climb_reaches_exhaustive_quality_small_n() {
        let rel = [0.95, 0.6, 0.8, 0.7];
        for alpha in [0.0, 0.5, 1.0] {
            let ex = optimal_votes_exhaustive(&rel, alpha, 2);
            let hc = optimal_votes_hill_climb(&rel, alpha, 2);
            assert!(
                hc.availability >= ex.availability - 0.01,
                "α={alpha}: hill-climb {} far below exhaustive {}",
                hc.availability,
                ex.availability
            );
            assert!(hc.evaluations <= ex.evaluations);
        }
    }

    #[test]
    fn hill_climb_scales_beyond_exhaustive_limit() {
        // ACC is capped by the submitting site's reliability (0.9), so a
        // near-0.9 result is essentially optimal.
        let rel = vec![0.9; 15];
        let opt = optimal_votes_hill_climb(&rel, 0.5, 3);
        assert!(opt.availability > 0.85, "availability {}", opt.availability);
        assert_eq!(opt.votes.len(), 15);
    }

    #[test]
    fn ahamad_ammar_extreme_point_property() {
        // [1]'s theorem (cited in §1): the optimum of A(α, q_r) over q_r
        // lies at an extreme of the range. In the non-partitionable model
        // with uniform votes, verify for several α and reliabilities.
        for &p in &[0.6, 0.9, 0.99] {
            let model = model_uniform_access(&[1; 9], &[p; 9]);
            for &alpha in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                let vals: Vec<f64> = (1..=4u64).map(|q| model.availability(alpha, q)).collect();
                let max = vals.iter().cloned().fold(f64::MIN, f64::max);
                let at_ends = vals[0].max(vals[3]);
                assert!(
                    at_ends >= max - 1e-12,
                    "p={p} α={alpha}: interior max {vals:?}"
                );
            }
        }
    }

    #[test]
    fn majority_end_optimal_for_balanced_ratio_high_reliability() {
        // [1]'s conclusion (§5.5): majority-style quorums are optimal for
        // balanced ratios on reliable, non-partitionable systems. In the
        // paper's parameterization the majority end of the domain is
        // q_r = ⌊T/2⌋ with q_w = T − q_r + 1.
        let model = model_uniform_access(&[1; 9], &[0.95; 9]);
        let opt =
            crate::optimal::optimal_quorum(&model, 0.5, crate::optimal::SearchStrategy::Exhaustive);
        assert_eq!(opt.spec.q_r(), 4, "majority end of the domain");
    }

    #[test]
    fn odd_t_true_majority_marginally_beats_tight_pairing() {
        // Nuance of the paper's §2.1 restriction: for odd T the domain
        // pairs q_r = ⌊T/2⌋ with q_w = ⌈T/2⌉ + 1, excluding the true
        // majority (⌈T/2⌉, ⌈T/2⌉) — which at balanced ratios is very
        // slightly better (pmf is increasing near the top, so trading
        // R(4) + W(6) for 2·R(5) gains pmf(5) − pmf(4) > 0... per side).
        let model = model_uniform_access(&[1; 9], &[0.95; 9]);
        let domain_best =
            crate::optimal::optimal_quorum(&model, 0.5, crate::optimal::SearchStrategy::Exhaustive)
                .availability;
        let true_majority = 0.5 * model.read_availability(5) + 0.5 * model.write_availability(5);
        assert!(true_majority > domain_best, "nuance vanished?");
        assert!(true_majority - domain_best < 1e-3, "gap should be tiny");
    }

    #[test]
    #[should_panic(expected = "capped at 8")]
    fn exhaustive_guard_rail() {
        optimal_votes_exhaustive(&[0.9; 9], 0.5, 1);
    }
}
