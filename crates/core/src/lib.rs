//! The Johnson–Raab optimal quorum assignment machinery.
//!
//! This crate implements the primary contribution of *Finding Optimal
//! Quorum Assignments for Distributed Databases* (Johnson & Raab, Dartmouth
//! PCS-TR90-158 / ICPP 1991) together with the protocol substrate it rests
//! on:
//!
//! * [`votes`] / [`quorum`] — Gifford's weighted-voting model: vote
//!   assignments, read/write quorums `q_r`, `q_w`, and the two consistency
//!   conditions `q_r + q_w > T` and `q_w > T/2` (§2.1).
//! * [`protocol`] — the quorum consensus protocol and its named special
//!   cases: majority consensus, read-one/write-all, primary copy.
//! * [`coterie`] / [`bicoterie`] — the more general (read/write) coterie
//!   formalism of Garcia-Molina & Barbara used by the related work the
//!   paper positions against, including a coterie-driven
//!   [`protocol::ConsistencyProtocol`].
//! * [`reassign`] — the dynamic quorum reassignment (QR) protocol of §2.2:
//!   version-numbered assignments installable only in a component holding a
//!   write quorum under the *old* assignment.
//! * [`availability`] / [`optimal`] — the Figure-1 algorithm: build
//!   `r(v)`, `w(v)` from per-site densities `f_i(v)`, evaluate
//!   `A(α, q_r)`, and maximize over `q_r` (exhaustively, or with the
//!   endpoint-aware golden-section search §4.1 suggests), including the
//!   §5.4 write-floor and write-weight variants.
//! * [`analytic`] — closed-form `f_i(v)` for ring, fully-connected
//!   (Gilbert's `Rel(m, r)` recursion) and single-bus networks (§4.2).
//! * [`estimator`] — the on-line `f_i` approximation that sidesteps the
//!   #P-completeness of exact computation (§4.2).
//! * [`metrics`] — the ACC and SURV availability metrics (§3).
//! * [`nonpartition`] — the Ahamad–Ammar non-partitionable model \[1\] and
//!   Cheung–Ahamad–Ammar joint vote/quorum optimization \[7\] the paper
//!   positions against (§1), with exact DP availability.
//! * [`dynamic_voting`] — Jajodia–Mutchler dynamic voting \[12, 13\], the
//!   electorate-shrinking dynamic protocol family the paper contrasts its
//!   quorum-reassignment approach with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod availability;
pub mod bicoterie;
pub mod coterie;
pub mod dynamic_voting;
pub mod estimator;
pub mod metrics;
pub mod nonpartition;
pub mod optimal;
pub mod protocol;
pub mod quorum;
pub mod reassign;
pub mod votes;

/// One-line import for the common workflow: build a model, optimize,
/// run a protocol.
///
/// ```
/// use quorum_core::prelude::*;
///
/// let f = analytic::ring_density(9, 0.95, 0.95);
/// let model = AvailabilityModel::from_mixtures(&f, &f);
/// let opt = optimal_quorum(&model, 0.8, SearchStrategy::EndpointGolden);
/// assert!(opt.spec.q_r() >= 1 && opt.spec.q_w() <= 9);
/// ```
pub mod prelude {
    pub use crate::analytic;
    pub use crate::availability::AvailabilityModel;
    pub use crate::metrics::AvailabilityMetric;
    pub use crate::optimal::{optimal_quorum, optimal_with_write_floor, SearchStrategy};
    pub use crate::protocol::{Access, ConsistencyProtocol, Decision, QuorumConsensus};
    pub use crate::quorum::{QuorumError, QuorumSpec};
    pub use crate::reassign::QrProtocol;
    pub use crate::votes::VoteAssignment;
}

pub use availability::AvailabilityModel;
pub use bicoterie::{CoterieProtocol, ReadWriteCoterie};
pub use coterie::Coterie;
pub use dynamic_voting::DynamicVoting;
pub use estimator::SiteEstimators;
pub use metrics::AvailabilityMetric;
pub use optimal::{OptimalAssignment, SearchStrategy};
pub use protocol::{Access, QuorumConsensus};
pub use quorum::{QuorumError, QuorumSpec};
pub use reassign::QrProtocol;
pub use votes::VoteAssignment;
