//! Dynamic voting (Jajodia & Mutchler [12, 13]).
//!
//! The dynamic protocols the paper repeatedly cites adapt the *electorate*
//! rather than the quorum: an access needs a majority of the sites that
//! participated in the **most recent update**, not of all sites. After a
//! partition shrinks the system to 3 of 5 sites, the next update is owned
//! by those 3 — and a later majority of *them* (2 sites) suffices, where
//! static majority would still demand 3 of the original 5.
//!
//! Per-copy state (following the ToDS '90 presentation):
//!
//! * `vn` — version number of the most recent update this copy knows;
//! * `sc` — *update sites cardinality*: how many sites participated in
//!   that update.
//!
//! A component `C` may access the item iff, with `M = max vn in C`,
//! `I = {i ∈ C : vn_i = M}` and `N = sc` of any member of `I`:
//! `|I| > N/2`. An update then sets `vn = M+1`, `sc = |C|` on every member
//! (all reachable copies are written). Two disjoint components cannot both
//! hold strict majorities of the same update set, and the member with
//! `vn = M` holds the current value, so one-copy serializability follows —
//! the property tests and the DES checker verify both.
//!
//! Availability trade-off (paper §3): dynamic protocols keep a small
//! "distinguished" lineage alive through repeated shrinking — excellent
//! for SURV — but the lineage can contract onto few sites, so an
//! *arbitrary* submitter (ACC) is often outside it. The `dynamic_voting`
//! experiment measures exactly that.

use crate::protocol::{Access, ConsistencyProtocol, Decision};
use crate::quorum::QuorumSpec;

/// The Jajodia–Mutchler dynamic voting protocol over `n` single-vote
/// copies.
#[derive(Debug, Clone)]
pub struct DynamicVoting {
    vn: Vec<u64>,
    sc: Vec<u32>,
    updates: u64,
}

impl DynamicVoting {
    /// All copies start at version 1 with the full site set as electorate.
    pub fn new(n_sites: usize) -> Self {
        assert!(n_sites > 0, "need at least one site");
        Self {
            vn: vec![1; n_sites],
            sc: vec![n_sites as u32; n_sites],
            updates: 0,
        }
    }

    /// Number of granted updates so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// `(vn, sc)` of one site.
    pub fn site(&self, site: usize) -> (u64, u32) {
        (self.vn[site], self.sc[site])
    }

    /// Evaluates the majority-of-last-electorate condition for a
    /// component, returning `(granted, max_vn)`.
    fn evaluate(&self, members: &[usize]) -> (bool, u64) {
        let Some(max_vn) = members.iter().map(|&s| self.vn[s]).max() else {
            return (false, 0);
        };
        let holders: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&s| self.vn[s] == max_vn)
            .collect();
        let electorate = self.sc[holders[0]];
        // Strict majority of the last update's participants.
        let granted = 2 * holders.len() as u32 > electorate;
        (granted, max_vn)
    }

    /// Can this component currently access the item?
    pub fn can_access(&self, members: &[usize]) -> bool {
        self.evaluate(members).0
    }
}

impl ConsistencyProtocol for DynamicVoting {
    fn can_grant(&self, _kind: Access, members: &[usize], _votes: u64) -> bool {
        self.evaluate(members).0
    }

    fn decide(&mut self, kind: Access, members: &[usize], _votes: u64) -> Decision {
        let (granted, max_vn) = self.evaluate(members);
        if !granted {
            return Decision::Denied;
        }
        if matches!(kind, Access::Write) {
            // The update installs on every reachable copy and the
            // electorate becomes exactly this component.
            let new_vn = max_vn + 1;
            for &s in members {
                self.vn[s] = new_vn;
                self.sc[s] = members.len() as u32;
            }
            self.updates += 1;
        }
        Decision::Granted
    }

    fn effective_spec(&self, _members: &[usize]) -> QuorumSpec {
        // No fixed vote threshold exists; report majority over n for
        // observability.
        QuorumSpec::majority(self.vn.len() as u64)
    }

    fn total_votes(&self) -> u64 {
        self.vn.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(r: std::ops::Range<usize>) -> Vec<usize> {
        r.collect()
    }

    #[test]
    fn initial_majority_of_all_sites() {
        let mut dv = DynamicVoting::new(5);
        assert!(dv.can_access(&ids(0..3)), "3 of 5 is a majority");
        assert!(!dv.can_access(&ids(0..2)), "2 of 5 is not");
        assert_eq!(dv.decide(Access::Read, &ids(0..3), 3), Decision::Granted);
    }

    #[test]
    fn electorate_shrinks_with_updates() {
        let mut dv = DynamicVoting::new(5);
        // Update in {0,1,2}: electorate becomes those 3.
        assert_eq!(dv.decide(Access::Write, &ids(0..3), 3), Decision::Granted);
        assert_eq!(dv.site(0), (2, 3));
        // Now 2 of the NEW electorate suffices — static majority would
        // still demand 3 of 5.
        assert!(dv.can_access(&[0, 1]));
        // …while the old minority {3,4} (vn = 1, sc = 5) cannot act.
        assert!(!dv.can_access(&[3, 4]));
    }

    #[test]
    fn lineage_contracts_but_ties_block_it() {
        let mut dv = DynamicVoting::new(5);
        dv.decide(Access::Write, &ids(0..3), 3); // electorate {0,1,2}
        assert_eq!(dv.decide(Access::Write, &ids(0..2), 2), Decision::Granted);
        // Electorate is now {0,1}. A single site holds exactly half —
        // not a STRICT majority, so the lineage cannot contract to one
        // site (the tie weakness Jajodia–Mutchler's distinguished-site
        // extension addresses).
        assert_eq!(dv.site(0), (3, 2));
        assert!(!dv.can_access(&[0]));
        assert!(dv.can_access(&[0, 1]), "both electorate members can act");
        assert!(
            !dv.can_access(&ids(2..5)),
            "the three outsiders together cannot act"
        );
    }

    #[test]
    fn stale_branch_rejoining_defers_to_lineage() {
        let mut dv = DynamicVoting::new(5);
        dv.decide(Access::Write, &ids(0..3), 3);
        // {3,4} rejoin with {2}: component {2,3,4}; max vn = 2 at site 2,
        // electorate 3, holders = {2}: 1 of 3 is not a majority → denied.
        assert!(!dv.can_access(&[2, 3, 4]));
        // With two lineage members present it works: holders {1,2} of 3.
        assert!(dv.can_access(&[1, 2, 3]));
    }

    #[test]
    fn reads_do_not_shrink_the_electorate() {
        let mut dv = DynamicVoting::new(5);
        assert_eq!(dv.decide(Access::Read, &ids(0..3), 3), Decision::Granted);
        assert_eq!(dv.site(0), (1, 5), "read must not install a new epoch");
        assert_eq!(dv.updates(), 0);
    }

    #[test]
    fn no_two_disjoint_components_can_both_write() {
        // Exhaustive: for every reachable (vn, sc) state after a few
        // updates, no two disjoint member sets may both satisfy the
        // condition. Spot-check the adversarial split after a shrink.
        let mut dv = DynamicVoting::new(6);
        dv.decide(Access::Write, &ids(0..4), 4); // electorate {0,1,2,3}
                                                 // Splits of the electorate: {0,1} vs {2,3}: each holds 2 of 4 —
                                                 // NOT a strict majority → neither can act. (This is dynamic
                                                 // voting's known tie weakness; Jajodia-Mutchler break ties by
                                                 // site id in an extension.)
        assert!(!dv.can_access(&[0, 1]));
        assert!(!dv.can_access(&[2, 3]));
        // {0,1,2} vs {3}: only the first acts.
        assert!(dv.can_access(&[0, 1, 2]));
        assert!(!dv.can_access(&[3]));
    }

    #[test]
    fn randomized_disjoint_write_exclusion() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 8;
        let mut dv = DynamicVoting::new(n);
        for _ in 0..500 {
            // Random disjoint pair of groups.
            let mut a = Vec::new();
            let mut b = Vec::new();
            for s in 0..n {
                match rng.random_range(0..3) {
                    0 => a.push(s),
                    1 => b.push(s),
                    _ => {}
                }
            }
            if !a.is_empty() && !b.is_empty() {
                assert!(
                    !(dv.can_access(&a) && dv.can_access(&b)),
                    "disjoint {a:?} and {b:?} both satisfied the condition"
                );
            }
            // Random update to evolve the state.
            let group = if rng.random_range(0..2) == 0 { &a } else { &b };
            if !group.is_empty() {
                let votes = group.len() as u64;
                let _ = dv.decide(Access::Write, group, votes);
            }
        }
    }
}
