//! Read/write coterie pairs — the set-based generalization of quorum
//! consensus.
//!
//! Gifford's protocol (§2.1) defines quorums by vote thresholds; coteries
//! \[8\] generalize to arbitrary set families. For *read/write* workloads the
//! natural object is a pair of families (a "bicoterie"):
//!
//! * every read group intersects every write group (condition 1's
//!   set-theoretic form — a read always sees the latest write);
//! * write groups pairwise intersect (condition 2 — no two concurrent
//!   writes);
//! * each family is an antichain (minimality; supersets grant the same
//!   accesses and are redundant).
//!
//! Every `(votes, q_r, q_w)` triple induces a bicoterie
//! ([`ReadWriteCoterie::from_quorums`]), but not every bicoterie is
//! vote-realizable — so this protocol strictly contains quorum consensus,
//! and lets the test-suite demonstrate the Garcia-Molina–Barbara fact that
//! vote-derived families can be dominated by better set families.

use crate::protocol::{Access, ConsistencyProtocol, Decision};
use crate::quorum::QuorumSpec;
use crate::votes::VoteAssignment;
use std::fmt;

/// Maximum universe size (groups are `u32` bitmasks).
const MAX_SITES: usize = 20;

/// Why a read/write coterie pair is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BicoterieError {
    /// A read group and a write group are disjoint.
    ReadWriteDisjoint(Vec<usize>, Vec<usize>),
    /// Two write groups are disjoint.
    WriteWriteDisjoint(Vec<usize>, Vec<usize>),
    /// A family contains comparable groups (not an antichain).
    NonMinimal(Vec<usize>, Vec<usize>),
    /// Empty group or empty family.
    Empty,
    /// Site index out of range.
    OutOfRange(usize),
}

impl fmt::Display for BicoterieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BicoterieError::ReadWriteDisjoint(a, b) => {
                write!(f, "read group {a:?} misses write group {b:?}")
            }
            BicoterieError::WriteWriteDisjoint(a, b) => {
                write!(f, "write groups {a:?} and {b:?} are disjoint")
            }
            BicoterieError::NonMinimal(a, b) => write!(f, "group {a:?} contains {b:?}"),
            BicoterieError::Empty => write!(f, "families and groups must be non-empty"),
            BicoterieError::OutOfRange(s) => write!(f, "site {s} out of range"),
        }
    }
}

impl std::error::Error for BicoterieError {}

fn mask_to_vec(mask: u32) -> Vec<usize> {
    (0..32).filter(|b| mask >> b & 1 == 1).collect()
}

fn to_masks(n: usize, groups: &[Vec<usize>]) -> Result<Vec<u32>, BicoterieError> {
    if groups.is_empty() {
        return Err(BicoterieError::Empty);
    }
    let mut masks = Vec::with_capacity(groups.len());
    for g in groups {
        if g.is_empty() {
            return Err(BicoterieError::Empty);
        }
        let mut m = 0u32;
        for &s in g {
            if s >= n {
                return Err(BicoterieError::OutOfRange(s));
            }
            m |= 1 << s;
        }
        masks.push(m);
    }
    masks.sort_unstable();
    masks.dedup();
    // Antichain check.
    for i in 0..masks.len() {
        for j in i + 1..masks.len() {
            if masks[i] & masks[j] == masks[i] {
                return Err(BicoterieError::NonMinimal(
                    mask_to_vec(masks[j]),
                    mask_to_vec(masks[i]),
                ));
            }
            if masks[i] & masks[j] == masks[j] {
                return Err(BicoterieError::NonMinimal(
                    mask_to_vec(masks[i]),
                    mask_to_vec(masks[j]),
                ));
            }
        }
    }
    Ok(masks)
}

/// A validated read/write coterie pair over sites `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadWriteCoterie {
    n: usize,
    read_groups: Vec<u32>,
    write_groups: Vec<u32>,
}

impl ReadWriteCoterie {
    /// Validates an explicit pair of families.
    pub fn new(
        n: usize,
        read_groups: &[Vec<usize>],
        write_groups: &[Vec<usize>],
    ) -> Result<Self, BicoterieError> {
        assert!(n > 0 && n <= MAX_SITES, "1..={MAX_SITES} sites supported");
        let reads = to_masks(n, read_groups)?;
        let writes = to_masks(n, write_groups)?;
        for &w1 in &writes {
            for &w2 in &writes {
                if w1 < w2 && w1 & w2 == 0 {
                    return Err(BicoterieError::WriteWriteDisjoint(
                        mask_to_vec(w1),
                        mask_to_vec(w2),
                    ));
                }
            }
            for &r in &reads {
                if r & w1 == 0 {
                    return Err(BicoterieError::ReadWriteDisjoint(
                        mask_to_vec(r),
                        mask_to_vec(w1),
                    ));
                }
            }
        }
        Ok(Self {
            n,
            read_groups: reads,
            write_groups: writes,
        })
    }

    /// The bicoterie induced by a vote assignment and quorum pair: the
    /// minimal site-sets reaching `q_r` (reads) and `q_w` (writes).
    ///
    /// # Panics
    /// Panics if `n > 20` (exponential enumeration) or the spec's total
    /// differs from the assignment's.
    pub fn from_quorums(votes: &VoteAssignment, spec: QuorumSpec) -> Self {
        let n = votes.num_sites();
        assert!(n <= MAX_SITES, "enumeration capped at {MAX_SITES} sites");
        assert_eq!(votes.total(), spec.total(), "vote/spec total mismatch");
        Self::new(
            n,
            &votes.minimal_reaching(spec.q_r()),
            &votes.minimal_reaching(spec.q_w()),
        )
        .expect("vote-derived bicoterie is valid by conditions 1-2")
    }

    /// Universe size.
    pub fn num_sites(&self) -> usize {
        self.n
    }

    /// Read groups as site lists.
    pub fn read_groups(&self) -> Vec<Vec<usize>> {
        self.read_groups.iter().map(|&m| mask_to_vec(m)).collect()
    }

    /// Write groups as site lists.
    pub fn write_groups(&self) -> Vec<Vec<usize>> {
        self.write_groups.iter().map(|&m| mask_to_vec(m)).collect()
    }

    fn member_mask(&self, members: &[usize]) -> u32 {
        let mut mask = 0u32;
        for &s in members {
            assert!(s < self.n, "site {s} out of range");
            mask |= 1 << s;
        }
        mask
    }

    /// Does the member set contain a read group?
    // clippy::manual_contains misfires: the closure variable appears on
    // both sides of the comparison, so `contains` cannot apply.
    #[allow(clippy::manual_contains)]
    pub fn read_possible(&self, members: &[usize]) -> bool {
        let mask = self.member_mask(members);
        self.read_groups.iter().any(|&g| g & mask == g)
    }

    /// Does the member set contain a write group?
    #[allow(clippy::manual_contains)] // see read_possible
    pub fn write_possible(&self, members: &[usize]) -> bool {
        let mask = self.member_mask(members);
        self.write_groups.iter().any(|&g| g & mask == g)
    }

    /// `self` read-dominates `other` when every member set granting a read
    /// under `other` also grants one under `self` (and similarly for the
    /// supplied family accessor). Exponential check for small `n`.
    #[allow(clippy::manual_contains)] // see read_possible
    pub fn grants_superset_of(&self, other: &ReadWriteCoterie) -> bool {
        assert_eq!(self.n, other.n);
        for mask in 1u32..(1 << self.n) {
            let other_read = other.read_groups.iter().any(|&g| g & mask == g);
            let self_read = self.read_groups.iter().any(|&g| g & mask == g);
            if other_read && !self_read {
                return false;
            }
            let other_write = other.write_groups.iter().any(|&g| g & mask == g);
            let self_write = self.write_groups.iter().any(|&g| g & mask == g);
            if other_write && !self_write {
                return false;
            }
        }
        true
    }
}

impl ReadWriteCoterie {
    /// Exact availability in the non-partitionable model (site `i` up with
    /// probability `p[i]`, all up sites mutually connected): enumerates the
    /// `2^n` up-sets. `A(α) = α·P[read possible] + (1−α)·P[write possible]`
    /// — the ACC convention additionally requires the submitting site up,
    /// which for uniform submission multiplies each term by the fraction of
    /// up-set members; here we report the SURV-style set probability, which
    /// is what the coterie-comparison theorems are stated over.
    ///
    /// # Panics
    /// Panics if `p.len() != n` or any probability is invalid.
    #[allow(clippy::manual_contains)] // closure var on both comparison sides
    pub fn nonpartition_availability(&self, p: &[f64], alpha: f64) -> f64 {
        assert_eq!(p.len(), self.n, "one reliability per site");
        assert!((0.0..=1.0).contains(&alpha), "α must lie in [0,1]");
        for &x in p {
            assert!((0.0..=1.0).contains(&x), "reliabilities must lie in [0,1]");
        }
        let mut read_prob = 0.0;
        let mut write_prob = 0.0;
        for mask in 0u32..(1 << self.n) {
            let mut prob = 1.0;
            for (i, &pi) in p.iter().enumerate() {
                prob *= if mask >> i & 1 == 1 { pi } else { 1.0 - pi };
            }
            if self.read_groups.iter().any(|&g| g & mask == g) {
                read_prob += prob;
            }
            if self.write_groups.iter().any(|&g| g & mask == g) {
                write_prob += prob;
            }
        }
        alpha * read_prob + (1.0 - alpha) * write_prob
    }
}

/// [`ConsistencyProtocol`] driven by an explicit bicoterie instead of vote
/// thresholds.
#[derive(Debug, Clone)]
pub struct CoterieProtocol {
    coterie: ReadWriteCoterie,
}

impl CoterieProtocol {
    /// Wraps a validated bicoterie.
    pub fn new(coterie: ReadWriteCoterie) -> Self {
        Self { coterie }
    }

    /// The underlying bicoterie.
    pub fn coterie(&self) -> &ReadWriteCoterie {
        &self.coterie
    }
}

impl ConsistencyProtocol for CoterieProtocol {
    fn can_grant(&self, kind: Access, members: &[usize], _votes: u64) -> bool {
        match kind {
            Access::Read => self.coterie.read_possible(members),
            Access::Write => self.coterie.write_possible(members),
        }
    }

    fn decide(&mut self, kind: Access, members: &[usize], _votes: u64) -> Decision {
        let granted = match kind {
            Access::Read => self.coterie.read_possible(members),
            Access::Write => self.coterie.write_possible(members),
        };
        if granted {
            Decision::Granted
        } else {
            Decision::Denied
        }
    }

    fn effective_spec(&self, _members: &[usize]) -> QuorumSpec {
        // Coteries have no canonical vote threshold; report the loosest
        // consistent pair for observability (majority over n "votes").
        QuorumSpec::majority(self.coterie.n as u64)
    }

    fn total_votes(&self) -> u64 {
        self.coterie.n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_bicoterie_roundtrip() {
        let votes = VoteAssignment::uniform(5);
        let spec = QuorumSpec::majority(5);
        let bc = ReadWriteCoterie::from_quorums(&votes, spec);
        // Majority(5) = (3,3): both families are all 3-subsets.
        assert_eq!(bc.read_groups().len(), 10);
        assert_eq!(bc.write_groups().len(), 10);
        assert!(bc.read_possible(&[0, 2, 4]));
        assert!(!bc.read_possible(&[0, 2]));
    }

    #[test]
    fn rowa_bicoterie() {
        let votes = VoteAssignment::uniform(4);
        let spec = QuorumSpec::read_one_write_all(4);
        let bc = ReadWriteCoterie::from_quorums(&votes, spec);
        assert_eq!(bc.read_groups(), vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(bc.write_groups(), vec![vec![0, 1, 2, 3]]);
        assert!(bc.read_possible(&[2]));
        assert!(!bc.write_possible(&[0, 1, 2]));
        assert!(bc.write_possible(&[0, 1, 2, 3]));
    }

    #[test]
    fn decisions_match_vote_thresholds_on_all_subsets() {
        // The vote-derived bicoterie must agree with threshold counting on
        // every possible component membership.
        let votes = VoteAssignment::weighted(vec![2, 1, 1, 1]);
        let spec = QuorumSpec::new(2, 4, 5).unwrap();
        let bc = ReadWriteCoterie::from_quorums(&votes, spec);
        let mut proto = CoterieProtocol::new(bc);
        for mask in 0u32..16 {
            let members: Vec<usize> = (0..4).filter(|&s| mask >> s & 1 == 1).collect();
            let vote_sum: u64 = members.iter().map(|&s| votes.votes_of(s)).sum();
            let read_thresh = spec.read_granted(vote_sum);
            let write_thresh = spec.write_granted(vote_sum);
            assert_eq!(
                proto.decide(Access::Read, &members, vote_sum).is_granted(),
                read_thresh,
                "read mismatch at {members:?}"
            );
            assert_eq!(
                proto.decide(Access::Write, &members, vote_sum).is_granted(),
                write_thresh,
                "write mismatch at {members:?}"
            );
        }
    }

    #[test]
    fn read_write_disjoint_rejected() {
        let e = ReadWriteCoterie::new(4, &[vec![0]], &[vec![1, 2, 3]]).unwrap_err();
        assert!(matches!(e, BicoterieError::ReadWriteDisjoint(..)));
    }

    #[test]
    fn write_write_disjoint_rejected() {
        let e = ReadWriteCoterie::new(
            4,
            &[
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3],
            ],
            &[vec![0, 1], vec![2, 3]],
        )
        .unwrap_err();
        assert!(matches!(e, BicoterieError::WriteWriteDisjoint(..)));
    }

    #[test]
    fn non_minimal_family_rejected() {
        let e = ReadWriteCoterie::new(3, &[vec![0], vec![0, 1]], &[vec![0, 1, 2]]).unwrap_err();
        assert!(matches!(e, BicoterieError::NonMinimal(..)));
    }

    #[test]
    fn non_vote_realizable_bicoterie_accepted() {
        // The classic 3x3 grid quorum on 9 sites is not vote-realizable,
        // but its 4-site cousin works for a demo: reads = rows, writes =
        // row ∪ column shapes. Use a simple hand-built example on 4 sites:
        // reads {01, 23}? They must each intersect all writes. Writes
        // {02, 13}? w-w: {0,2} ∩ {1,3} = ∅ — invalid. Use writes {012,
        // 123}: pairwise ∩ = {12} ok; reads {0,1}? ∩ {123}... {01}∩{123} =
        // {1} ok; {01}∩{012} ok. reads {23}: ∩{012} = {2} ok.
        let bc = ReadWriteCoterie::new(
            4,
            &[vec![0, 1], vec![2, 3]],
            &[vec![0, 1, 2], vec![1, 2, 3]],
        )
        .unwrap();
        assert!(bc.read_possible(&[0, 1]));
        assert!(bc.read_possible(&[2, 3]));
        assert!(!bc.read_possible(&[0, 3]));
        assert!(bc.write_possible(&[1, 2, 3]));
    }

    #[test]
    fn looser_write_quorum_grants_superset() {
        // Same votes (2,1,1), same reads (q_r = 2): write quorum 3 yields
        // write groups {01},{02}; write quorum 4 yields only {012}. The
        // looser family grants writes in strictly more states.
        let votes = VoteAssignment::weighted(vec![2, 1, 1]);
        let loose = ReadWriteCoterie::from_quorums(&votes, QuorumSpec::new(2, 3, 4).unwrap());
        let tight = ReadWriteCoterie::from_quorums(&votes, QuorumSpec::new(2, 4, 4).unwrap());
        assert_eq!(loose.write_groups(), vec![vec![0, 1], vec![0, 2]]);
        assert_eq!(tight.write_groups(), vec![vec![0, 1, 2]]);
        assert!(loose.grants_superset_of(&loose), "reflexive");
        assert!(loose.grants_superset_of(&tight));
        assert!(!tight.grants_superset_of(&loose));
    }

    #[test]
    fn nonpartition_availability_by_hand() {
        // Majority on 3 sites, uniform p: P[some 2-subset up] =
        // 3p²(1−p) + p³ for both reads and writes.
        let votes = VoteAssignment::uniform(3);
        let bc = ReadWriteCoterie::from_quorums(&votes, QuorumSpec::majority(3));
        let p = 0.8;
        let expect = 3.0 * p * p * (1.0 - p) + p * p * p;
        let got = bc.nonpartition_availability(&[p; 3], 0.5);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn dominating_coterie_has_higher_availability_everywhere() {
        // Garcia-Molina & Barbara, quantitatively: a family granting a
        // strict superset of states has availability at least as high for
        // EVERY reliability vector — and strictly higher somewhere.
        let votes = VoteAssignment::weighted(vec![2, 1, 1]);
        let loose = ReadWriteCoterie::from_quorums(&votes, QuorumSpec::new(2, 3, 4).unwrap());
        let tight = ReadWriteCoterie::from_quorums(&votes, QuorumSpec::new(2, 4, 4).unwrap());
        assert!(loose.grants_superset_of(&tight));
        let grid = [0.3, 0.5, 0.7, 0.9, 0.99];
        let mut strictly_better = false;
        for &a in &grid {
            for &b in &grid {
                for &c in &grid {
                    let p = [a, b, c];
                    for alpha in [0.0, 0.5, 1.0] {
                        let l = loose.nonpartition_availability(&p, alpha);
                        let t = tight.nonpartition_availability(&p, alpha);
                        assert!(l >= t - 1e-12, "p={p:?} α={alpha}: {l} < {t}");
                        if l > t + 1e-9 {
                            strictly_better = true;
                        }
                    }
                }
            }
        }
        assert!(strictly_better, "domination should be strict somewhere");
    }

    #[test]
    fn protocol_denies_on_empty_members() {
        let votes = VoteAssignment::uniform(3);
        let bc = ReadWriteCoterie::from_quorums(&votes, QuorumSpec::majority(3));
        let mut proto = CoterieProtocol::new(bc);
        assert_eq!(proto.decide(Access::Read, &[], 0), Decision::Denied);
        assert_eq!(proto.decide(Access::Write, &[], 0), Decision::Denied);
    }

    #[test]
    fn simulated_coterie_protocol_is_serializable() {
        // End-to-end: run the coterie protocol in the DES and verify 1SR.
        // (Uses quorum-replica? — no: core cannot depend on replica. This
        // lives in the integration tests; here we spot-check decisions.)
        let votes = VoteAssignment::uniform(5);
        let bc = ReadWriteCoterie::from_quorums(&votes, QuorumSpec::majority(5));
        let mut proto = CoterieProtocol::new(bc);
        assert!(proto.decide(Access::Write, &[0, 1, 2], 3).is_granted());
        assert!(!proto.decide(Access::Write, &[0, 1], 2).is_granted());
    }
}
