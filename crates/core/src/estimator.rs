//! On-line estimation of the per-site densities `f_i(v)` (§4.2).
//!
//! Exact computation of `f_i` is #P-complete in general graphs, but each
//! site can approximate its own density from observation: "periodically,
//! each site `s_i` queries every site with which it can communicate,
//! recording the total number of votes possessed by all the sites in its
//! component" — or simply piggy-backs on the vote collection it already
//! performs for consistency control. [`SiteEstimators`] is that bank of
//! per-site histograms, generic over the forgetting policy
//! ([`quorum_stats::CountingHistogram`] or
//! [`quorum_stats::DecayedHistogram`]).
//!
//! Footnote 4 of the paper: because a *down* site records nothing,
//! densities estimated this way condition on the submitting site being up,
//! yielding `A' = A / p`. The argmax over `q_r` is unchanged, so the
//! optimizer can run directly on these estimates; absolute availabilities
//! are recovered with [`crate::availability::AvailabilityModel::scale_conditional`].
//! Alternatively, [`SiteEstimators::record_down`] lets a simulator (which,
//! unlike a real site, *can* observe its own down state) account the
//! zero-vote mass explicitly, estimating `A` directly.

use crate::availability::AvailabilityModel;
use quorum_stats::{CountingHistogram, DecayedHistogram, DiscreteDist, VoteHistogram};

/// A bank of per-site `f_i` estimators.
///
/// # Examples
/// ```
/// use quorum_core::SiteEstimators;
///
/// let mut est = SiteEstimators::counting(2, 5);
/// est.record(0, 5); // site 0 saw the full component
/// est.record(0, 5);
/// est.record(1, 2); // site 1 was partitioned off
/// est.record(1, 0); // ...and later down
/// let f0 = est.density(0);
/// assert_eq!(f0.pmf(5), 1.0);
/// let model = est.model_uniform();
/// assert!(model.read_availability(2) > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct SiteEstimators<H: VoteHistogram> {
    sites: Vec<H>,
    total_votes: usize,
    recorded: u64,
}

impl SiteEstimators<CountingHistogram> {
    /// Counting (never-forgetting) estimators — fastest convergence in a
    /// stationary system.
    pub fn counting(n_sites: usize, total_votes: usize) -> Self {
        Self {
            sites: (0..n_sites)
                .map(|_| CountingHistogram::new(total_votes))
                .collect(),
            total_votes,
            recorded: 0,
        }
    }

    /// Merges another bank's observations (e.g. from a parallel batch).
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn merge(&mut self, other: &SiteEstimators<CountingHistogram>) {
        assert_eq!(self.sites.len(), other.sites.len(), "site counts differ");
        assert_eq!(self.total_votes, other.total_votes, "vote totals differ");
        for (a, b) in self.sites.iter_mut().zip(&other.sites) {
            a.merge(b);
        }
        self.recorded += other.recorded;
    }
}

impl SiteEstimators<DecayedHistogram> {
    /// Exponentially-decayed estimators — track regime changes, suitable
    /// for driving the dynamic QR protocol (§4.3).
    pub fn decayed(n_sites: usize, total_votes: usize, decay: f64) -> Self {
        Self {
            sites: (0..n_sites)
                .map(|_| DecayedHistogram::new(total_votes, decay))
                .collect(),
            total_votes,
            recorded: 0,
        }
    }
}

impl<H: VoteHistogram> SiteEstimators<H> {
    /// Records that `site` observed `votes` reachable votes.
    pub fn record(&mut self, site: usize, votes: u64) {
        self.sites[site].record(votes as usize);
        self.recorded += 1;
    }

    /// Records that `site` was down (a zero-vote component, §5.2's
    /// convention). Only a simulator or an external observer can log this;
    /// see the module docs on `A` vs `A'`.
    pub fn record_down(&mut self, site: usize) {
        self.sites[site].record(0);
        self.recorded += 1;
    }

    /// Total observations recorded into the bank (across all sites,
    /// unweighted — decay does not erode this count).
    pub fn observations(&self) -> u64 {
        self.recorded
    }

    /// Records the bank's lifetime observation count into a registry
    /// under [`quorum_obs::keys::ESTIMATOR_OBSERVATIONS`].
    pub fn observe_into(&self, registry: &quorum_obs::Registry) {
        registry.add(quorum_obs::keys::ESTIMATOR_OBSERVATIONS, self.recorded);
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Total votes `T`.
    pub fn total_votes(&self) -> usize {
        self.total_votes
    }

    /// (Weighted) observation count at `site`.
    pub fn weight(&self, site: usize) -> f64 {
        self.sites[site].weight()
    }

    /// Current `f̂_i` for one site.
    ///
    /// # Panics
    /// Panics if the site has no observations yet.
    pub fn density(&self, site: usize) -> DiscreteDist {
        self.sites[site].estimate()
    }

    /// All per-site densities.
    pub fn densities(&self) -> Vec<DiscreteDist> {
        self.sites.iter().map(|h| h.estimate()).collect()
    }

    /// Builds the availability model for given access distributions
    /// (`r_i`, `w_i`), i.e. steps 1–3 of Figure 1 with estimated `f_i`.
    pub fn model(&self, read_frac: &[f64], write_frac: &[f64]) -> AvailabilityModel {
        AvailabilityModel::from_site_densities(&self.densities(), read_frac, write_frac)
    }

    /// Model under uniform access (`r_i = w_i = 1/n`).
    pub fn model_uniform(&self) -> AvailabilityModel {
        AvailabilityModel::uniform_access(&self.densities())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{optimal_quorum, SearchStrategy};

    #[test]
    fn record_and_estimate_roundtrip() {
        let mut est = SiteEstimators::counting(3, 10);
        est.record(0, 10);
        est.record(0, 10);
        est.record(0, 5);
        let d = est.density(0);
        assert!((d.pmf(10) - 2.0 / 3.0).abs() < 1e-12);
        assert!((d.pmf(5) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(est.weight(0), 3.0);
    }

    #[test]
    fn record_down_adds_zero_mass() {
        let mut est = SiteEstimators::counting(1, 4);
        est.record(0, 4);
        est.record_down(0);
        let d = est.density(0);
        assert!((d.pmf(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn estimated_model_recovers_known_density() {
        // Feed samples from a known distribution; the estimated optimizer
        // must agree with the true one.
        use quorum_stats::rng::rng_from_seed;
        use rand::Rng;
        let truth = DiscreteDist::from_pmf(vec![0.04, 0.1, 0.2, 0.3, 0.2, 0.1, 0.03, 0.03]);
        let mut est = SiteEstimators::counting(2, 7);
        let mut rng = rng_from_seed(8);
        for _ in 0..60_000 {
            // Inverse-CDF sample.
            let u: f64 = rng.random();
            let mut acc = 0.0;
            let mut v = 0usize;
            for k in 0..=7 {
                acc += truth.pmf(k);
                if u < acc {
                    v = k;
                    break;
                }
            }
            est.record(0, v as u64);
            est.record(1, v as u64);
        }
        let true_model = AvailabilityModel::from_mixtures(&truth, &truth);
        let est_model = est.model_uniform();
        for alpha in [0.0, 0.5, 1.0] {
            let a = optimal_quorum(&true_model, alpha, SearchStrategy::Exhaustive);
            let b = optimal_quorum(&est_model, alpha, SearchStrategy::Exhaustive);
            assert_eq!(a.spec.q_r(), b.spec.q_r(), "α = {alpha}");
            assert!((a.availability - b.availability).abs() < 0.02);
        }
    }

    #[test]
    fn decayed_estimators_adapt() {
        let mut est = SiteEstimators::decayed(1, 10, 0.95);
        for _ in 0..500 {
            est.record(0, 2);
        }
        for _ in 0..500 {
            est.record(0, 9);
        }
        let d = est.density(0);
        assert!(d.pmf(9) > 0.99, "recent regime dominates: {}", d.pmf(9));
    }

    #[test]
    fn per_site_densities_are_independent() {
        let mut est = SiteEstimators::counting(2, 5);
        est.record(0, 5);
        est.record(1, 1);
        assert!((est.density(0).pmf(5) - 1.0).abs() < 1e-12);
        assert!((est.density(1).pmf(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn model_with_skewed_access() {
        let mut est = SiteEstimators::counting(2, 4);
        est.record(0, 4); // site 0 always sees everything
        est.record(1, 1); // site 1 always isolated
        let m = est.model(&[1.0, 0.0], &[0.0, 1.0]);
        assert_eq!(m.read_availability(4), 1.0);
        assert_eq!(m.write_availability(4), 0.0);
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn empty_site_density_panics() {
        SiteEstimators::counting(2, 4).density(0);
    }

    #[test]
    fn merge_combines_observations() {
        let mut a = SiteEstimators::counting(2, 4);
        let mut b = SiteEstimators::counting(2, 4);
        a.record(0, 4);
        b.record(0, 2);
        b.record(1, 3);
        a.merge(&b);
        assert_eq!(a.weight(0), 2.0);
        assert_eq!(a.weight(1), 1.0);
        assert!((a.density(0).pmf(4) - 0.5).abs() < 1e-12);
        assert_eq!(a.observations(), 3);
    }

    #[test]
    fn observation_count_reaches_registry() {
        let mut est = SiteEstimators::counting(2, 4);
        est.record(0, 4);
        est.record(1, 2);
        est.record_down(1);
        let r = quorum_obs::Registry::new();
        est.observe_into(&r);
        assert_eq!(
            r.snapshot()
                .counter(quorum_obs::keys::ESTIMATOR_OBSERVATIONS),
            3
        );
    }

    #[test]
    #[should_panic(expected = "site counts differ")]
    fn merge_dimension_mismatch_panics() {
        let mut a = SiteEstimators::counting(2, 4);
        let b = SiteEstimators::counting(3, 4);
        a.merge(&b);
    }
}
