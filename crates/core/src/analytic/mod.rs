//! Closed-form component-vote densities `f_i(v)` for symmetric topologies
//! (§4.2 of the paper).
//!
//! For a ring, a fully-connected network, and a single bus, `f_i(v)` — the
//! probability that site `i` lies in a component holding exactly `v` votes
//! (one vote per site, so `v` is also the component's site count) — has a
//! closed form. For general graphs the computation is #P-complete (the
//! paper, citing its companion \[14\]); the [`crate::estimator`] module
//! provides the on-line approximation used instead.
//!
//! All functions here assume uniform one-vote-per-site assignments and
//! i.i.d. site reliability `p` and link reliability `r`, matching the
//! paper's formulas.

pub mod bus;
pub mod fully_connected;
pub mod path;
pub mod ring;
pub mod star;

pub use bus::{bus_density_sites_fail, bus_density_sites_independent};
pub use fully_connected::{fully_connected_density, gilbert_rel};
pub use path::{path_densities, path_density};
pub use ring::ring_density;
pub use star::{star_densities, star_hub_density, star_leaf_density};

/// Validates a probability parameter.
pub(crate) fn check_prob(name: &str, x: f64) {
    assert!(
        (0.0..=1.0).contains(&x),
        "{name} must lie in [0,1], got {x}"
    );
}

/// `ln C(n, k)` via `ln Γ`; exact enough for the moderate `n` used here.
pub(crate) fn ln_choose(n: usize, k: usize) -> f64 {
    assert!(k <= n, "C({n},{k}) undefined");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln n!` by direct summation (cached would be overkill: `n ≤` a few
/// hundred in every caller, and callers precompute tables anyway).
pub(crate) fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// Binomial coefficient as `f64` (overflow-safe via logs for large args).
pub(crate) fn choose(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    if n <= 60 {
        // Exact integer path.
        let mut acc = 1f64;
        let k = k.min(n - k);
        for i in 0..k {
            acc = acc * (n - i) as f64 / (i + 1) as f64;
        }
        acc
    } else {
        ln_choose(n, k).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_small_values() {
        assert_eq!(choose(5, 2), 10.0);
        assert_eq!(choose(10, 0), 1.0);
        assert_eq!(choose(10, 10), 1.0);
        assert_eq!(choose(4, 5), 0.0);
    }

    #[test]
    fn choose_large_values_match_logs() {
        let direct = choose(100, 50);
        // C(100,50) ≈ 1.0089134e29.
        assert!((direct / 1.008_913_4e29 - 1.0).abs() < 1e-5, "{direct}");
    }

    #[test]
    fn pascal_identity() {
        for n in 1..80 {
            for k in 1..n {
                let lhs = choose(n, k);
                let rhs = choose(n - 1, k - 1) + choose(n - 1, k);
                assert!(
                    ((lhs - rhs) / rhs).abs() < 1e-10,
                    "C({n},{k}): {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn ln_factorial_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must lie in [0,1]")]
    fn check_prob_rejects() {
        check_prob("p", 1.2);
    }
}
