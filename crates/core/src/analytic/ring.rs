//! Ring density (§4.2).
//!
//! For a ring of `n` sites with one copy and one vote per site
//! (`T = n`), with site reliability `p` and link reliability `r`:
//!
//! ```text
//! f_i(v) = ⎧ v p^v r^{v−1} (1−r) + p^v r^v                      v = n = T
//!          ⎨ v p^v r^{v−1} ((1−p) + p (1−r)²)                   v = T − 1
//!          ⎨ v p^v r^{v−1} (1 − p r)²                           0 < v < T − 1
//!          ⎩ 1 − p                                              v = 0
//! ```
//!
//! Intuition: a component of `v < n` consecutive sites containing site `i`
//! can start at `v` positions; its `v` sites are up (`p^v`), its `v−1`
//! internal links up (`r^{v−1}`), and each of its two boundaries is blocked
//! by a down neighbor site or a down link (`1 − p r` each). The `v = T−1`
//! and `v = T` cases account for the shared excluded site / the wrap.

use super::check_prob;
use quorum_stats::DiscreteDist;

/// Exact `f_i(v)` for a ring (any site — the ring is vertex-transitive).
///
/// # Panics
/// Panics if `n < 3` or probabilities are outside `[0, 1]`.
#[allow(clippy::needless_range_loop)] // indexing pmf[v] mirrors the paper's piecewise formula
pub fn ring_density(n: usize, p: f64, r: f64) -> DiscreteDist {
    assert!(n >= 3, "ring needs at least 3 sites");
    check_prob("site reliability p", p);
    check_prob("link reliability r", r);
    let mut pmf = vec![0.0; n + 1];
    pmf[0] = 1.0 - p;
    for v in 1..=n {
        let vf = v as f64;
        let base = vf * p.powi(v as i32) * r.powi(v as i32 - 1);
        pmf[v] = if v == n {
            base * (1.0 - r) + p.powi(n as i32) * r.powi(n as i32)
        } else if v == n - 1 {
            base * ((1.0 - p) + p * (1.0 - r) * (1.0 - r))
        } else {
            base * (1.0 - p * r) * (1.0 - p * r)
        };
    }
    DiscreteDist::from_pmf(pmf)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_one() {
        for &(n, p, r) in &[
            (3usize, 0.9, 0.9),
            (5, 0.96, 0.96),
            (10, 0.5, 0.7),
            (101, 0.96, 0.96),
            (7, 1.0, 0.5),
            (7, 0.5, 1.0),
        ] {
            let d = ring_density(n, p, r);
            let s = d.total_mass();
            assert!((s - 1.0).abs() < 1e-9, "ring({n}, {p}, {r}) mass = {s}");
        }
    }

    #[test]
    fn perfect_components_give_full_ring() {
        let d = ring_density(8, 1.0, 1.0);
        assert!((d.pmf(8) - 1.0).abs() < 1e-12);
        assert_eq!(d.pmf(0), 0.0);
    }

    #[test]
    fn perfect_links_reduce_to_site_runs() {
        // r = 1: component = maximal run of up sites around site i.
        // For v < n: f(v) = v p^v (1-p)^2; v = n: p^n (+ n p^n (1-1) = 0).
        let (n, p) = (6usize, 0.8);
        let d = ring_density(n, p, 1.0);
        for v in 1..n - 1 {
            let expect = v as f64 * p.powi(v as i32) * (1.0 - p) * (1.0 - p);
            assert!((d.pmf(v) - expect).abs() < 1e-12, "v = {v}");
        }
        assert!((d.pmf(n) - p.powi(n as i32)).abs() < 1e-12);
    }

    #[test]
    fn down_probability_is_one_minus_p() {
        let d = ring_density(5, 0.96, 0.5);
        assert!((d.pmf(0) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn matches_monte_carlo() {
        // Cross-validate the closed form against direct sampling of a
        // 7-ring with p = 0.9, r = 0.8.
        use quorum_stats::rng::{bernoulli, rng_from_seed};
        let (n, p, r) = (7usize, 0.9, 0.8);
        let analytic = ring_density(n, p, r);
        let mut rng = rng_from_seed(12345);
        let trials = 400_000;
        let mut counts = vec![0u64; n + 1];
        for _ in 0..trials {
            let sites: Vec<bool> = (0..n).map(|_| bernoulli(&mut rng, p)).collect();
            let links: Vec<bool> = (0..n).map(|_| bernoulli(&mut rng, r)).collect();
            // Component of site 0 (link j connects j and j+1 mod n).
            let v = if !sites[0] {
                0
            } else {
                let mut members = vec![false; n];
                members[0] = true;
                let mut stack = vec![0usize];
                while let Some(s) = stack.pop() {
                    let fwd = (s + 1) % n;
                    if links[s] && sites[fwd] && !members[fwd] {
                        members[fwd] = true;
                        stack.push(fwd);
                    }
                    let back = (s + n - 1) % n;
                    if links[back] && sites[back] && !members[back] {
                        members[back] = true;
                        stack.push(back);
                    }
                }
                members.iter().filter(|&&m| m).count()
            };
            counts[v] += 1;
        }
        for v in 0..=n {
            let emp = counts[v] as f64 / trials as f64;
            assert!(
                (emp - analytic.pmf(v)).abs() < 0.004,
                "v = {v}: empirical {emp} vs analytic {}",
                analytic.pmf(v)
            );
        }
    }

    #[test]
    fn mean_component_size_reasonable() {
        // 96%-reliable everything on a 101-ring: failures scattered around
        // the ring chop it into short runs, so the mean reachable size is
        // far below n.
        let d = ring_density(101, 0.96, 0.96);
        let m = d.mean();
        assert!(m > 5.0 && m < 40.0, "mean = {m}");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        ring_density(2, 0.9, 0.9);
    }
}
