//! Fully-connected density via Gilbert's recursion (§4.2).
//!
//! `Rel(m, r)` is the probability that all `m` sites of a complete graph
//! with perfectly reliable sites and link reliability `r` can mutually
//! communicate. Gilbert (1959):
//!
//! ```text
//! Rel(m, r) = 1 − Σ_{i=1}^{m−1} C(m−1, i−1) (1−r)^{i(m−i)} Rel(i, r)
//! ```
//!
//! (the subtracted terms partition the failure event by the component
//! containing site 1). With site reliability `p` the density is
//!
//! ```text
//! f_i(v) = C(n−1, v−1) p^v ((1−p) + p(1−r)^v)^{n−v} Rel(v, r),   v ≥ 1
//! f_i(0) = 1 − p
//! ```
//!
//! — choose the `v−1` companions of site `i`, all `v` up and mutually
//! connected, and every outside site either down or with all `v` of its
//! links into the component down.

use super::{check_prob, choose};
use quorum_stats::DiscreteDist;

/// Computes `Rel(1..=m, r)` in one O(m²) pass; `out[k] = Rel(k, r)`.
/// Index 0 is unused (`Rel(0)` set to 1 by convention).
#[allow(clippy::needless_range_loop)] // rel[i] indexing mirrors Gilbert's recursion
pub fn gilbert_rel_table(m: usize, r: f64) -> Vec<f64> {
    check_prob("link reliability r", r);
    let q = 1.0 - r;
    let mut rel = vec![1.0; m + 1];
    for k in 2..=m {
        let mut sum = 0.0;
        for i in 1..k {
            sum += choose(k - 1, i - 1) * q.powi((i * (k - i)) as i32) * rel[i];
        }
        rel[k] = (1.0 - sum).clamp(0.0, 1.0);
    }
    rel
}

/// `Rel(m, r)`: probability a complete graph of `m` perfectly-reliable
/// sites with link reliability `r` is connected.
pub fn gilbert_rel(m: usize, r: f64) -> f64 {
    assert!(m >= 1, "Rel needs at least one site");
    gilbert_rel_table(m, r)[m]
}

/// Exact `f_i(v)` for a fully-connected network of `n` sites (site
/// reliability `p`, link reliability `r`, one vote per site).
#[allow(clippy::needless_range_loop)] // indexing pmf[v] mirrors the formula
pub fn fully_connected_density(n: usize, p: f64, r: f64) -> DiscreteDist {
    assert!(n >= 1, "need at least one site");
    check_prob("site reliability p", p);
    check_prob("link reliability r", r);
    let rel = gilbert_rel_table(n, r);
    let q = 1.0 - r;
    let mut pmf = vec![0.0; n + 1];
    pmf[0] = 1.0 - p;
    for v in 1..=n {
        let outside = (1.0 - p) + p * q.powi(v as i32);
        pmf[v] = choose(n - 1, v - 1) * p.powi(v as i32) * outside.powi((n - v) as i32) * rel[v];
    }
    // Tiny negative clamps can arise from Rel clamping; renormalize the
    // residual rounding (sum deviates from 1 only at ~1e-12 scale).
    DiscreteDist::from_pmf(pmf)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn rel_base_cases() {
        assert_eq!(gilbert_rel(1, 0.5), 1.0);
        // Two sites: connected iff the single link is up.
        assert!((gilbert_rel(2, 0.7) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn rel_three_sites_manual() {
        // Three links; connected iff ≥ 2 links up... plus all 3.
        // P = 3 r² (1−r) + r³  (exactly two up: any pair keeps connectivity)
        let r = 0.8;
        let expect = 3.0 * r * r * (1.0 - r) + r * r * r;
        assert!((gilbert_rel(3, r) - expect).abs() < 1e-12);
    }

    #[test]
    fn rel_extremes() {
        for m in 1..=20 {
            assert!((gilbert_rel(m, 1.0) - 1.0).abs() < 1e-12);
            if m >= 2 {
                assert!(gilbert_rel(m, 0.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rel_monotone_in_r() {
        for m in [2usize, 5, 10, 25] {
            let mut prev = 0.0;
            for step in 0..=10 {
                let r = step as f64 / 10.0;
                let rel = gilbert_rel(m, r);
                assert!(rel >= prev - 1e-12, "Rel({m}, {r}) decreased");
                assert!((0.0..=1.0).contains(&rel));
                prev = rel;
            }
        }
    }

    #[test]
    fn rel_increases_with_m_for_high_r() {
        // With reliable links, bigger complete graphs are better connected
        // (more redundant paths).
        let r = 0.9;
        assert!(gilbert_rel(10, r) > gilbert_rel(3, r));
    }

    #[test]
    fn rel_matches_monte_carlo() {
        use quorum_stats::rng::{bernoulli, rng_from_seed};
        let (m, r) = (6usize, 0.6);
        let analytic = gilbert_rel(m, r);
        let mut rng = rng_from_seed(99);
        let trials = 200_000;
        let mut connected = 0u64;
        for _ in 0..trials {
            // Sample each of the C(6,2)=15 links.
            let mut adj = [[false; 6]; 6];
            for a in 0..m {
                for b in a + 1..m {
                    if bernoulli(&mut rng, r) {
                        adj[a][b] = true;
                        adj[b][a] = true;
                    }
                }
            }
            let mut seen = [false; 6];
            seen[0] = true;
            let mut stack = vec![0usize];
            while let Some(s) = stack.pop() {
                for t in 0..m {
                    if adj[s][t] && !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
            if seen.iter().all(|&x| x) {
                connected += 1;
            }
        }
        let emp = connected as f64 / trials as f64;
        assert!(
            (emp - analytic).abs() < 0.005,
            "empirical {emp} vs Rel {analytic}"
        );
    }

    #[test]
    fn density_normalizes() {
        for &(n, p, r) in &[
            (2usize, 0.9, 0.9),
            (5, 0.96, 0.96),
            (25, 0.96, 0.96),
            (101, 0.96, 0.96),
            (10, 0.5, 0.5),
        ] {
            let d = fully_connected_density(n, p, r);
            let s = d.total_mass();
            assert!((s - 1.0).abs() < 1e-6, "fc({n},{p},{r}) mass = {s}");
        }
    }

    #[test]
    fn density_perfect_network() {
        let d = fully_connected_density(9, 1.0, 1.0);
        assert!((d.pmf(9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_zero_links_isolates_sites() {
        // r = 0: every up site is a singleton.
        let d = fully_connected_density(7, 0.8, 0.0);
        assert!((d.pmf(1) - 0.8).abs() < 1e-12);
        assert!((d.pmf(0) - 0.2).abs() < 1e-12);
        for v in 2..=7 {
            assert_eq!(d.pmf(v), 0.0);
        }
    }

    #[test]
    fn paper_scale_density_concentrates_high() {
        // 101 sites, 96%-reliable components, complete graph: the giant
        // component contains nearly all up sites, so mass concentrates
        // near Binomial(100, .96) ≈ 97.
        let d = fully_connected_density(101, 0.96, 0.96);
        let mean = d.mean();
        assert!(mean > 90.0, "mean = {mean}");
        assert!(d.tail_sum(90) > 0.9, "tail(90) = {}", d.tail_sum(90));
    }

    #[test]
    fn density_matches_monte_carlo_small() {
        use quorum_stats::rng::{bernoulli, rng_from_seed};
        let (n, p, r) = (5usize, 0.85, 0.7);
        let analytic = fully_connected_density(n, p, r);
        let mut rng = rng_from_seed(7);
        let trials = 300_000;
        let mut counts = vec![0u64; n + 1];
        for _ in 0..trials {
            let sites: Vec<bool> = (0..n).map(|_| bernoulli(&mut rng, p)).collect();
            let mut adj = vec![vec![false; n]; n];
            for a in 0..n {
                for b in a + 1..n {
                    if bernoulli(&mut rng, r) {
                        adj[a][b] = true;
                        adj[b][a] = true;
                    }
                }
            }
            let v = if !sites[0] {
                0
            } else {
                let mut seen = vec![false; n];
                seen[0] = true;
                let mut stack = vec![0usize];
                let mut count = 1;
                while let Some(s) = stack.pop() {
                    for t in 0..n {
                        if adj[s][t] && sites[t] && !seen[t] {
                            seen[t] = true;
                            count += 1;
                            stack.push(t);
                        }
                    }
                }
                count
            };
            counts[v] += 1;
        }
        for v in 0..=n {
            let emp = counts[v] as f64 / trials as f64;
            assert!(
                (emp - analytic.pmf(v)).abs() < 0.005,
                "v = {v}: {emp} vs {}",
                analytic.pmf(v)
            );
        }
    }
}
