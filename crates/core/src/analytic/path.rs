//! Path (line) network densities — a second asymmetric extension of §4.2.
//!
//! A path of `n` sites (links `(i, i+1)`) is the ring with one link
//! removed; its component containing site `i` is the maximal run of up
//! sites and up links around `i`, but unlike the ring the density depends
//! on `i`'s distance to the ends. For the run `[a, b] ∋ i`:
//!
//! * the `b − a + 1` sites are up and the `b − a` internal links are up;
//! * the left boundary is blocked unless `a = 0` (site `a−1` down, or the
//!   link into it down): factor `1 − p·r`;
//! * symmetrically on the right unless `b = n−1`.
//!
//! Summing over the `O(n²)` runs gives an exact `O(n²)` per-site density —
//! cheap, and a useful validation case because `f_i` differs by site.

use super::check_prob;
use quorum_stats::DiscreteDist;

/// Exact `f_i(v)` for site `site` of an `n`-site path.
pub fn path_density(n: usize, p: f64, r: f64, site: usize) -> DiscreteDist {
    assert!(n >= 2, "a path needs at least 2 sites");
    assert!(site < n, "site {site} out of range");
    check_prob("site reliability p", p);
    check_prob("link reliability r", r);
    let block = 1.0 - p * r;
    let mut pmf = vec![0.0; n + 1];
    pmf[0] = 1.0 - p;
    for a in 0..=site {
        for b in site..n {
            let len = b - a + 1;
            let mut prob = p.powi(len as i32) * r.powi((len - 1) as i32);
            if a > 0 {
                prob *= block;
            }
            if b < n - 1 {
                prob *= block;
            }
            pmf[len] += prob;
        }
    }
    DiscreteDist::from_pmf(pmf)
}

/// All per-site densities of the path, ready for the Figure-1 mixture.
pub fn path_densities(n: usize, p: f64, r: f64) -> Vec<DiscreteDist> {
    (0..n).map(|i| path_density(n, p, r, i)).collect()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_for_every_site() {
        for &(n, p, r) in &[(2usize, 0.9, 0.8), (7, 0.96, 0.96), (25, 0.5, 0.7)] {
            for site in 0..n {
                let d = path_density(n, p, r, site);
                let s = d.total_mass();
                assert!((s - 1.0).abs() < 1e-9, "path({n},{p},{r}) site {site}: {s}");
            }
        }
    }

    #[test]
    fn symmetric_sites_have_equal_densities() {
        let n = 9;
        for site in 0..n {
            let a = path_density(n, 0.9, 0.8, site);
            let b = path_density(n, 0.9, 0.8, n - 1 - site);
            assert!(a.max_abs_diff(&b) < 1e-12, "site {site} vs mirror");
        }
    }

    #[test]
    fn middle_site_sees_larger_components_than_endpoint() {
        let n = 15;
        let end = path_density(n, 0.9, 0.9, 0);
        let mid = path_density(n, 0.9, 0.9, n / 2);
        assert!(mid.mean() > end.mean(), "{} vs {}", mid.mean(), end.mean());
    }

    #[test]
    fn perfect_path_is_point_mass() {
        let d = path_density(8, 1.0, 1.0, 3);
        assert!((d.pmf(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_site_path_by_hand() {
        // Site 0 of a 2-path: v=2 iff both up and the link up; v=1 iff up
        // and (other down or link down); v=0 iff down.
        let (p, r) = (0.8, 0.7);
        let d = path_density(2, p, r, 0);
        assert!((d.pmf(2) - p * p * r).abs() < 1e-12);
        assert!((d.pmf(1) - p * (1.0 - p * r)).abs() < 1e-12);
        assert!((d.pmf(0) - (1.0 - p)).abs() < 1e-12);
    }

    #[test]
    fn matches_monte_carlo() {
        use quorum_stats::rng::{bernoulli, rng_from_seed};
        let (n, p, r, site) = (6usize, 0.85, 0.75, 2usize);
        let analytic = path_density(n, p, r, site);
        let mut rng = rng_from_seed(99);
        let trials = 300_000;
        let mut counts = vec![0u64; n + 1];
        for _ in 0..trials {
            let sites: Vec<bool> = (0..n).map(|_| bernoulli(&mut rng, p)).collect();
            let links: Vec<bool> = (0..n - 1).map(|_| bernoulli(&mut rng, r)).collect();
            let v = if !sites[site] {
                0
            } else {
                let mut lo = site;
                while lo > 0 && links[lo - 1] && sites[lo - 1] {
                    lo -= 1;
                }
                let mut hi = site;
                while hi + 1 < n && links[hi] && sites[hi + 1] {
                    hi += 1;
                }
                hi - lo + 1
            };
            counts[v] += 1;
        }
        for v in 0..=n {
            let emp = counts[v] as f64 / trials as f64;
            assert!(
                (emp - analytic.pmf(v)).abs() < 0.005,
                "v={v}: {emp} vs {}",
                analytic.pmf(v)
            );
        }
    }

    #[test]
    fn path_density_below_ring_density() {
        // Removing the wrap link can only shrink components: the ring's
        // tail dominates the path's for every site and threshold.
        let n = 11;
        let ring = crate::analytic::ring_density(n, 0.9, 0.9);
        for site in 0..n {
            let path = path_density(n, 0.9, 0.9, site);
            for v in 1..=n {
                assert!(
                    ring.tail_sum(v) >= path.tail_sum(v) - 1e-12,
                    "site {site}, v {v}"
                );
            }
        }
    }
}
