//! Single-bus densities (§4.2).
//!
//! `n` sites share one bus of reliability `r`; sites have reliability `p`.
//! When the bus is up, the up sites form one component (size Binomial);
//! when it is down the two architectural variants differ:
//!
//! * **Sites fail with the bus** — no site functions without the bus:
//!   `f_i(v) = C(n−1, v−1) r p^v (1−p)^{n−v}` for `v ≥ 1`, and the
//!   remaining mass `1 − r p` at `v = 0`.
//! * **Sites independent** — an up site survives a bus failure as a
//!   singleton component. The paper abbreviates this case's `v = 1` entry
//!   to "`p`"; the exact density (which we implement, since it must
//!   normalize) is
//!
//!   ```text
//!   f_i(0) = 1 − p
//!   f_i(1) = p (1 − r) + r p (1−p)^{n−1}
//!   f_i(v) = C(n−1, v−1) r p^v (1−p)^{n−v},     v ≥ 2.
//!   ```
//!
//!   The deviation from the paper's piecewise display is recorded in
//!   DESIGN.md (their `f(1) = p` cannot be literal: the sum would exceed
//!   one).

use super::{check_prob, choose};
use quorum_stats::DiscreteDist;

fn binomial_term(n: usize, v: usize, p: f64) -> f64 {
    choose(n - 1, v - 1) * p.powi(v as i32) * (1.0 - p).powi((n - v) as i32)
}

/// Density for the "no site functions when the bus is down" design.
#[allow(clippy::needless_range_loop)] // indexing pmf[v] mirrors the formulas
pub fn bus_density_sites_fail(n: usize, p: f64, r: f64) -> DiscreteDist {
    assert!(n >= 1, "need at least one site");
    check_prob("site reliability p", p);
    check_prob("bus reliability r", r);
    let mut pmf = vec![0.0; n + 1];
    for v in 1..=n {
        pmf[v] = r * binomial_term(n, v, p);
    }
    pmf[0] = 1.0 - r * p;
    DiscreteDist::from_pmf(pmf)
}

/// Density for the "sites survive a bus failure as singletons" design.
#[allow(clippy::needless_range_loop)] // indexing pmf[v] mirrors the formulas
pub fn bus_density_sites_independent(n: usize, p: f64, r: f64) -> DiscreteDist {
    assert!(n >= 1, "need at least one site");
    check_prob("site reliability p", p);
    check_prob("bus reliability r", r);
    let mut pmf = vec![0.0; n + 1];
    pmf[0] = 1.0 - p;
    for v in 2..=n {
        pmf[v] = r * binomial_term(n, v, p);
    }
    pmf[1] = p * (1.0 - r)
        + if n >= 1 {
            r * binomial_term(n, 1, p)
        } else {
            0.0
        };
    DiscreteDist::from_pmf(pmf)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_normalize() {
        for &(n, p, r) in &[
            (1usize, 0.9, 0.8),
            (5, 0.96, 0.96),
            (20, 0.5, 0.5),
            (101, 0.96, 0.96),
        ] {
            for (name, d) in [
                ("fail", bus_density_sites_fail(n, p, r)),
                ("indep", bus_density_sites_independent(n, p, r)),
            ] {
                let s = d.total_mass();
                assert!((s - 1.0).abs() < 1e-9, "bus-{name}({n},{p},{r}) = {s}");
            }
        }
    }

    #[test]
    fn sites_fail_variant_zero_mass() {
        let d = bus_density_sites_fail(10, 0.9, 0.8);
        // Down ⟺ bus down or own site down: 1 − 0.72.
        assert!((d.pmf(0) - (1.0 - 0.72)).abs() < 1e-12);
    }

    #[test]
    fn independent_variant_down_only_when_site_down() {
        let d = bus_density_sites_independent(10, 0.9, 0.8);
        assert!((d.pmf(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn independent_singleton_includes_bus_failure() {
        let (n, p, r) = (6usize, 0.9, 0.7);
        let d = bus_density_sites_independent(n, p, r);
        let expect = p * (1.0 - r) + r * p * (1.0 - p).powi((n - 1) as i32);
        assert!((d.pmf(1) - expect).abs() < 1e-12);
    }

    #[test]
    fn perfect_bus_makes_variants_agree() {
        let a = bus_density_sites_fail(8, 0.85, 1.0);
        let b = bus_density_sites_independent(8, 0.85, 1.0);
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn perfect_everything_is_point_mass() {
        let d = bus_density_sites_fail(12, 1.0, 1.0);
        assert!((d.pmf(12) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bus_up_component_is_binomial() {
        // Conditional on bus up and site i up, |component| − 1 ~
        // Binomial(n−1, p). Check one interior value.
        let (n, p, r) = (5usize, 0.6, 0.9);
        let d = bus_density_sites_fail(n, p, r);
        let v = 3;
        let expect = r * choose(4, 2) * p.powi(3) * (1.0 - p).powi(2);
        assert!((d.pmf(v) - expect).abs() < 1e-12);
    }

    #[test]
    fn matches_monte_carlo_independent() {
        use quorum_stats::rng::{bernoulli, rng_from_seed};
        let (n, p, r) = (5usize, 0.8, 0.6);
        let analytic = bus_density_sites_independent(n, p, r);
        let mut rng = rng_from_seed(314);
        let trials = 300_000;
        let mut counts = vec![0u64; n + 1];
        for _ in 0..trials {
            let bus = bernoulli(&mut rng, r);
            let sites: Vec<bool> = (0..n).map(|_| bernoulli(&mut rng, p)).collect();
            let v = if !sites[0] {
                0
            } else if bus {
                sites.iter().filter(|&&s| s).count()
            } else {
                1
            };
            counts[v] += 1;
        }
        for v in 0..=n {
            let emp = counts[v] as f64 / trials as f64;
            assert!(
                (emp - analytic.pmf(v)).abs() < 0.005,
                "v = {v}: {emp} vs {}",
                analytic.pmf(v)
            );
        }
    }
}
