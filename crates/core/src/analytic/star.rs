//! Star-network densities (an asymmetric extension of §4.2).
//!
//! The paper's closed forms (ring, fully-connected, bus) are all
//! vertex-transitive: every site shares one `f`. A star — hub site `0`,
//! `n−1` leaves, each leaf attached by its own link of reliability `r` —
//! is the simplest topology where the densities *differ by site*, so it
//! exercises the full step-2 mixture `r(v) = Σ r_i f_i(v)` of Figure 1:
//!
//! * **hub**: down with probability `1−p`; otherwise its component is
//!   itself plus `Binomial(n−1, p·r)` attached leaves;
//! * **leaf**: down with probability `1−p`; isolated (`v = 1`) when its
//!   link or the hub is down; otherwise itself + hub +
//!   `Binomial(n−2, p·r)` other leaves.

use super::{check_prob, choose};
use quorum_stats::DiscreteDist;

fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    choose(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

/// Exact `f_hub(v)` for the hub of an `n`-site star.
pub fn star_hub_density(n: usize, p: f64, r: f64) -> DiscreteDist {
    assert!(n >= 2, "a star needs at least 2 sites");
    check_prob("site reliability p", p);
    check_prob("link reliability r", r);
    let mut pmf = vec![0.0; n + 1];
    pmf[0] = 1.0 - p;
    let attach = p * r; // a given leaf is up and its link is up
    for k in 0..n {
        // k attached leaves → component size k + 1.
        pmf[k + 1] = p * binomial_pmf(n - 1, k, attach);
    }
    DiscreteDist::from_pmf(pmf)
}

/// Exact `f_leaf(v)` for any leaf of an `n`-site star.
pub fn star_leaf_density(n: usize, p: f64, r: f64) -> DiscreteDist {
    assert!(n >= 2, "a star needs at least 2 sites");
    check_prob("site reliability p", p);
    check_prob("link reliability r", r);
    let mut pmf = vec![0.0; n + 1];
    pmf[0] = 1.0 - p;
    let attach = p * r;
    // Up but isolated: own link down, or hub down.
    pmf[1] = p * (1.0 - r * p);
    // Connected through the hub: self + hub + k of the n−2 other leaves.
    for k in 0..n.saturating_sub(1) {
        if n >= 2 {
            pmf[k + 2] += p * r * p * binomial_pmf(n - 2, k, attach);
        }
    }
    DiscreteDist::from_pmf(pmf)
}

/// The per-site density list for a star (`site 0` = hub), ready for
/// [`crate::availability::AvailabilityModel::from_site_densities`].
pub fn star_densities(n: usize, p: f64, r: f64) -> Vec<DiscreteDist> {
    let hub = star_hub_density(n, p, r);
    let leaf = star_leaf_density(n, p, r);
    let mut out = Vec::with_capacity(n);
    out.push(hub);
    for _ in 1..n {
        out.push(leaf.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_densities_normalize() {
        for &(n, p, r) in &[
            (2usize, 0.9, 0.9),
            (5, 0.96, 0.96),
            (25, 0.5, 0.7),
            (101, 0.96, 0.96),
        ] {
            for (name, d) in [
                ("hub", star_hub_density(n, p, r)),
                ("leaf", star_leaf_density(n, p, r)),
            ] {
                let s = d.total_mass();
                assert!((s - 1.0).abs() < 1e-9, "{name}({n},{p},{r}) mass = {s}");
            }
        }
    }

    #[test]
    fn perfect_star_is_point_mass() {
        let hub = star_hub_density(7, 1.0, 1.0);
        let leaf = star_leaf_density(7, 1.0, 1.0);
        assert!((hub.pmf(7) - 1.0).abs() < 1e-12);
        assert!((leaf.pmf(7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hub_sees_larger_components_than_leaves() {
        let hub = star_hub_density(15, 0.9, 0.9);
        let leaf = star_leaf_density(15, 0.9, 0.9);
        assert!(
            hub.mean() > leaf.mean(),
            "{} vs {}",
            hub.mean(),
            leaf.mean()
        );
    }

    #[test]
    fn leaf_isolation_probability() {
        let (n, p, r) = (9usize, 0.9, 0.8);
        let leaf = star_leaf_density(n, p, r);
        // Up but isolated: link down OR (link up, hub down).
        let expect = p * ((1.0 - r) + r * (1.0 - p));
        assert!((leaf.pmf(1) - expect).abs() < 1e-12);
        // Hub isolated: all n−1 leaves unattached.
        let hub = star_hub_density(n, p, r);
        let expect_hub = p * (1.0 - p * r).powi((n - 1) as i32);
        assert!((hub.pmf(1) - expect_hub).abs() < 1e-12);
    }

    #[test]
    fn matches_monte_carlo() {
        use quorum_stats::rng::{bernoulli, rng_from_seed};
        let (n, p, r) = (6usize, 0.85, 0.75);
        let hub_analytic = star_hub_density(n, p, r);
        let leaf_analytic = star_leaf_density(n, p, r);
        let mut rng = rng_from_seed(2718);
        let trials = 300_000;
        let mut hub_counts = vec![0u64; n + 1];
        let mut leaf_counts = vec![0u64; n + 1];
        for _ in 0..trials {
            let sites: Vec<bool> = (0..n).map(|_| bernoulli(&mut rng, p)).collect();
            let links: Vec<bool> = (0..n - 1).map(|_| bernoulli(&mut rng, r)).collect();
            // Component sizes: hub (site 0) and leaf (site 1; its link is
            // links[0]).
            let attached = |i: usize| sites[i] && links[i - 1] && sites[0];
            let comp_hub = if !sites[0] {
                0
            } else {
                1 + (1..n).filter(|&i| attached(i)).count()
            };
            let comp_leaf = if !sites[1] {
                0
            } else if !links[0] || !sites[0] {
                1
            } else {
                comp_hub
            };
            hub_counts[comp_hub] += 1;
            leaf_counts[comp_leaf] += 1;
        }
        for v in 0..=n {
            let h = hub_counts[v] as f64 / trials as f64;
            let l = leaf_counts[v] as f64 / trials as f64;
            assert!(
                (h - hub_analytic.pmf(v)).abs() < 0.005,
                "hub v={v}: {h} vs {}",
                hub_analytic.pmf(v)
            );
            assert!(
                (l - leaf_analytic.pmf(v)).abs() < 0.005,
                "leaf v={v}: {l} vs {}",
                leaf_analytic.pmf(v)
            );
        }
    }

    #[test]
    fn densities_list_shape() {
        let ds = star_densities(5, 0.9, 0.9);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds[0], star_hub_density(5, 0.9, 0.9));
        assert_eq!(ds[1], ds[4]);
    }

    #[test]
    fn hub_weighted_access_changes_optimum() {
        // The point of an asymmetric density: where accesses originate
        // matters. All traffic at the hub sees bigger components than all
        // traffic at a leaf, so read availability at any quorum dominates.
        use crate::availability::AvailabilityModel;
        let n = 11;
        let ds = star_densities(n, 0.9, 0.8);
        let mut hub_only = vec![0.0; n];
        hub_only[0] = 1.0;
        let mut leaf_only = vec![0.0; n];
        leaf_only[1] = 1.0;
        let hub_model = AvailabilityModel::from_site_densities(&ds, &hub_only, &hub_only);
        let leaf_model = AvailabilityModel::from_site_densities(&ds, &leaf_only, &leaf_only);
        for q in 2..=5u64 {
            assert!(
                hub_model.read_availability(q) > leaf_model.read_availability(q),
                "q = {q}"
            );
        }
    }
}
