//! Step 4 of the Figure-1 algorithm: maximize `A(α, q_r)` over
//! `q_r ∈ 1..=⌊T/2⌋`, plus the §5.4 write-constrained variants.

use crate::availability::AvailabilityModel;
use crate::quorum::QuorumSpec;
use quorum_stats::optimize::{brent_max, exhaustive_max, golden_section_max};

/// How to search the `q_r` domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Evaluate every `q_r` (polynomial, exact — §4.1's "naive" baseline).
    Exhaustive,
    /// Endpoint-first golden-section search (§4.1's suggested speedup;
    /// exact when `A` is unimodal in `q_r`, which §5.3 observes for all
    /// but one measured curve).
    EndpointGolden,
    /// Brent's method on the continuous (linearly interpolated)
    /// relaxation of `A`, also suggested in §4.1 (via Numerical Recipes),
    /// followed by an endpoint check and a local integer refinement.
    ContinuousBrent,
}

/// An optimal quorum assignment and its predicted availabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalAssignment {
    /// The chosen `(q_r, q_w = T − q_r + 1)` pair.
    pub spec: QuorumSpec,
    /// `A(α, q_r)` at the optimum.
    pub availability: f64,
    /// `R(q_r)` at the optimum.
    pub read_availability: f64,
    /// `W(q_w)` at the optimum.
    pub write_availability: f64,
    /// Number of availability evaluations the search spent.
    pub evaluations: usize,
}

impl OptimalAssignment {
    /// Adds the search's objective-evaluation count to a registry under
    /// [`quorum_obs::keys::OPTIMIZER_EVALUATIONS`], so argmax sweeps can
    /// report total optimizer work alongside their wall-clock.
    pub fn observe_into(&self, registry: &quorum_obs::Registry) {
        registry.add(
            quorum_obs::keys::OPTIMIZER_EVALUATIONS,
            self.evaluations as u64,
        );
    }
}

fn assemble(model: &AvailabilityModel, alpha: f64, q_r: u64, evals: usize) -> OptimalAssignment {
    let total = model.total_votes();
    let spec = QuorumSpec::from_read_quorum(q_r, total).expect("domain-checked q_r");
    OptimalAssignment {
        spec,
        availability: model.availability(alpha, q_r),
        read_availability: model.read_availability(spec.q_r()),
        write_availability: model.write_availability(spec.q_w()),
        evaluations: evals,
    }
}

/// Finds the `q_r` maximizing `A(α, q_r)` (Figure 1, step 4).
///
/// # Examples
/// ```
/// use quorum_core::analytic::ring_density;
/// use quorum_core::{AvailabilityModel, SearchStrategy};
/// use quorum_core::optimal::optimal_quorum;
///
/// let f = ring_density(21, 0.96, 0.96);
/// let model = AvailabilityModel::from_mixtures(&f, &f);
/// // Read-heavy workload on a flaky ring: loose reads win.
/// let opt = optimal_quorum(&model, 0.9, SearchStrategy::Exhaustive);
/// assert!(opt.spec.q_r() <= 2);
/// ```
pub fn optimal_quorum(
    model: &AvailabilityModel,
    alpha: f64,
    strategy: SearchStrategy,
) -> OptimalAssignment {
    optimal_in_range(model, alpha, strategy, 1, domain_hi(model))
}

/// §5.4, preferred variant: maximize `A(α, q_r)` subject to the write
/// availability floor `W(T − q_r + 1) ≥ min_write`.
///
/// Because `q_w = T − q_r + 1` shrinks as `q_r` grows, `W` is
/// non-decreasing in `q_r`; the feasible region is a suffix
/// `[q_min, ⌊T/2⌋]` found by binary search. Returns `None` when even
/// `q_r = ⌊T/2⌋` misses the floor.
pub fn optimal_with_write_floor(
    model: &AvailabilityModel,
    alpha: f64,
    min_write: f64,
    strategy: SearchStrategy,
) -> Option<OptimalAssignment> {
    let q_min = min_read_quorum_for_write_floor(model, min_write)?;
    Some(optimal_in_range(
        model,
        alpha,
        strategy,
        q_min,
        domain_hi(model),
    ))
}

/// §5.4, weighted variant: maximize `A(ω, α, q) = α·R(q) + ω(1−α)·W(T−q+1)`.
pub fn optimal_weighted(
    model: &AvailabilityModel,
    omega: f64,
    alpha: f64,
    strategy: SearchStrategy,
) -> OptimalAssignment {
    let hi = domain_hi(model);
    let f = |q: usize| model.weighted_availability(omega, alpha, q as u64);
    let r = match strategy {
        SearchStrategy::Exhaustive | SearchStrategy::ContinuousBrent => {
            // The weighted objective has no precomputed continuous form;
            // fall back to the exact scan (the domain is small).
            exhaustive_max(1, hi as usize, f)
        }
        SearchStrategy::EndpointGolden => golden_section_max(1, hi as usize, f),
    };
    let mut out = assemble(model, alpha, r.x as u64, r.evals);
    // `availability` reports the weighted objective for this variant.
    out.availability = r.value;
    out
}

/// Smallest `q_r` in the domain whose paired write quorum meets the floor:
/// `W(T − q_r + 1) ≥ min_write`. `None` if infeasible everywhere.
pub fn min_read_quorum_for_write_floor(model: &AvailabilityModel, min_write: f64) -> Option<u64> {
    let total = model.total_votes();
    let hi = domain_hi(model);
    let feasible = |q_r: u64| model.write_availability(total - q_r + 1) >= min_write;
    if !feasible(hi) {
        return None;
    }
    // Binary search the monotone boundary.
    let (mut lo, mut hi_b) = (1u64, hi);
    while lo < hi_b {
        let mid = lo + (hi_b - lo) / 2;
        if feasible(mid) {
            hi_b = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// All `q_r` whose availability is within `tolerance` of the optimum —
/// the set a measurement with CI half-width `tolerance` cannot
/// distinguish from the argmax. §5.3's "maxima at the endpoints" claims
/// are really statements about this set (flat tops on dense topologies
/// make the strict argmax noise).
pub fn optimal_set(model: &AvailabilityModel, alpha: f64, tolerance: f64) -> Vec<u64> {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let hi = domain_hi(model);
    let best = optimal_quorum(model, alpha, SearchStrategy::Exhaustive).availability;
    (1..=hi)
        .filter(|&q| model.availability(alpha, q) >= best - tolerance)
        .collect()
}

fn domain_hi(model: &AvailabilityModel) -> u64 {
    let t = model.total_votes();
    if t == 1 {
        1
    } else {
        t / 2
    }
}

fn optimal_in_range(
    model: &AvailabilityModel,
    alpha: f64,
    strategy: SearchStrategy,
    lo: u64,
    hi: u64,
) -> OptimalAssignment {
    let f = |q: usize| model.availability(alpha, q as u64);
    let r = match strategy {
        SearchStrategy::Exhaustive => exhaustive_max(lo as usize, hi as usize, f),
        SearchStrategy::EndpointGolden => golden_section_max(lo as usize, hi as usize, f),
        SearchStrategy::ContinuousBrent => return brent_in_range(model, alpha, lo, hi),
    };
    assemble(model, alpha, r.x as u64, r.evals)
}

/// §4.1's continuous route: linearly interpolate `A` between integer
/// `q_r` values, maximize with Brent, then examine the endpoints and the
/// integers bracketing the continuous argmax.
fn brent_in_range(model: &AvailabilityModel, alpha: f64, lo: u64, hi: u64) -> OptimalAssignment {
    let fi = |q: usize| model.availability(alpha, q as u64);
    if hi - lo <= 2 {
        let r = exhaustive_max(lo as usize, hi as usize, fi);
        return assemble(model, alpha, r.x as u64, r.evals);
    }
    let fc = |x: f64| {
        let x = x.clamp(lo as f64, hi as f64);
        let a = x.floor() as usize;
        let b = x.ceil() as usize;
        if a == b {
            fi(a)
        } else {
            let t = x - a as f64;
            (1.0 - t) * fi(a) + t * fi(b)
        }
    };
    let peak = brent_max(lo as f64, hi as f64, 0.25, fc);
    let mut evals = peak.evals;
    let mut candidates = vec![lo, hi];
    let center = peak.x.round() as i64;
    for d in -1..=1 {
        let q = center + d;
        if q >= lo as i64 && q <= hi as i64 {
            candidates.push(q as u64);
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    let mut best = (candidates[0], f64::MIN);
    for &q in &candidates {
        evals += 1;
        let v = fi(q as usize);
        if v > best.1 {
            best = (q, v);
        }
    }
    assemble(model, alpha, best.0, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_stats::DiscreteDist;

    /// Model on T = 10 with component votes concentrated high: large
    /// components are common, so tight quorums are cheap.
    fn high_mass_model() -> AvailabilityModel {
        let d = DiscreteDist::from_pmf(vec![
            0.04, 0.0, 0.0, 0.0, 0.01, 0.02, 0.03, 0.05, 0.15, 0.3, 0.4,
        ]);
        AvailabilityModel::from_mixtures(&d, &d)
    }

    /// Model where components are tiny: only loose read quorums succeed.
    fn low_mass_model() -> AvailabilityModel {
        let d = DiscreteDist::from_pmf(vec![
            0.04, 0.4, 0.3, 0.15, 0.05, 0.03, 0.02, 0.01, 0.0, 0.0, 0.0,
        ]);
        AvailabilityModel::from_mixtures(&d, &d)
    }

    #[test]
    fn all_reads_prefer_q_r_one_when_components_small() {
        let m = low_mass_model();
        let opt = optimal_quorum(&m, 1.0, SearchStrategy::Exhaustive);
        assert_eq!(opt.spec.q_r(), 1);
        assert!((opt.availability - m.read_availability(1)).abs() < 1e-12);
    }

    #[test]
    fn all_writes_prefer_majority_end() {
        // α = 0: A = W(T − q_r + 1), non-decreasing in q_r → max at ⌊T/2⌋.
        let m = high_mass_model();
        let opt = optimal_quorum(&m, 0.0, SearchStrategy::Exhaustive);
        assert_eq!(opt.spec.q_r(), 5);
        assert_eq!(opt.spec.q_w(), 6);
    }

    #[test]
    fn brent_agrees_with_exhaustive_on_paper_like_curves() {
        for model in [high_mass_model(), low_mass_model()] {
            for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let e = optimal_quorum(&model, alpha, SearchStrategy::Exhaustive);
                let b = optimal_quorum(&model, alpha, SearchStrategy::ContinuousBrent);
                assert!(
                    (e.availability - b.availability).abs() < 1e-12,
                    "α = {alpha}: exhaustive {} vs brent {}",
                    e.availability,
                    b.availability
                );
            }
        }
    }

    #[test]
    fn brent_handles_tiny_domains() {
        let d = DiscreteDist::from_pmf(vec![0.2, 0.3, 0.25, 0.15, 0.1]); // T = 4
        let m = AvailabilityModel::from_mixtures(&d, &d);
        let e = optimal_quorum(&m, 0.6, SearchStrategy::Exhaustive);
        let b = optimal_quorum(&m, 0.6, SearchStrategy::ContinuousBrent);
        assert_eq!(e.spec, b.spec);
    }

    #[test]
    fn golden_agrees_with_exhaustive_on_paper_like_curves() {
        for model in [high_mass_model(), low_mass_model()] {
            for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let e = optimal_quorum(&model, alpha, SearchStrategy::Exhaustive);
                let g = optimal_quorum(&model, alpha, SearchStrategy::EndpointGolden);
                assert!(
                    (e.availability - g.availability).abs() < 1e-12,
                    "α = {alpha}: exhaustive {} vs golden {}",
                    e.availability,
                    g.availability
                );
            }
        }
    }

    #[test]
    fn evaluations_accumulate_in_registry() {
        let m = high_mass_model();
        let r = quorum_obs::Registry::new();
        let mut total = 0u64;
        for alpha in [0.0, 0.5, 1.0] {
            let opt = optimal_quorum(&m, alpha, SearchStrategy::Exhaustive);
            opt.observe_into(&r);
            total += opt.evaluations as u64;
        }
        assert!(total > 0);
        assert_eq!(
            r.snapshot()
                .counter(quorum_obs::keys::OPTIMIZER_EVALUATIONS),
            total
        );
    }

    #[test]
    fn optimum_value_dominates_all_choices() {
        let m = high_mass_model();
        for alpha in [0.1, 0.33, 0.9] {
            let opt = optimal_quorum(&m, alpha, SearchStrategy::Exhaustive);
            for q in 1..=5u64 {
                assert!(opt.availability >= m.availability(alpha, q) - 1e-15);
            }
        }
    }

    #[test]
    fn write_floor_restricts_domain() {
        // Low-mass model at α = 1 would pick q_r = 1 (q_w = 10, W ≈ 0).
        let m = low_mass_model();
        let unconstrained = optimal_quorum(&m, 1.0, SearchStrategy::Exhaustive);
        assert_eq!(unconstrained.spec.q_r(), 1);
        assert!(unconstrained.write_availability < 0.01);

        // Demand W ≥ 0.02: forces a larger q_r (smaller q_w). The best
        // write availability this model can offer is W(6) = 0.03.
        let constrained =
            optimal_with_write_floor(&m, 1.0, 0.02, SearchStrategy::Exhaustive).unwrap();
        assert!(constrained.spec.q_r() > 1);
        assert!(constrained.write_availability >= 0.02);
        assert!(constrained.availability <= unconstrained.availability);
    }

    #[test]
    fn write_floor_infeasible_returns_none() {
        let m = low_mass_model();
        // Even the loosest write quorum (q_w = 6) is rarely met.
        let res = optimal_with_write_floor(&m, 0.5, 0.99, SearchStrategy::Exhaustive);
        assert!(res.is_none());
    }

    #[test]
    fn min_read_quorum_boundary_is_exact() {
        let m = low_mass_model();
        let floor = 0.02;
        let q_min = min_read_quorum_for_write_floor(&m, floor).unwrap();
        let t = m.total_votes();
        assert!(m.write_availability(t - q_min + 1) >= floor);
        if q_min > 1 {
            assert!(m.write_availability(t - (q_min - 1) + 1) < floor);
        }
    }

    #[test]
    fn trivial_write_floor_equals_unconstrained() {
        let m = high_mass_model();
        let a = optimal_quorum(&m, 0.5, SearchStrategy::Exhaustive);
        let b = optimal_with_write_floor(&m, 0.5, 0.0, SearchStrategy::Exhaustive).unwrap();
        assert_eq!(a.spec, b.spec);
    }

    #[test]
    fn weighted_omega_zero_optimizes_reads_only() {
        let m = low_mass_model();
        let opt = optimal_weighted(&m, 0.0, 0.5, SearchStrategy::Exhaustive);
        // Objective reduces to α·R(q_r), maximized at q_r = 1.
        assert_eq!(opt.spec.q_r(), 1);
    }

    #[test]
    fn weighted_large_omega_optimizes_writes() {
        let m = high_mass_model();
        let opt = optimal_weighted(&m, 100.0, 0.9, SearchStrategy::Exhaustive);
        assert_eq!(opt.spec.q_r(), 5, "write term dominates → majority end");
    }

    #[test]
    fn reported_read_write_availabilities_consistent() {
        let m = high_mass_model();
        let opt = optimal_quorum(&m, 0.75, SearchStrategy::Exhaustive);
        let manual = 0.75 * opt.read_availability + 0.25 * opt.write_availability;
        assert!((opt.availability - manual).abs() < 1e-12);
        assert_eq!(opt.spec.q_r() + opt.spec.q_w(), m.total_votes() + 1);
    }

    #[test]
    fn optimal_set_contains_argmax_and_respects_tolerance() {
        let m = high_mass_model();
        for alpha in [0.0, 0.5, 1.0] {
            let opt = optimal_quorum(&m, alpha, SearchStrategy::Exhaustive);
            let set = optimal_set(&m, alpha, 0.005);
            assert!(set.contains(&opt.spec.q_r()));
            for &q in &set {
                assert!(m.availability(alpha, q) >= opt.availability - 0.005);
            }
            // Zero tolerance: only exact ties remain.
            let exact = optimal_set(&m, alpha, 0.0);
            for &q in &exact {
                assert!((m.availability(alpha, q) - opt.availability).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn flat_model_has_full_optimal_set() {
        // Point mass at T: every q_r in the domain gives A = α (reads
        // always, writes always) — wait, writes need q_w = T−q+1 ≤ T ✓
        // always granted too, so A = 1 everywhere: the whole domain ties.
        let d = DiscreteDist::point_mass(10, 10);
        let m = AvailabilityModel::from_mixtures(&d, &d);
        let set = optimal_set(&m, 0.5, 0.0);
        assert_eq!(set, (1..=5).collect::<Vec<u64>>());
    }

    #[test]
    fn single_vote_system_degenerates() {
        let d = DiscreteDist::from_pmf(vec![0.2, 0.8]); // T = 1
        let m = AvailabilityModel::from_mixtures(&d, &d);
        let opt = optimal_quorum(&m, 0.5, SearchStrategy::Exhaustive);
        assert_eq!((opt.spec.q_r(), opt.spec.q_w()), (1, 1));
        assert!((opt.availability - 0.8).abs() < 1e-12);
    }
}
