//! The availability function `A(α, q_r)` (Figure 1, steps 2–3).
//!
//! Given per-site component-vote densities `f_i(v)` and submission
//! fractions `r_i`, `w_i`, form the mixtures
//!
//! ```text
//! r(v) = Σ_i r_i f_i(v)      w(v) = Σ_i w_i f_i(v)
//! ```
//!
//! then, with `q_w = T − q_r + 1`,
//!
//! ```text
//! A(α, q_r) = α · Σ_{k = q_r}^{T} r(k)  +  (1 − α) · Σ_{k = T − q_r + 1}^{T} w(k)
//!           = α · R(q_r)               +  (1 − α) · W(q_w).
//! ```
//!
//! `R(q_r)` is the probability an arbitrary read is granted and `W(q_w)`
//! the probability an arbitrary write is granted. The §5.4 variants —
//! write-weighted availability `A(ω, α, q)` and the write floor `A_w` —
//! are simple functions of the same two tails.

use quorum_stats::DiscreteDist;

/// Precomputed tail tables for evaluating `A(α, q_r)` in O(1) per query.
///
/// # Examples
/// ```
/// use quorum_core::AvailabilityModel;
/// use quorum_stats::DiscreteDist;
///
/// // Component always holds 6 of 10 votes.
/// let f = DiscreteDist::point_mass(6, 10);
/// let model = AvailabilityModel::from_mixtures(&f, &f);
/// // q_r = 5 pairs with q_w = 6: both quorums reachable → A = 1.
/// assert_eq!(model.availability(0.5, 5), 1.0);
/// // q_r = 4 pairs with q_w = 7 > 6: writes always fail.
/// assert_eq!(model.availability(0.0, 4), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AvailabilityModel {
    /// `r_tail[v] = Σ_{k≥v} r(k)`.
    r_tail: Vec<f64>,
    /// `w_tail[v] = Σ_{k≥v} w(k)`.
    w_tail: Vec<f64>,
    /// Total votes `T`.
    total: u64,
}

impl AvailabilityModel {
    /// Builds the model from the read and write mixtures `r(v)`, `w(v)`.
    ///
    /// # Panics
    /// Panics if the supports differ or are empty.
    pub fn from_mixtures(r: &DiscreteDist, w: &DiscreteDist) -> Self {
        assert_eq!(
            r.max_votes(),
            w.max_votes(),
            "read and write mixtures must share the vote support"
        );
        assert!(r.max_votes() >= 1, "need at least one vote");
        Self {
            r_tail: r.tail_table(),
            w_tail: w.tail_table(),
            total: r.max_votes() as u64,
        }
    }

    /// Step 2 of the algorithm: builds the mixtures from per-site densities
    /// and access distributions, then the model.
    ///
    /// `read_frac[i]` = `r_i`, `write_frac[i]` = `w_i` (each should sum to
    /// one over sites).
    pub fn from_site_densities(
        densities: &[DiscreteDist],
        read_frac: &[f64],
        write_frac: &[f64],
    ) -> Self {
        for (name, frac) in [("read", read_frac), ("write", write_frac)] {
            let sum: f64 = frac.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "{name} fractions must sum to 1 (got {sum}); normalize the \
                 per-site weights before mixing"
            );
        }
        let r = DiscreteDist::mixture(densities, read_frac);
        let w = DiscreteDist::mixture(densities, write_frac);
        Self::from_mixtures(&r, &w)
    }

    /// Uniform access distribution (`r_i = w_i = 1/n`): `r(v) = w(v)`
    /// (noted in §4.1), so one mixture suffices.
    pub fn uniform_access(densities: &[DiscreteDist]) -> Self {
        let n = densities.len();
        let w = vec![1.0 / n as f64; n];
        Self::from_site_densities(densities, &w, &w)
    }

    /// Total votes `T`.
    pub fn total_votes(&self) -> u64 {
        self.total
    }

    /// `R(q_r)`: probability an arbitrary read collects `q_r` votes.
    pub fn read_availability(&self, q_r: u64) -> f64 {
        self.tail(&self.r_tail, q_r)
    }

    /// `W(q_w)`: probability an arbitrary write collects `q_w` votes.
    pub fn write_availability(&self, q_w: u64) -> f64 {
        self.tail(&self.w_tail, q_w)
    }

    /// `A(α, q_r)` with the tight pairing `q_w = T − q_r + 1` (step 3).
    ///
    /// # Panics
    /// Panics if `α ∉ [0,1]` or `q_r ∉ 1..=⌊T/2⌋` (the optimizer's domain;
    /// `T = 1` admits only `q_r = 1`).
    pub fn availability(&self, alpha: f64, q_r: u64) -> f64 {
        self.check_args(alpha, q_r);
        let q_w = self.total - q_r + 1;
        alpha * self.read_availability(q_r) + (1.0 - alpha) * self.write_availability(q_w)
    }

    /// §5.4's write-weighted availability
    /// `A(ω, α, q) = α·R(q) + ω·(1−α)·W(T−q+1)`.
    pub fn weighted_availability(&self, omega: f64, alpha: f64, q_r: u64) -> f64 {
        assert!(omega >= 0.0, "write weight must be non-negative");
        self.check_args(alpha, q_r);
        let q_w = self.total - q_r + 1;
        alpha * self.read_availability(q_r) + omega * (1.0 - alpha) * self.write_availability(q_w)
    }

    /// Discrete forward difference `A(α, q_r+1) − A(α, q_r)` in closed
    /// form: `−α·r(q_r) + (1−α)·w(T−q_r+1)` — the derivative §4.1 says
    /// Brent's method can exploit (we expose it for diagnostics and for
    /// derivative-guided searches).
    pub fn availability_delta(&self, alpha: f64, q_r: u64) -> f64 {
        self.check_args(alpha, q_r);
        let q_w = self.total - q_r + 1;
        // r(q_r) = R(q_r) − R(q_r+1); w(q_w−1) = W(q_w−1) − W(q_w).
        let r_mass = self.read_availability(q_r) - self.read_availability(q_r + 1);
        let w_mass = self.write_availability(q_w - 1) - self.write_availability(q_w);
        -alpha * r_mass + (1.0 - alpha) * w_mass
    }

    /// Footnote 4: densities estimated on-line by operational sites yield
    /// `A'` (availability conditioned on the submitting site being up);
    /// `A = p·A'` where `p` is site reliability, so argmaxes coincide.
    /// This helper applies the scaling when absolute numbers are wanted.
    pub fn scale_conditional(availability_prime: f64, site_reliability: f64) -> f64 {
        assert!((0.0..=1.0).contains(&site_reliability));
        site_reliability * availability_prime
    }

    fn tail(&self, table: &[f64], v: u64) -> f64 {
        if v as usize >= table.len() {
            0.0
        } else {
            table[v as usize]
        }
    }

    fn check_args(&self, alpha: f64, q_r: u64) {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "α must lie in [0,1], got {alpha}"
        );
        let hi = if self.total == 1 { 1 } else { self.total / 2 };
        assert!(
            q_r >= 1 && q_r <= hi,
            "q_r = {q_r} outside 1..={hi} (T = {})",
            self.total
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple hand-checkable model: component always has exactly `k`
    /// votes with probability 1.
    fn point_model(k: usize, total: usize) -> AvailabilityModel {
        let d = DiscreteDist::point_mass(k, total);
        AvailabilityModel::from_mixtures(&d, &d)
    }

    #[test]
    fn point_mass_availability() {
        // Component always holds 6 of 10 votes.
        let m = point_model(6, 10);
        // Reads: granted iff q_r <= 6.
        assert_eq!(m.read_availability(6), 1.0);
        assert_eq!(m.read_availability(7), 0.0);
        // Writes: q_w = T - q_r + 1; with q_r = 5, q_w = 6 <= 6 → granted.
        assert_eq!(m.availability(0.0, 5), 1.0);
        // q_r = 4 → q_w = 7 > 6 → denied.
        assert_eq!(m.availability(0.0, 4), 0.0);
        // Mixed: α = .5, q_r = 4: reads succeed (4 ≤ 6), writes fail.
        assert_eq!(m.availability(0.5, 4), 0.5);
    }

    #[test]
    fn availability_formula_matches_manual_sum() {
        let r = DiscreteDist::from_pmf(vec![0.1, 0.2, 0.3, 0.25, 0.15]); // T = 4
        let w = DiscreteDist::from_pmf(vec![0.3, 0.3, 0.2, 0.1, 0.1]);
        let m = AvailabilityModel::from_mixtures(&r, &w);
        let alpha = 0.75;
        let q_r = 2u64;
        let q_w = 4 - q_r + 1; // 3
        let manual_r: f64 = (q_r as usize..=4).map(|k| r.pmf(k)).sum();
        let manual_w: f64 = (q_w as usize..=4).map(|k| w.pmf(k)).sum();
        let expect = alpha * manual_r + (1.0 - alpha) * manual_w;
        assert!((m.availability(alpha, q_r) - expect).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_pure_write_availability() {
        let m = point_model(8, 10);
        for q_r in 1..=5u64 {
            let q_w = 10 - q_r + 1;
            assert_eq!(
                m.availability(0.0, q_r),
                m.write_availability(q_w),
                "q_r {q_r}"
            );
        }
    }

    #[test]
    fn alpha_one_is_pure_read_availability() {
        let m = point_model(3, 10);
        for q_r in 1..=5u64 {
            assert_eq!(m.availability(1.0, q_r), m.read_availability(q_r));
        }
    }

    #[test]
    fn read_availability_monotone_in_q_r() {
        let d = DiscreteDist::from_pmf(vec![0.1; 10]).normalized();
        let m = AvailabilityModel::from_mixtures(&d, &d);
        for q in 1..9u64 {
            assert!(m.read_availability(q) >= m.read_availability(q + 1));
        }
    }

    #[test]
    fn uniform_access_makes_r_equal_w() {
        let f = vec![
            DiscreteDist::point_mass(1, 3),
            DiscreteDist::point_mass(2, 3),
            DiscreteDist::point_mass(3, 3),
        ];
        let m = AvailabilityModel::uniform_access(&f);
        for v in 0..=3u64 {
            assert!((m.read_availability(v) - m.write_availability(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_availability_reduces_to_plain_at_omega_one() {
        let d = DiscreteDist::uniform(10);
        let m = AvailabilityModel::from_mixtures(&d, &d);
        for q_r in 1..=5u64 {
            assert!(
                (m.weighted_availability(1.0, 0.6, q_r) - m.availability(0.6, q_r)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn weighted_availability_downweights_writes() {
        let d = DiscreteDist::uniform(10);
        let m = AvailabilityModel::from_mixtures(&d, &d);
        assert!(m.weighted_availability(0.5, 0.5, 3) < m.availability(0.5, 3));
        // ω = 0 ignores writes entirely.
        assert!(
            (m.weighted_availability(0.0, 0.5, 3) - 0.5 * m.read_availability(3)).abs() < 1e-12
        );
    }

    #[test]
    fn delta_matches_direct_difference() {
        let r = DiscreteDist::from_pmf(vec![
            0.1, 0.15, 0.2, 0.25, 0.1, 0.08, 0.05, 0.03, 0.02, 0.01, 0.01,
        ]);
        let m = AvailabilityModel::from_mixtures(&r, &r);
        for alpha in [0.0, 0.3, 0.8, 1.0] {
            for q in 1..5u64 {
                let direct = m.availability(alpha, q + 1) - m.availability(alpha, q);
                let closed = m.availability_delta(alpha, q);
                assert!(
                    (direct - closed).abs() < 1e-12,
                    "α={alpha} q={q}: {direct} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn conditional_scaling() {
        assert!((AvailabilityModel::scale_conditional(0.75, 0.96) - 0.72).abs() < 1e-12);
    }

    #[test]
    fn skewed_access_distribution_weights_sites() {
        // Site 0 always sees 3 votes, site 1 always 1 vote; reads go to
        // site 0 only, writes to site 1 only.
        let f = vec![
            DiscreteDist::point_mass(3, 4),
            DiscreteDist::point_mass(1, 4),
        ];
        let m = AvailabilityModel::from_site_densities(&f, &[1.0, 0.0], &[0.0, 1.0]);
        assert_eq!(m.read_availability(2), 1.0); // reads see 3 ≥ 2
        assert_eq!(m.write_availability(2), 0.0); // writes see 1 < 2
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn q_r_above_half_rejected() {
        point_model(5, 10).availability(0.5, 6);
    }

    #[test]
    #[should_panic(expected = "α must lie")]
    fn bad_alpha_rejected() {
        point_model(5, 10).availability(1.5, 3);
    }

    #[test]
    #[should_panic(expected = "fractions must sum to 1")]
    fn unnormalized_fractions_rejected() {
        let f = vec![
            DiscreteDist::point_mass(1, 2),
            DiscreteDist::point_mass(2, 2),
        ];
        AvailabilityModel::from_site_densities(&f, &[1.0, 1.0], &[0.5, 0.5]);
    }
}
