//! Ablation: exhaustive argmax vs the §4.1 endpoint-aware golden-section
//! search, on paper-shaped availability models (T = 101 and a larger
//! synthetic T to expose the asymptotic gap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quorum_core::analytic::{fully_connected_density, ring_density};
use quorum_core::optimal::optimal_quorum;
use quorum_core::{AvailabilityModel, SearchStrategy};
use quorum_stats::DiscreteDist;
use std::hint::black_box;

fn models() -> Vec<(&'static str, AvailabilityModel)> {
    let ring = ring_density(101, 0.96, 0.96);
    let fc = fully_connected_density(101, 0.96, 0.96);
    // Synthetic T = 4001 unimodal model: golden section shines when the
    // domain is large.
    let big = {
        let n = 4001usize;
        let pmf: Vec<f64> = (0..=n)
            .map(|v| {
                let x = v as f64 / n as f64;
                (-((x - 0.8) * 14.0).powi(2)).exp()
            })
            .collect();
        DiscreteDist::from_pmf(pmf).normalized()
    };
    vec![
        ("ring101", AvailabilityModel::from_mixtures(&ring, &ring)),
        ("fc101", AvailabilityModel::from_mixtures(&fc, &fc)),
        (
            "synthetic4001",
            AvailabilityModel::from_mixtures(&big, &big),
        ),
    ]
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_quorum");
    for (name, model) in models() {
        for (label, strat) in [
            ("exhaustive", SearchStrategy::Exhaustive),
            ("endpoint_golden", SearchStrategy::EndpointGolden),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &model, |b, m| {
                b.iter(|| black_box(optimal_quorum(m, 0.75, strat)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
