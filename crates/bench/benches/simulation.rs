//! End-to-end simulator throughput: one small measurement batch per
//! iteration, on a sparse and a dense paper topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quorum_core::{QuorumConsensus, QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::simulation::NullObserver;
use quorum_replica::{Simulation, Workload};
use std::hint::black_box;

fn bench_batches(c: &mut Criterion) {
    let params = SimParams {
        warmup_accesses: 200,
        batch_accesses: 2_000,
        ..SimParams::paper()
    };
    let mut group = c.benchmark_group("simulation_batch_2k_accesses");
    group.sample_size(10);
    for chords in [0usize, 256] {
        let topo = Topology::ring_with_chords(101, chords);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("chords={chords}")),
            &chords,
            |b, _| {
                let mut batch = 0u64;
                b.iter(|| {
                    let mut sim = Simulation::new(&topo, params, Workload::uniform(101, 0.5), 99);
                    let mut proto = QuorumConsensus::new(
                        VoteAssignment::uniform(101),
                        QuorumSpec::from_read_quorum(50, 101)
                            .expect("(50, 52) of 101 satisfies both quorum rules"),
                    );
                    batch += 1;
                    black_box(sim.run_indexed_batch(&mut proto, &mut NullObserver, batch))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batches);
criterion_main!(benches);
