//! Benchmarks the Gilbert `Rel(m, r)` recursion and the full closed-form
//! densities of §4.2 — the costs an off-line (analytic) optimizer pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quorum_core::analytic::{fully_connected_density, gilbert_rel, ring_density};
use std::hint::black_box;

fn bench_rel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gilbert_rel");
    for m in [10usize, 50, 101, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| black_box(gilbert_rel(m, 0.96)))
        });
    }
    group.finish();
}

fn bench_densities(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_density");
    group.bench_function("ring_101", |b| {
        b.iter(|| black_box(ring_density(101, 0.96, 0.96)))
    });
    group.bench_function("fully_connected_101", |b| {
        b.iter(|| black_box(fully_connected_density(101, 0.96, 0.96)))
    });
    group.finish();
}

criterion_group!(benches, bench_rel, bench_densities);
criterion_main!(benches);
