//! Ablation: counting vs exponentially-decayed `f̂_i` estimators
//! (DESIGN.md §5) — per-observation cost and model-build cost.

use criterion::{criterion_group, criterion_main, Criterion};
use quorum_core::SiteEstimators;
use std::hint::black_box;

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_record");
    group.bench_function("counting", |b| {
        let mut est = SiteEstimators::counting(101, 101);
        let mut i = 0usize;
        b.iter(|| {
            est.record(i % 101, (i % 102) as u64);
            i += 1;
        })
    });
    group.bench_function("decayed", |b| {
        let mut est = SiteEstimators::decayed(101, 101, 0.999);
        let mut i = 0usize;
        b.iter(|| {
            est.record(i % 101, (i % 102) as u64);
            i += 1;
        })
    });
    group.finish();
}

fn bench_model_build(c: &mut Criterion) {
    let mut est = SiteEstimators::counting(101, 101);
    for i in 0..101_000usize {
        est.record(i % 101, (i % 102) as u64);
    }
    c.bench_function("estimator_model_build", |b| {
        b.iter(|| black_box(est.model_uniform()))
    });
}

criterion_group!(benches, bench_record, bench_model_build);
criterion_main!(benches);
