//! Benchmarks component recomputation — the simulator's hot loop — across
//! the paper's topology range, plus the dirty-flag cache ablation
//! (DESIGN.md §5: full BFS per event vs lazy recomputation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quorum_graph::{
    ComponentCache, ComponentView, DeltaConnectivity, NetworkState, Topology, TopologyEvent,
};
use std::hint::black_box;

/// Deterministic event trace: `len` toggles (each a real transition when
/// replayed from all-up). Down entities always repair but up entities
/// fail only 1 in 24 draws, matching the simulator's mostly-up steady
/// state (§5.2 reliability 0.96). Inline LCG, no RNG dependency.
fn event_trace(topo: &Topology, len: usize) -> Vec<TopologyEvent> {
    let n = topo.num_sites();
    let m = topo.num_links();
    let mut state = NetworkState::all_up(topo);
    let mut x = 0x2545F4914F6CDD1Du64;
    let mut draw = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as usize
    };
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let pick = draw() % (n + m);
        let up_now = if pick < n {
            state.site_up(pick)
        } else {
            state.link_up(pick - n)
        };
        if up_now && draw() % 24 != 0 {
            continue;
        }
        if pick < n {
            state.set_site(pick, !up_now);
            out.push(TopologyEvent::Site {
                site: pick,
                up: !up_now,
            });
        } else {
            state.set_link(pick - n, !up_now);
            out.push(TopologyEvent::Link {
                link: pick - n,
                up: !up_now,
            });
        }
    }
    out
}

fn apply_to_state(state: &mut NetworkState, ev: TopologyEvent) {
    match ev {
        TopologyEvent::Site { site, up } => assert!(state.set_site(site, up)),
        TopologyEvent::Link { link, up } => assert!(state.set_link(link, up)),
    }
}

/// The simulator's hot-loop shape: 1 topology event per 8 component
/// reads, replayed under each kernel. `full_bfs` pays a queue-based BFS
/// per event, `bitset_bfs` a word-parallel rebuild per event, and
/// `delta` only the affected component (or nothing at all).
fn bench_event_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_replay");
    for chords in [0usize, 256, 1024] {
        let topo = Topology::ring_with_chords(101, chords);
        let votes = vec![1u64; 101];
        let trace = event_trace(&topo, 256);
        group.bench_with_input(BenchmarkId::new("full_bfs", chords), &chords, |b, _| {
            b.iter(|| {
                let mut state = NetworkState::all_up(&topo);
                let mut cache = ComponentCache::new();
                let mut acc = 0u64;
                for (i, &ev) in trace.iter().enumerate() {
                    apply_to_state(&mut state, ev);
                    cache.apply_event(&topo, &state, &votes, ev);
                    for k in 0..8usize {
                        acc += cache.view(&topo, &state, &votes).votes_of((i + k) % 101);
                    }
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("bitset_bfs", chords), &chords, |b, _| {
            b.iter(|| {
                let mut state = NetworkState::all_up(&topo);
                let mut acc = 0u64;
                for (i, &ev) in trace.iter().enumerate() {
                    apply_to_state(&mut state, ev);
                    let view = DeltaConnectivity::new(&topo, &state, &votes).to_view();
                    for k in 0..8usize {
                        acc += view.votes_of((i + k) % 101);
                    }
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("delta", chords), &chords, |b, _| {
            b.iter(|| {
                let mut state = NetworkState::all_up(&topo);
                let mut cache = ComponentCache::incremental();
                cache.view(&topo, &state, &votes);
                let mut acc = 0u64;
                for (i, &ev) in trace.iter().enumerate() {
                    apply_to_state(&mut state, ev);
                    cache.apply_event(&topo, &state, &votes, ev);
                    for k in 0..8usize {
                        acc += cache.view(&topo, &state, &votes).votes_of((i + k) % 101);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("component_bfs");
    for chords in [0usize, 16, 256, 4949] {
        let topo = Topology::ring_with_chords(101, chords);
        let votes = vec![1u64; 101];
        let mut state = NetworkState::all_up(&topo);
        // Degrade ~4% of sites and links, like the steady state.
        for s in (0..101).step_by(25) {
            state.set_site(s, false);
        }
        for l in (0..topo.num_links()).step_by(25) {
            state.set_link(l, false);
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("chords={chords}")),
            &chords,
            |b, _| {
                b.iter(|| {
                    let view = ComponentView::compute(&topo, &state, &votes);
                    black_box(view.votes_of(0))
                })
            },
        );
    }
    group.finish();
}

fn bench_cache_ablation(c: &mut Criterion) {
    // Access pattern with 1 topology event per 8 accesses: the cache
    // should win ~8x over always-recompute.
    let topo = Topology::ring_with_chords(101, 256);
    let votes = vec![1u64; 101];
    let mut group = c.benchmark_group("cache_ablation");
    group.bench_function("always_recompute", |b| {
        let state = NetworkState::all_up(&topo);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..64 {
                let view = ComponentView::compute(&topo, &state, &votes);
                acc += view.votes_of(i % 101);
            }
            black_box(acc)
        })
    });
    group.bench_function("dirty_flag_cache", |b| {
        let mut state = NetworkState::all_up(&topo);
        b.iter(|| {
            let mut cache = ComponentCache::new();
            let mut acc = 0u64;
            for i in 0..64usize {
                if i % 8 == 0 {
                    state.set_site(i % 101, i % 16 == 0);
                    cache.invalidate();
                }
                acc += cache.view(&topo, &state, &votes).votes_of(i % 101);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bfs, bench_cache_ablation, bench_event_replay);
criterion_main!(benches);
