//! Benchmarks component recomputation — the simulator's hot loop — across
//! the paper's topology range, plus the dirty-flag cache ablation
//! (DESIGN.md §5: full BFS per event vs lazy recomputation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quorum_graph::{ComponentCache, ComponentView, NetworkState, Topology};
use std::hint::black_box;

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("component_bfs");
    for chords in [0usize, 16, 256, 4949] {
        let topo = Topology::ring_with_chords(101, chords);
        let votes = vec![1u64; 101];
        let mut state = NetworkState::all_up(&topo);
        // Degrade ~4% of sites and links, like the steady state.
        for s in (0..101).step_by(25) {
            state.set_site(s, false);
        }
        for l in (0..topo.num_links()).step_by(25) {
            state.set_link(l, false);
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("chords={chords}")),
            &chords,
            |b, _| {
                b.iter(|| {
                    let view = ComponentView::compute(&topo, &state, &votes);
                    black_box(view.votes_of(0))
                })
            },
        );
    }
    group.finish();
}

fn bench_cache_ablation(c: &mut Criterion) {
    // Access pattern with 1 topology event per 8 accesses: the cache
    // should win ~8x over always-recompute.
    let topo = Topology::ring_with_chords(101, 256);
    let votes = vec![1u64; 101];
    let mut group = c.benchmark_group("cache_ablation");
    group.bench_function("always_recompute", |b| {
        let state = NetworkState::all_up(&topo);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..64 {
                let view = ComponentView::compute(&topo, &state, &votes);
                acc += view.votes_of(i % 101);
            }
            black_box(acc)
        })
    });
    group.bench_function("dirty_flag_cache", |b| {
        let mut state = NetworkState::all_up(&topo);
        b.iter(|| {
            let mut cache = ComponentCache::new();
            let mut acc = 0u64;
            for i in 0..64usize {
                if i % 8 == 0 {
                    state.set_site(i % 101, i % 16 == 0);
                    cache.invalidate();
                }
                acc += cache.view(&topo, &state, &votes).votes_of(i % 101);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bfs, bench_cache_ablation);
criterion_main!(benches);
