//! Cost of regenerating one paper figure end-to-end at quick scale:
//! simulate a topology, build the curve family, optimize every α.
//! One bench per figure (Figures 2–7 → chords 0, 1, 2, 4, 16, 256).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quorum_core::{QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_des::SimParams;
use quorum_replica::scenario::{PaperScenario, PAPER_ALPHAS};
use quorum_replica::{run_static, CurveSet, RunConfig, Workload};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_regeneration");
    group.sample_size(10);
    for sc in PaperScenario::all()
        .into_iter()
        .filter(|s| s.figure().is_some())
    {
        let topo = sc.topology();
        let fig = sc.figure().expect("filtered");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("fig{fig}_chords{}", sc.chords)),
            &sc,
            |b, _| {
                b.iter(|| {
                    let results = run_static(
                        &topo,
                        VoteAssignment::uniform(101),
                        QuorumSpec::from_read_quorum(50, 101)
                            .expect("(50, 52) of 101 satisfies both quorum rules"),
                        Workload::uniform(101, 0.5),
                        RunConfig {
                            params: SimParams {
                                warmup_accesses: 500,
                                batch_accesses: 5_000,
                                min_batches: 2,
                                max_batches: 2,
                                ci_half_width: 0.05,
                                ..SimParams::paper()
                            },
                            seed: 1,
                            threads: 2,
                        },
                    );
                    let curves = CurveSet::from_run(&results);
                    let opts: Vec<u64> = PAPER_ALPHAS
                        .iter()
                        .map(|&a| curves.optimal(a, SearchStrategy::EndpointGolden).spec.q_r())
                        .collect();
                    black_box(opts)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
