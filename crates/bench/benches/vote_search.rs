//! Benchmarks the non-partitionable-model machinery: the subset-sum DP
//! behind exact availability, and the two vote-search strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quorum_core::nonpartition::{
    model_uniform_access, optimal_votes_exhaustive, optimal_votes_hill_climb, site_density,
};
use std::hint::black_box;

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("nonpartition_dp");
    for n in [8usize, 32, 101] {
        let votes = vec![1u64; n];
        let rel = vec![0.96; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(site_density(&votes, &rel, 0)))
        });
    }
    group.finish();
}

fn bench_model_build(c: &mut Criterion) {
    let votes = vec![1u64; 31];
    let rel = vec![0.9; 31];
    c.bench_function("nonpartition_model_31", |b| {
        b.iter(|| black_box(model_uniform_access(&votes, &rel)))
    });
}

fn bench_searches(c: &mut Criterion) {
    let mut group = c.benchmark_group("vote_search");
    group.sample_size(10);
    let rel5 = [0.95, 0.9, 0.85, 0.8, 0.75];
    group.bench_function("exhaustive_n5_max2", |b| {
        b.iter(|| black_box(optimal_votes_exhaustive(&rel5, 0.5, 2)))
    });
    group.bench_function("hill_climb_n5_max2", |b| {
        b.iter(|| black_box(optimal_votes_hill_climb(&rel5, 0.5, 2)))
    });
    let rel12: Vec<f64> = (0..12).map(|i| 0.8 + 0.015 * i as f64).collect();
    group.bench_function("hill_climb_n12_max3", |b| {
        b.iter(|| black_box(optimal_votes_hill_climb(&rel12, 0.5, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_dp, bench_model_build, bench_searches);
criterion_main!(benches);
