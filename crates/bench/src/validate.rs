//! Library core of the `validate_curves` binary.
//!
//! The figure harness measures one component-vote histogram per topology
//! and derives every `A(α, q_r)` point from it through the Figure-1
//! model. This module spot-checks that shortcut: for a grid of
//! `(α, q_r)` cells it *directly* simulates the static protocol at that
//! exact assignment and workload, then compares the measured grant rate
//! against the curve prediction. Living in the library (rather than the
//! binary) lets the integration tests drive the same code path at a tiny
//! scale and assert on the produced [`RunManifest`].

use crate::{run_jobs, Args, Scale};
use quorum_core::metrics::AvailabilityMetric;
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_obs::{keys, Registry, RunManifest};
use quorum_replica::scenario::PaperScenario;
use quorum_replica::{run_static_observed, CurveSet, RunConfig, RunResults, Workload};

/// Configuration of one validation sweep.
#[derive(Debug, Clone)]
pub struct ValidateOpts {
    /// Chord count selecting the paper topology.
    pub chords: usize,
    /// Master seed (grid cells derive disjoint seeds from it).
    pub seed: u64,
    /// Worker threads for the reference run and the cell sweep.
    pub threads: usize,
    /// Simulation scale.
    pub params: SimParams,
    /// The `(α, q_r)` cells to simulate directly.
    pub grid: Vec<(f64, u64)>,
}

impl ValidateOpts {
    /// Reads `--topology/--seed/--threads` plus the scale flags.
    pub fn from_cli(args: &Args) -> Self {
        Self {
            chords: args.get_or("topology", 4),
            seed: args.get_or("seed", 6),
            threads: args.get_or("threads", crate::default_threads()),
            params: Scale::from_args(args).params(),
            grid: default_grid(),
        }
    }
}

/// The binary's default 15-cell grid: the α extremes plus the midpoint,
/// crossed with `q_r` from 1 to the majority end.
pub fn default_grid() -> Vec<(f64, u64)> {
    [0.0, 0.5, 1.0]
        .iter()
        .flat_map(|&a| [1u64, 10, 25, 40, 50].map(|q| (a, q)))
        .collect()
}

/// One validated `(α, q_r)` cell.
#[derive(Debug, Clone, Copy)]
pub struct CellOutcome {
    /// Read ratio of the cell's workload.
    pub alpha: f64,
    /// Read quorum simulated directly.
    pub q_r: u64,
    /// Grant rate measured by the direct simulation.
    pub direct: f64,
    /// The curve family's prediction for the same point.
    pub predicted: f64,
    /// Whether every granted access was one-copy serializable.
    pub serializable: bool,
}

/// Everything the sweep produced, manifest included.
#[derive(Debug)]
pub struct ValidateReport {
    /// Per-cell outcomes in grid order.
    pub cells: Vec<CellOutcome>,
    /// max |direct − predicted| over the grid.
    pub worst_delta: f64,
    /// CI half-width of the reference run (both sides of the comparison
    /// carry at least this much noise).
    pub reference_half_width: f64,
    /// Manifest covering the reference run and the whole sweep.
    pub manifest: RunManifest,
}

/// Runs the reference simulation, the direct grid, and the comparison.
pub fn run(opts: &ValidateOpts) -> ValidateReport {
    let sc = PaperScenario::new(opts.chords);
    let topo = sc.topology();
    let n = topo.num_sites();
    let total = n as u64;
    let registry = Registry::new();
    let votes = VoteAssignment::uniform(n);

    // Reference: one histogram run → curve family.
    let reference = {
        let _t = registry.scoped_timer(keys::VALIDATE_REFERENCE);
        run_static_observed(
            &topo,
            votes.clone(),
            QuorumSpec::from_read_quorum(total / 2, total).expect("valid"),
            Workload::uniform(n, 0.5),
            RunConfig {
                params: opts.params,
                seed: opts.seed,
                threads: opts.threads,
            },
            &registry,
        )
    };
    let curves = CurveSet::from_run(&reference);

    // Grid of direct simulations, load-balanced across workers. All cells
    // share the registry (its counters are atomic), so the manifest totals
    // cover the entire sweep.
    let raw_cells = {
        let _t = registry.scoped_timer(keys::VALIDATE_GRID);
        let topo_ref = &topo;
        let reg = &registry;
        let params = opts.params;
        let seed = opts.seed;
        type CellJob<'a> = Box<dyn FnOnce() -> (f64, u64, RunResults) + Send + 'a>;
        let jobs: Vec<CellJob> = opts
            .grid
            .iter()
            .map(|&(alpha, q_r)| {
                Box::new(move || {
                    let res = run_static_observed(
                        topo_ref,
                        VoteAssignment::uniform(n),
                        QuorumSpec::from_read_quorum(q_r, total).expect("valid"),
                        Workload::uniform(n, alpha),
                        RunConfig {
                            params,
                            seed: seed + 1000 + q_r + (alpha * 7.0) as u64,
                            threads: 1,
                        },
                        reg,
                    );
                    (alpha, q_r, res)
                }) as CellJob
            })
            .collect();
        run_jobs(opts.threads, jobs)
    };

    let mut worst: f64 = 0.0;
    let cells: Vec<CellOutcome> = raw_cells
        .into_iter()
        .map(|(alpha, q_r, res)| {
            let direct = res.availability();
            let predicted = curves.availability(AvailabilityMetric::Accessibility, alpha, q_r);
            worst = worst.max((direct - predicted).abs());
            CellOutcome {
                alpha,
                q_r,
                direct,
                predicted,
                serializable: res.is_one_copy_serializable(),
            }
        })
        .collect();

    let reference_half_width = reference.interval().map(|ci| ci.half_width).unwrap_or(0.0);
    let mut manifest = manifest(&sc, opts, &votes, &reference, &registry);
    manifest.set_metric(keys::VALIDATE_WORST_DELTA, worst);
    manifest.set_metric(keys::VALIDATE_REFERENCE_HALF_WIDTH, reference_half_width);

    ValidateReport {
        cells,
        worst_delta: worst,
        reference_half_width,
        manifest,
    }
}

fn manifest(
    sc: &PaperScenario,
    opts: &ValidateOpts,
    votes: &VoteAssignment,
    reference: &RunResults,
    registry: &Registry,
) -> RunManifest {
    let mut m = crate::manifest::manifest_for_run(
        "validate_curves",
        opts.seed,
        &opts.params,
        &sc.label(),
        sc.chords,
        &sc.topology(),
        votes,
        reference,
        registry,
    );
    // The sweep ran 1 + grid.len() simulations; report total batches, not
    // just the reference run's.
    m.batches = m.counter(keys::RUN_BATCHES);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_options_parse() {
        let args = Args::from_args(
            [
                "--topology",
                "16",
                "--seed",
                "9",
                "--threads",
                "2",
                "--quick",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        let opts = ValidateOpts::from_cli(&args);
        assert_eq!(opts.chords, 16);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.params, SimParams::quick());
        assert_eq!(opts.grid.len(), 15);
    }
}
