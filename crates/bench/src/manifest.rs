//! Run-manifest assembly for the experiment binaries.
//!
//! Every driver that accepts `--manifest <path>` funnels through here:
//! the helpers translate simulator-side types ([`SimParams`],
//! [`Topology`], [`quorum_replica::RunResults`]) into the
//! dependency-free records `quorum-obs` serialises, and
//! [`write_requested`] handles the flag itself so the binaries stay thin.

use crate::Args;
use quorum_core::VoteAssignment;
use quorum_des::{DurationDist, SimParams};
use quorum_graph::Topology;
use quorum_obs::{Registry, RunManifest, SimParamsRecord, TopologyRecord};
use quorum_replica::RunResults;
use std::path::Path;

/// Manifest name of a duration-distribution shape.
pub fn dist_name(d: DurationDist) -> String {
    match d {
        DurationDist::Exponential => "exponential".into(),
        DurationDist::Fixed => "fixed".into(),
        DurationDist::Uniform => "uniform".into(),
    }
}

/// Converts live simulation parameters into the manifest record.
pub fn sim_params_record(p: &SimParams) -> SimParamsRecord {
    SimParamsRecord {
        mu_access: p.mu_access,
        rho: p.rho,
        reliability: p.reliability,
        warmup_accesses: p.warmup_accesses,
        batch_accesses: p.batch_accesses,
        min_batches: p.min_batches,
        max_batches: p.max_batches,
        confidence: p.confidence,
        ci_half_width: p.ci_half_width,
        fail_dist: dist_name(p.fail_dist),
        repair_dist: dist_name(p.repair_dist),
    }
}

/// Describes a topology for the manifest.
pub fn topology_record(label: &str, chords: usize, topo: &Topology) -> TopologyRecord {
    TopologyRecord {
        label: label.to_string(),
        sites: topo.num_sites() as u64,
        links: topo.num_links() as u64,
        chords: chords as u64,
    }
}

/// Assembles a manifest from one observed run: parameters, topology,
/// vote assignment, batch count, CI-convergence trace, headline
/// availability metrics, and every counter/timer/gauge in `registry`.
#[allow(clippy::too_many_arguments)]
pub fn manifest_for_run(
    bin: &str,
    seed: u64,
    params: &SimParams,
    label: &str,
    chords: usize,
    topo: &Topology,
    votes: &VoteAssignment,
    results: &RunResults,
    registry: &Registry,
) -> RunManifest {
    let mut m = RunManifest::new(bin, seed);
    m.params = sim_params_record(params);
    m.topology = topology_record(label, chords, topo);
    m.votes = votes.as_slice().to_vec();
    m.batches = results.batches;
    m.ci_trace = results.ci_trace.clone();
    m.absorb_snapshot(&registry.snapshot());
    m.set_metric(quorum_obs::keys::AVAILABILITY, results.availability());
    m.set_metric(
        quorum_obs::keys::READ_AVAILABILITY,
        results.combined.read_availability(),
    );
    m.set_metric(
        quorum_obs::keys::WRITE_AVAILABILITY,
        results.combined.write_availability(),
    );
    if let Some(ci) = results.interval() {
        m.set_metric(quorum_obs::keys::CI_HALF_WIDTH, ci.half_width);
    }
    m
}

/// Writes `manifest` to the path given by `--manifest <path>`, if any.
///
/// Returns `true` when a manifest was written. The extension picks the
/// format (`.csv` → flat CSV, anything else → pretty JSON).
pub fn write_requested(args: &Args, manifest: &RunManifest) -> bool {
    let Some(path) = args.get::<String>("manifest") else {
        assert!(
            !args.flag("manifest"),
            "--manifest requires a path (e.g. --manifest run.json)"
        );
        return false;
    };
    manifest
        .write_to(Path::new(&path))
        .unwrap_or_else(|e| panic!("cannot write --manifest {path:?}: {e}"));
    println!("# wrote manifest {path}");
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_obs::keys;

    #[test]
    fn dist_names_are_stable() {
        assert_eq!(dist_name(DurationDist::Exponential), "exponential");
        assert_eq!(dist_name(DurationDist::Fixed), "fixed");
        assert_eq!(dist_name(DurationDist::Uniform), "uniform");
    }

    #[test]
    fn assembled_manifest_round_trips() {
        use quorum_core::QuorumSpec;
        use quorum_replica::{run_static_observed, RunConfig, Workload};

        let topo = Topology::ring(9);
        let votes = VoteAssignment::uniform(9);
        let registry = Registry::new();
        let params = SimParams {
            warmup_accesses: 200,
            batch_accesses: 2_000,
            min_batches: 2,
            max_batches: 2,
            ..SimParams::paper()
        };
        let res = run_static_observed(
            &topo,
            votes.clone(),
            QuorumSpec::majority(9),
            Workload::uniform(9, 0.5),
            RunConfig {
                params,
                seed: 3,
                threads: 1,
            },
            &registry,
        );
        let m = manifest_for_run(
            "unit", 3, &params, "ring-9", 0, &topo, &votes, &res, &registry,
        );
        assert_eq!(m.batches, res.batches);
        assert_eq!(m.topology.sites, 9);
        assert_eq!(m.votes.len(), 9);
        assert_eq!(m.counter(keys::DES_EVENTS), res.combined.events_processed);
        assert!(m.phase_secs("replica.run_static") > 0.0);
        let back = RunManifest::parse(&m.to_json().to_string_pretty()).expect("round-trip");
        assert_eq!(back.counters, m.counters);
        assert_eq!(back.params.fail_dist, "exponential");
    }
}
