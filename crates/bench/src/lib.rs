//! Shared harness for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §4 for the index and EXPERIMENTS.md for the
//! recorded outcomes). This library provides the tiny argument parser,
//! table formatting, the scale presets, and a crossbeam-based parallel
//! driver for sweeping many simulation configurations with dynamic load
//! balancing (paper topologies differ by 50× in link count, so static
//! partitioning wastes workers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use quorum_des::SimParams;
use std::collections::BTreeMap;

pub mod manifest;
pub mod validate;

/// Minimal `--key value` / `--flag` argument parser.
///
/// Values live in a `BTreeMap` (quorum-lint `no-unordered-iteration`):
/// today only keyed lookup happens here, but argument maps are exactly
/// the kind of state that later grows a "dump all options into the
/// manifest" loop, and that loop must be ordered from day one.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: Vec<String>,
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                panic!("unexpected positional argument {arg:?}");
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let v = iter.next().expect("peeked");
                    out.values.insert(name.to_string(), v);
                }
                _ => out.flags.push(name.to_string()),
            }
        }
        out
    }

    /// True if `--name` was passed as a bare flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Value of `--name <value>`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T>
    where
        T::Err: std::fmt::Debug,
    {
        self.values.get(name).map(|v| {
            v.parse()
                .unwrap_or_else(|e| panic!("--{name} {v:?}: {e:?}"))
        })
    }

    /// Value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.get(name).unwrap_or(default)
    }
}

/// Simulation scale preset chosen on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly: 30 k-access batches (default).
    Quick,
    /// Intermediate: 150 k-access batches.
    Medium,
    /// The paper's §5.2 parameters: 100 k warm-up, 1 M-access batches,
    /// 5–18 batches, CI ±0.5 %.
    Paper,
}

impl Scale {
    /// Reads `--paper-scale` / `--medium-scale` / `--quick` flags
    /// (`--quick` is the default and accepted explicitly so CI recipes
    /// can spell out the scale they run at).
    pub fn from_args(args: &Args) -> Self {
        if args.flag("paper-scale") {
            Scale::Paper
        } else if args.flag("medium-scale") {
            Scale::Medium
        } else {
            Scale::Quick
        }
    }

    /// The corresponding simulation parameters.
    pub fn params(self) -> SimParams {
        match self {
            Scale::Quick => SimParams::quick(),
            Scale::Medium => SimParams {
                warmup_accesses: 20_000,
                batch_accesses: 150_000,
                min_batches: 4,
                max_batches: 8,
                ci_half_width: 0.01,
                ..SimParams::paper()
            },
            Scale::Paper => SimParams::paper(),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

/// Runs `jobs` closures across `threads` workers with dynamic (queue-based)
/// load balancing, returning results in job order.
///
/// Uses a crossbeam channel as the work queue: paper topologies range from
/// 101 to 5050 links, so equal-sized static chunks would leave most
/// workers idle while one grinds the fully-connected case.
pub fn run_jobs<T: Send>(threads: usize, jobs: Vec<Box<dyn FnOnce() -> T + Send + '_>>) -> Vec<T> {
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Box<dyn FnOnce() -> T + Send + '_>)>();
    for (i, j) in jobs.into_iter().enumerate() {
        tx.send((i, j)).expect("queue open");
    }
    drop(tx);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let results = &results;
            scope.spawn(move || {
                while let Ok((i, job)) = rx.recv() {
                    let out = job();
                    results.lock()[i] = Some(out);
                }
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every job ran"))
        .collect()
}

/// Formats a fraction as the paper prints availabilities (percent).
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}

/// Prints a TSV header + rows to stdout.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

/// Default thread count for experiment drivers.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Args {
        Args::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parse_flags_and_values() {
        let a = argv("--topology 16 --paper-scale --seed 42");
        assert_eq!(a.get::<usize>("topology"), Some(16));
        assert!(a.flag("paper-scale"));
        assert!(!a.flag("medium-scale"));
        assert_eq!(a.get_or::<u64>("seed", 1), 42);
        assert_eq!(a.get_or::<u64>("missing", 7), 7);
    }

    #[test]
    fn scale_selection() {
        assert_eq!(Scale::from_args(&argv("")), Scale::Quick);
        assert_eq!(Scale::from_args(&argv("--quick")), Scale::Quick);
        assert_eq!(
            Scale::from_args(&argv("--quick --manifest /tmp/m.json")),
            Scale::Quick
        );
        assert_eq!(Scale::from_args(&argv("--paper-scale")), Scale::Paper);
        assert_eq!(Scale::from_args(&argv("--medium-scale")), Scale::Medium);
        assert_eq!(Scale::Paper.params().batch_accesses, 1_000_000);
    }

    #[test]
    fn run_jobs_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_jobs(4, jobs);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_single_thread() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| 1), Box::new(|| 2)];
        assert_eq!(run_jobs(1, jobs), vec![1, 2]);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.721), " 72.1%");
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn positional_args_rejected() {
        argv("topology");
    }
}
