//! Availability vs communication cost across the quorum spectrum.
//!
//! The paper optimizes availability alone; operators also pay messages.
//! Vote collection under `(q_r, q_w = T − q_r + 1)` costs: a granted
//! access contacts the cheapest member set reaching its quorum, a denied
//! access polls the whole component. Loose read quorums make reads cheap
//! AND available — but push writes toward polling everything and failing.
//! This experiment simulates a ladder of assignments on one topology and
//! prints the full availability/cost frontier.
//!
//! Usage: cargo run -p quorum-bench --release --bin cost_tradeoff
//!        [-- --topology 16 --alpha 0.75 --medium-scale]

#![forbid(unsafe_code)]

use quorum_bench::{default_threads, pct, run_jobs, Args, Scale};
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_replica::scenario::PaperScenario;
use quorum_replica::{run_static, RunConfig, RunResults, Workload};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 41);
    let threads = args.get_or("threads", default_threads());
    let chords: usize = args.get_or("topology", 16);
    let alpha: f64 = args.get_or("alpha", 0.75);

    let sc = PaperScenario::new(chords);
    let topo = sc.topology();
    let n = topo.num_sites();
    let total = n as u64;

    println!(
        "# Availability vs message cost | {} alpha={alpha} scale={}",
        sc.label(),
        scale.label()
    );

    let ladder: Vec<u64> = vec![1, 2, 5, 10, 20, 30, 40, 50];
    let topo_ref = &topo;
    let params = scale.params();
    let jobs: Vec<Box<dyn FnOnce() -> (u64, RunResults) + Send>> = ladder
        .iter()
        .map(|&q_r| {
            Box::new(move || {
                let res = run_static(
                    topo_ref,
                    VoteAssignment::uniform(n),
                    QuorumSpec::from_read_quorum(q_r, total).expect("valid"),
                    Workload::uniform(n, alpha),
                    RunConfig {
                        params,
                        seed: seed + q_r,
                        threads: 1,
                    },
                );
                (q_r, res)
            }) as Box<dyn FnOnce() -> (u64, RunResults) + Send>
        })
        .collect();
    let results = run_jobs(threads, jobs);

    println!("q_r\tq_w\tavailability\tread_A\twrite_A\tcontacts/access");
    for (q_r, res) in results {
        let c = &res.combined;
        println!(
            "{q_r}\t{}\t{}\t{}\t{}\t{:.1}",
            total - q_r + 1,
            pct(c.availability()),
            pct(c.read_availability()),
            pct(c.write_availability()),
            c.contacts_per_access(),
        );
        assert!(res.is_one_copy_serializable());
    }
    println!("# reading: granted-access cost grows with the quorum size, so the");
    println!("# frontier exposes sweet spots the pure-availability optimum hides —");
    println!("# e.g. on topology 16 at alpha=.75, stepping back from the interior");
    println!("# availability peak to q_r~10 gives up ~1.5 points of availability for");
    println!("# a ~30% message saving. Denied accesses poll the whole component,");
    println!("# which is why tiny q_r (write-starved) is cheap only for reads.");
}
