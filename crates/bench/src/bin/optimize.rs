//! Command-line optimal-quorum planner — the Figure-1 algorithm as a tool.
//!
//! Feed it a component-vote histogram (one count per line, for v = 0..=T,
//! e.g. exported from a production system's monitoring) or ask for an
//! analytic model, and it prints the optimal assignment across read
//! ratios, with optional write floor.
//!
//! Usage:
//!   cargo run -p quorum-bench --release --bin optimize -- --hist counts.txt
//!   cargo run -p quorum-bench --release --bin optimize -- \
//!       --model ring --sites 21 --site-rel 0.95 --link-rel 0.99 --floor 0.2
//!   cargo run -p quorum-bench --release --bin optimize -- --model fc --sites 9

#![forbid(unsafe_code)]

use quorum_bench::{pct, Args};
use quorum_core::analytic::{
    bus_density_sites_fail, bus_density_sites_independent, fully_connected_density, ring_density,
};
use quorum_core::optimal::{optimal_quorum, optimal_with_write_floor};
use quorum_core::{AvailabilityModel, SearchStrategy};
use quorum_stats::DiscreteDist;

fn load_histogram(path: &str) -> DiscreteDist {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read histogram {path:?}: {e}"));
    let counts: Vec<f64> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            l.parse::<f64>()
                .unwrap_or_else(|e| panic!("bad histogram line {l:?}: {e}"))
        })
        .collect();
    assert!(
        counts.len() >= 2,
        "histogram needs at least counts for v = 0 and v = 1"
    );
    DiscreteDist::from_pmf(counts).normalized()
}

fn main() {
    let args = Args::parse();
    let density = if let Some(path) = args.get::<String>("hist") {
        load_histogram(&path)
    } else {
        let model: String = args.get_or("model", "ring".to_string());
        let n: usize = args.get_or("sites", 21);
        let p: f64 = args.get_or("site-rel", 0.96);
        let r: f64 = args.get_or("link-rel", 0.96);
        match model.as_str() {
            "ring" => ring_density(n, p, r),
            "fc" | "fully-connected" => fully_connected_density(n, p, r),
            "bus-fail" => bus_density_sites_fail(n, p, r),
            "bus-indep" => bus_density_sites_independent(n, p, r),
            other => panic!("unknown --model {other:?} (ring|fc|bus-fail|bus-indep)"),
        }
    };
    let total = density.max_votes();
    let model = AvailabilityModel::from_mixtures(&density, &density);
    let floor: Option<f64> = args.get("floor");

    println!(
        "# optimal quorum assignments | T = {total} votes, mean component = {:.2}",
        density.mean()
    );
    match floor {
        Some(f) => println!("# write floor: A_w >= {}", pct(f)),
        None => println!("# no write floor (pass --floor 0.2 to add one)"),
    }
    println!("alpha\tq_r\tq_w\tA\tR(q_r)\tW(q_w)");
    for alpha in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let opt = match floor {
            Some(f) => {
                match optimal_with_write_floor(&model, alpha, f, SearchStrategy::Exhaustive) {
                    Some(o) => o,
                    None => {
                        println!("{alpha}\t-\t-\tfloor infeasible\t-\t-");
                        continue;
                    }
                }
            }
            None => optimal_quorum(&model, alpha, SearchStrategy::Exhaustive),
        };
        println!(
            "{alpha}\t{}\t{}\t{}\t{}\t{}",
            opt.spec.q_r(),
            opt.spec.q_w(),
            pct(opt.availability),
            pct(opt.read_availability),
            pct(opt.write_availability),
        );
    }
}
