//! Regenerates Figures 2–7: availability `A(α, q_r)` curves for the
//! paper's topologies (101-site ring + k chords), α ∈ {0, .25, .5, .75, 1}.
//!
//! Usage:
//!   cargo run -p quorum-bench --release --bin figures            # all figures
//!   cargo run -p quorum-bench --release --bin figures -- --topology 16
//!   cargo run -p quorum-bench --release --bin figures -- --paper-scale
//!   cargo run -p quorum-bench --release --bin figures -- --csv-dir results/csv
//!
//! One simulation run per topology measures the component-vote histogram;
//! the Figure-1 model then produces every (α, q_r) point. The §5.3
//! observations are checked and printed under each table:
//!   * A(α, q_r = 1) ≈ 0.96·α, independent of topology;
//!   * all α-curves converge at q_r = ⌊T/2⌋ = 50;
//!   * curve maxima land at the endpoints (except Topology 16, α = .75).

#![forbid(unsafe_code)]

use quorum_bench::{default_threads, manifest, pct, print_table, Args, Scale};
use quorum_core::metrics::AvailabilityMetric;
use quorum_core::{QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_obs::Registry;
use quorum_replica::scenario::{PaperScenario, PAPER_ALPHAS};
use quorum_replica::{run_static_observed, CurveSet, RunConfig, RunResults, Workload};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 90158);
    let threads = args.get_or("threads", default_threads());
    let metric = if args.flag("surv") {
        AvailabilityMetric::Survivability
    } else {
        AvailabilityMetric::Accessibility
    };
    let csv_dir: Option<String> = args.get("csv-dir");
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("cannot create --csv-dir");
    }
    let scenarios: Vec<PaperScenario> = match args.get::<usize>("topology") {
        Some(k) => vec![PaperScenario::new(k)],
        None => PaperScenario::all()
            .into_iter()
            .filter(|s| s.figure().is_some())
            .collect(),
    };

    println!(
        "# Figures 2-7 reproduction | metric={metric} scale={} seed={seed} threads={threads}",
        scale.label()
    );

    let registry = Registry::new();
    let mut last_run: Option<(PaperScenario, RunResults)> = None;
    let mut per_topo: Vec<(usize, f64)> = Vec::new();

    for sc in scenarios {
        let topo = sc.topology();
        let n = topo.num_sites();
        let total = n as u64;
        let spec = QuorumSpec::from_read_quorum(total / 2, total).expect("valid");
        let workload = Workload::uniform(n, 0.5);
        let cfg = RunConfig {
            params: scale.params(),
            seed,
            threads,
        };
        let t0 = std::time::Instant::now();
        let results = {
            let _t = registry.scoped_timer(&format!("figures.topology_{}", sc.chords));
            run_static_observed(
                &topo,
                VoteAssignment::uniform(n),
                spec,
                workload,
                cfg,
                &registry,
            )
        };
        let curves = CurveSet::from_run(&results);
        let elapsed = t0.elapsed();

        let fig = sc
            .figure()
            .map(|f| format!("Figure {f}"))
            .unwrap_or_else(|| "(not plotted in paper)".into());
        println!(
            "\n## {} ({}) — {} links, diameter {}, {} batches, CI ±{} , {:.1}s",
            sc.label(),
            fig,
            topo.num_links(),
            topo.diameter()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "∞".into()),
            results.batches,
            results
                .interval()
                .map(|ci| format!("{:.3}%", 100.0 * ci.half_width))
                .unwrap_or_else(|| "n/a".into()),
            elapsed.as_secs_f64()
        );

        let mut header = vec!["q_r".to_string()];
        header.extend(PAPER_ALPHAS.iter().map(|a| format!("alpha={a}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::new();
        for q_r in 1..=total / 2 {
            let mut row = vec![q_r.to_string()];
            for &alpha in &PAPER_ALPHAS {
                row.push(pct(curves.availability(metric, alpha, q_r)));
            }
            rows.push(row);
        }
        print_table(&header_refs, &rows);

        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/topology_{}.csv", sc.chords);
            let mut csv = String::from("q_r,alpha_0,alpha_25,alpha_50,alpha_75,alpha_100\n");
            for q_r in 1..=total / 2 {
                csv.push_str(&q_r.to_string());
                for &alpha in &PAPER_ALPHAS {
                    csv.push(',');
                    csv.push_str(&format!("{:.6}", curves.availability(metric, alpha, q_r)));
                }
                csv.push('\n');
            }
            std::fs::write(&path, csv).expect("cannot write CSV");
            println!("# wrote {path}");
        }

        // §5.3 checks.
        println!("# checks:");
        for &alpha in &PAPER_ALPHAS {
            let opt = curves.optimal(alpha, SearchStrategy::Exhaustive);
            // Tie-aware endpoint check: on dense topologies the curve is
            // flat near the maximum, so ask whether an *endpoint attains*
            // the optimum (within CI noise), not whether argmax == endpoint.
            let tol = 5e-3; // the paper's own CI half-width
            let at_lo = curves.availability(metric, alpha, 1);
            let at_hi = curves.availability(metric, alpha, total / 2);
            let endpoint = at_lo >= opt.availability - tol || at_hi >= opt.availability - tol;
            println!(
                "#   alpha={alpha}: optimal q_r={} q_w={} A={} (endpoint attains max: {endpoint})",
                opt.spec.q_r(),
                opt.spec.q_w(),
                pct(opt.availability)
            );
        }
        // CI-indistinguishable optimum set (flat-top width) at α = 0.5.
        let set = quorum_core::optimal::optimal_set(curves.model(metric), 0.5, 5e-3);
        let span = (
            set.first().copied().unwrap_or(0),
            set.last().copied().unwrap_or(0),
        );
        println!(
            "#   alpha=0.5: {} assignments within the paper's CI of the optimum (q_r {}..{})",
            set.len(),
            span.0,
            span.1
        );
        let a1 = curves.availability(metric, 1.0, 1);
        println!(
            "#   A(alpha=1, q_r=1) = {} (paper: site reliability 96.0%)",
            pct(a1)
        );
        let end: Vec<f64> = PAPER_ALPHAS
            .iter()
            .map(|&a| curves.availability(metric, a, total / 2))
            .collect();
        let spread = end.iter().cloned().fold(f64::MIN, f64::max)
            - end.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "#   spread of curves at q_r=50: {:.2}% (paper: curves converge)",
            100.0 * spread
        );
        assert!(
            results.is_one_copy_serializable(),
            "1SR violated — simulator bug"
        );
        per_topo.push((sc.chords, results.availability()));
        last_run = Some((sc, results));
    }

    if let Some((sc, results)) = last_run {
        // Counters/timers aggregate every topology; the structural fields
        // (topology record, votes, CI trace) describe the last run.
        let mut m = manifest::manifest_for_run(
            "figures",
            seed,
            &scale.params(),
            &sc.label(),
            sc.chords,
            &sc.topology(),
            &VoteAssignment::uniform(sc.topology().num_sites()),
            &results,
            &registry,
        );
        m.batches = m.counter(quorum_obs::keys::RUN_BATCHES);
        for (chords, a) in &per_topo {
            m.set_metric(&format!("availability.topology_{chords}"), *a);
        }
        manifest::write_requested(&args, &m);
    }
}
