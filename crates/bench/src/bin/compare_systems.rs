//! Vote-optimal vs. structurally-optimal quorum systems, head to head.
//!
//! The paper optimizes vote assignments; this driver quantifies what
//! voting *cannot* express. On nine-site versions of the paper's seven
//! topology shapes (ring + 0/1/2/4 chords, full, star, bus) it
//! evaluates four systems through `quorum-algebra`:
//!
//! * `vote-majority` — uniform votes, majority quorums (§2.1);
//! * `vote-best-f2` — the load-optimal *valid* uniform-vote pair with
//!   resilience ≥ 2, found by exact scan (closed-form loads);
//! * `grid-3x3` — reads cross every column, writes take a full column
//!   plus a cover (resilience 2, not vote-realizable);
//! * `hier-3x3` — recursive majority over three groups of three
//!   (resilience 3, not vote-realizable).
//!
//! Every system is certified by the intersection checker before it is
//! reported (counted in `algebra.intersection_checks`; any failure
//! aborts the run). Per system the driver reports exact f-resilience,
//! the multiplicative-weights load (upper bound + certified lower
//! bound), and the simulated partition-model ACC on each topology via
//! the same `ComponentView` grant machinery the vote protocol uses.
//! The headline claim — a structural system achieves strictly lower
//! load than the *exact* optimum over all uniform-vote pairs at equal
//! resilience — is asserted here and gated in CI from the manifest
//! (`structural_beats_votes`, `load.*` metrics).
//!
//! Usage: cargo run -p quorum-bench --release --bin compare_systems
//!        [-- --quick --threads 2 --seed 7 --alpha 0.5
//!            --iterations 2000 --manifest results/ALGEBRA_PR.json]

#![forbid(unsafe_code)]

use quorum_algebra::{optimize_load, uniform_threshold_load, AlgebraProtocol, QuorumSystem};
use quorum_bench::{manifest, print_table, Args, Scale};
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_graph::Topology;
use quorum_obs::{keys, Registry, RunManifest};
use quorum_replica::{run_protocol_observed, RunConfig, Workload};

/// Exact load-optimal uniform-vote pair on `n` sites with resilience at
/// least `min_f`, by scanning every valid `(q_r, q_w)`: the load of a
/// uniform threshold pair is closed-form, so this is the true vote
/// optimum the structural systems must beat — no solver slack on the
/// vote side of the comparison.
fn vote_best_exact(n: usize, min_f: u32, alpha: f64) -> (u64, u64, f64) {
    let t = n as u64;
    let mut best: Option<(u64, u64, f64)> = None;
    for q_r in 1..=t {
        for q_w in 1..=t {
            if QuorumSpec::new(q_r, q_w, t).is_err() {
                continue;
            }
            // Uniform votes: the read family survives until n−q_r+1
            // failures, the write family until n−q_w+1.
            let resilience = (t - q_r.max(q_w)) as u32;
            if resilience < min_f {
                continue;
            }
            let load = uniform_threshold_load(n, q_r, q_w, alpha);
            let better = match best {
                None => true,
                Some((_, _, b)) => load < b - 1e-15,
            };
            if better {
                best = Some((q_r, q_w, load));
            }
        }
    }
    best.expect("some valid pair exists")
}

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get_or("seed", 7);
    let threads: usize = args.get_or("threads", quorum_bench::default_threads());
    let alpha: f64 = args.get_or("alpha", 0.5);
    let iterations: usize = args.get_or("iterations", 2_000);
    let scale = Scale::from_args(&args);
    let params = scale.params();
    let registry = Registry::new();

    println!(
        "# Compare systems | scale={} alpha={alpha} iterations={iterations} \
         threads={threads} seed={seed}",
        scale.label()
    );

    // Nine database sites everywhere; the bus adds the medium as node 0
    // with zero votes and zero workload weight, shifting systems by one.
    let shapes: Vec<(String, Topology, usize, usize)> = vec![
        ("ring-9-c0".into(), Topology::ring_with_chords(9, 0), 0, 0),
        ("ring-9-c1".into(), Topology::ring_with_chords(9, 1), 1, 0),
        ("ring-9-c2".into(), Topology::ring_with_chords(9, 2), 2, 0),
        ("ring-9-c4".into(), Topology::ring_with_chords(9, 4), 4, 0),
        ("full-9".into(), Topology::fully_connected(9), 0, 0),
        ("star-9".into(), Topology::star(9), 0, 0),
        ("bus-9".into(), Topology::bus(9), 0, 1),
    ];

    let (f2_qr, f2_qw, f2_load) = vote_best_exact(9, 2, alpha);
    let (f3_qr, f3_qw, f3_load) = vote_best_exact(9, 3, alpha);
    println!(
        "# exact vote optima: f>=2 -> ({f2_qr},{f2_qw}) load {f2_load:.4}; \
         f>=3 -> ({f3_qr},{f3_qw}) load {f3_load:.4}"
    );

    let mut m = RunManifest::new("compare_systems", seed);
    m.params = manifest::sim_params_record(&params);
    m.set_metric(keys::ALPHA, alpha);
    m.set_metric(keys::LOAD_VOTE_BEST_EXACT_F2, f2_load);
    m.set_metric(keys::LOAD_VOTE_BEST_EXACT_F3, f3_load);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut grid_load = f64::INFINITY;
    let mut hier_load = f64::INFINITY;

    for (label, topo, chords, offset) in &shapes {
        let n = topo.num_sites();
        let db_sites = n - offset;
        let mut vote_vec = vec![1u64; n];
        let mut weight_vec = vec![1.0f64; n];
        for s in 0..*offset {
            vote_vec[s] = 0;
            weight_vec[s] = 0.0;
        }
        let votes = VoteAssignment::weighted(vote_vec);
        let workload = Workload::weighted(alpha, &weight_vec, &weight_vec);
        let t = db_sites as u64;

        let systems = vec![
            QuorumSystem::from_spec("vote-majority", &votes, QuorumSpec::majority(t)),
            QuorumSystem::from_spec(
                "vote-best-f2",
                &votes,
                QuorumSpec::new(f2_qr, f2_qw, t).expect("scanned pair is valid"),
            ),
            QuorumSystem::grid(3, 3, *offset),
            QuorumSystem::hierarchical(3, 3, 2, 2, *offset),
        ];

        for sys in systems {
            let cert = {
                let _t = registry.scoped_timer(keys::ALGEBRA_CERTIFY);
                sys.certify()
            };
            registry.add(keys::ALGEBRA_SYSTEMS_EVALUATED, 1);
            registry.add(keys::ALGEBRA_INTERSECTION_CHECKS, 1);
            if !cert.ok() {
                registry.add(keys::ALGEBRA_INTERSECTION_FAILURES, 1);
            }
            let failure = cert.failure.map(|f| f.to_string()).unwrap_or_default();
            assert!(cert.ok(), "{} failed certification: {failure}", sys.name());
            registry.add(
                keys::ALGEBRA_QUORUMS_ENUMERATED,
                (sys.reads().len() + sys.writes().len()) as u64,
            );

            let resilience = sys.resilience();
            let profile = {
                let _t = registry.scoped_timer(keys::ALGEBRA_OPTIMIZE);
                optimize_load(&sys, alpha, iterations)
            };
            registry.add(keys::ALGEBRA_STRATEGY_ITERATIONS, profile.iterations);

            let res = run_protocol_observed(
                topo,
                votes.clone(),
                workload.clone(),
                RunConfig {
                    params,
                    seed,
                    threads,
                },
                &registry,
                keys::ALGEBRA_SIMULATE,
                || AlgebraProtocol::new(sys.clone()),
            );
            let acc = res.availability();

            // Load and resilience are system properties (topology-free):
            // record them once under the system name; instances on the
            // shifted bus universe produce identical values by symmetry.
            m.metrics
                .entry(format!("load.{}", sys.name()))
                .or_insert(profile.load);
            m.metrics
                .entry(format!("load-lower.{}", sys.name()))
                .or_insert(profile.lower_bound);
            m.metrics
                .entry(format!("resilience.{}", sys.name()))
                .or_insert(f64::from(resilience));
            m.set_metric(&format!("acc.{label}.{}", sys.name()), acc);

            if sys.name() == "grid-3x3" {
                grid_load = grid_load.min(profile.load);
            }
            if sys.name().starts_with("hier-") {
                hier_load = hier_load.min(profile.load);
            }

            rows.push(vec![
                label.clone(),
                sys.name().to_string(),
                format!("{}", sys.reads().len() + sys.writes().len()),
                format!("{resilience}"),
                format!("{:.4}", profile.load),
                format!("{:.4}", profile.lower_bound),
                format!("{acc:.4}"),
            ]);
        }
        let _ = chords;
    }

    print_table(
        &[
            "topology", "system", "quorums", "f", "load", "load_lb", "acc",
        ],
        &rows,
    );

    // The headline: at equal resilience floors, the structural systems'
    // *achieved* loads beat the *exact* vote optima — strictly.
    assert!(
        grid_load < f2_load,
        "grid load {grid_load:.4} must beat the f>=2 vote optimum {f2_load:.4}"
    );
    assert!(
        hier_load < f3_load,
        "hier load {hier_load:.4} must beat the f>=3 vote optimum {f3_load:.4}"
    );
    println!(
        "# structural beats votes: grid {grid_load:.4} < {f2_load:.4} (f>=2), \
         hier {hier_load:.4} < {f3_load:.4} (f>=3)"
    );
    m.set_metric(keys::STRUCTURAL_BEATS_VOTES, 1.0);

    m.absorb_snapshot(&registry.snapshot());
    manifest::write_requested(&args, &m);
}
