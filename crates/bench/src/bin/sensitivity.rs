//! Sensitivity ablation: does the all-exponential (Poisson) failure model
//! drive the paper's conclusions, or are they robust to the duration
//! distribution shape?
//!
//! Every shape keeps the same means (so each component is still 96 %
//! reliable — the renewal-reward ratio depends only on means), but the
//! *joint* pattern of concurrent failures differs: deterministic repairs
//! synchronize recoveries, uniform repairs reduce variance. We rerun one
//! paper topology under each shape and compare the availability curves at
//! key points.
//!
//! Usage: cargo run -p quorum-bench --release --bin sensitivity
//!        [-- --topology 2 --medium-scale]

#![forbid(unsafe_code)]

use quorum_bench::{default_threads, pct, Args, Scale};
use quorum_core::metrics::AvailabilityMetric;
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_des::DurationDist;
use quorum_replica::scenario::PaperScenario;
use quorum_replica::{run_static, CurveSet, RunConfig, Workload};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 12);
    let threads = args.get_or("threads", default_threads());
    let chords: usize = args.get_or("topology", 2);

    let sc = PaperScenario::new(chords);
    let topo = sc.topology();
    let n = topo.num_sites();
    let total = n as u64;

    println!(
        "# Failure-model sensitivity | {} scale={} (same means, different shapes)",
        sc.label(),
        scale.label()
    );

    let shapes = [
        (
            "exponential (paper)",
            DurationDist::Exponential,
            DurationDist::Exponential,
        ),
        (
            "fixed repairs",
            DurationDist::Exponential,
            DurationDist::Fixed,
        ),
        (
            "uniform repairs",
            DurationDist::Exponential,
            DurationDist::Uniform,
        ),
        (
            "fixed lifetimes",
            DurationDist::Fixed,
            DurationDist::Exponential,
        ),
    ];

    println!("shape\tA(0,50)\tA(.5,25)\tA(.75,1)\tA(1,1)\topt(.5)");
    let mut reference: Option<Vec<f64>> = None;
    for (label, fd, rd) in shapes {
        let mut params = scale.params();
        params.fail_dist = fd;
        params.repair_dist = rd;
        let results = run_static(
            &topo,
            VoteAssignment::uniform(n),
            QuorumSpec::from_read_quorum(total / 2, total).expect("valid"),
            Workload::uniform(n, 0.5),
            RunConfig {
                params,
                seed,
                threads,
            },
        );
        let curves = CurveSet::from_run(&results);
        let acc = AvailabilityMetric::Accessibility;
        let points = vec![
            curves.availability(acc, 0.0, 50),
            curves.availability(acc, 0.5, 25),
            curves.availability(acc, 0.75, 1),
            curves.availability(acc, 1.0, 1),
        ];
        let opt = curves.optimal(0.5, quorum_core::SearchStrategy::Exhaustive);
        println!(
            "{label}\t{}\t{}\t{}\t{}\tq_r={} ({})",
            pct(points[0]),
            pct(points[1]),
            pct(points[2]),
            pct(points[3]),
            opt.spec.q_r(),
            pct(opt.availability),
        );
        match &reference {
            None => reference = Some(points),
            Some(base) => {
                let worst = base
                    .iter()
                    .zip(&points)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                println!("#   max deviation from exponential: {:.2}%", 100.0 * worst);
            }
        }
    }
    println!("# reading: repair-shape changes move the curves by a few points (the");
    println!("# means drive the steady state); deterministic LIFETIMES are different —");
    println!("# every component starts in phase and fails in synchronized waves, the");
    println!("# process is periodic rather than mixing, and availability bears little");
    println!("# resemblance to the Poisson prediction. That is precisely the paper's");
    println!("# §4.3 argument for estimating f_i on-line instead of trusting an");
    println!("# off-line model: when the independence/memorylessness assumptions break,");
    println!("# the assignment computed from them is wrong, but measurement still isn't.");
}
