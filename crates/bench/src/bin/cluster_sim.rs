//! Message-level cluster simulation driver (`quorum-cluster`).
//!
//! Two modes:
//!
//! * **Single run** (default): simulate one `(topology, q_r, network)`
//!   configuration at the chosen scale and print availability, goodput,
//!   latency, and message/retry counters. With `--manifest <path>` the
//!   run manifest — including both latency histograms — is written next
//!   to the printed table.
//! * **Latency sweep** (`--sweep`): grid over network latency × every
//!   legal `q_r`, with retries disabled so every session must beat the
//!   fixed timeout on its first round. Demonstrates the EXPERIMENTS.md
//!   protocol: as per-message latency grows against the timeout, the
//!   ACC-optimal `q_r` shifts *smaller*, because read fan-out cost (the
//!   `q_r`-th fastest reply) starts timing sessions out before the
//!   instantaneous-world optimum does.
//!
//! The zero-latency/zero-loss configuration (`--ideal`) reproduces the
//! instantaneous simulator's decisions exactly (see
//! `tests/cluster_degeneracy.rs`), so this driver extends — never
//! contradicts — the paper's §5 numbers.
//!
//! Usage: cargo run -p quorum-bench --release --bin cluster_sim
//!        [-- --topology ring --sites 9 --alpha 0.7 --qr 5
//!            --latency 0.02 --loss 0.02 --timeout 0.25 --retries 3
//!            --seed 11 --quick --sweep --ideal --manifest run.json]

#![forbid(unsafe_code)]

use quorum_bench::{default_threads, manifest, pct, print_table, run_jobs, Args, Scale};
use quorum_cluster::{
    run_cluster, run_cluster_observed, ClusterConfig, LatencyDist, NetConfig, RunOptions,
};
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_graph::Topology;
use quorum_obs::{Registry, RunManifest};
use quorum_replica::Workload;

/// Builds the topology plus matching votes/workload. The bus hub (node
/// 0) is pure wiring: zero votes, zero workload weight.
fn site_setup(kind: &str, sites: usize, alpha: f64) -> (Topology, VoteAssignment, Workload) {
    match kind {
        "ring" => (
            Topology::ring(sites),
            VoteAssignment::uniform(sites),
            Workload::uniform(sites, alpha),
        ),
        "full" => (
            Topology::fully_connected(sites),
            VoteAssignment::uniform(sites),
            Workload::uniform(sites, alpha),
        ),
        "bus" => {
            let topo = Topology::bus(sites);
            let mut votes = vec![1u64; sites + 1];
            votes[0] = 0;
            let mut weights = vec![1.0; sites + 1];
            weights[0] = 0.0;
            (
                topo,
                VoteAssignment::weighted(votes),
                Workload::weighted(alpha, &weights, &weights),
            )
        }
        other => panic!("--topology {other:?}: expected ring, full, or bus"),
    }
}

fn config_for(args: &Args, scale: Scale) -> ClusterConfig {
    let mut cfg = if args.flag("ideal") {
        ClusterConfig::ideal(scale.params())
    } else {
        ClusterConfig::new(scale.params())
    };
    if let Some(mean) = args.get::<f64>("latency") {
        cfg.net.latency = LatencyDist::Exponential { mean };
    }
    if let Some(loss) = args.get::<f64>("loss") {
        cfg.net.loss = loss;
    }
    cfg.session_timeout = args.get_or("timeout", cfg.session_timeout);
    cfg.max_retries = args.get_or("retries", cfg.max_retries);
    cfg
}

fn single_run(args: &Args, scale: Scale, seed: u64) {
    let sites: usize = args.get_or("sites", 9);
    let alpha: f64 = args.get_or("alpha", 0.7);
    let kind: String = args.get_or("topology", "ring".to_string());
    let (topo, votes, workload) = site_setup(&kind, sites, alpha);
    let total = votes.total();
    let qr: u64 = args.get_or("qr", total / 2);
    let spec = QuorumSpec::from_read_quorum(qr, total).expect("legal --qr for this vote total");
    let cfg = config_for(args, scale);
    let threads = args.get_or("threads", default_threads());

    println!(
        "# Cluster run | {} alpha={alpha} q=({},{})/{} latency={:?} loss={} timeout={} retries={} scale={} seed={seed} threads={threads}",
        topo.name(),
        spec.q_r(),
        spec.q_w(),
        total,
        cfg.net.latency,
        cfg.net.loss,
        cfg.session_timeout,
        cfg.max_retries,
        scale.label(),
    );

    let registry = Registry::new();
    let started = std::time::Instant::now();
    let res = run_cluster_observed(
        &topo,
        &cfg,
        spec,
        votes.clone(),
        workload,
        RunOptions::threaded(seed, threads),
        &registry,
    );
    let wall = started.elapsed();
    let ci = res
        .interval()
        .map(|ci| format!("±{:.2}%", 100.0 * ci.half_width))
        .unwrap_or_else(|| "n/a".into());
    let c = &res.combined;

    let rows = vec![
        vec![
            "ACC".into(),
            format!(
                "{} ({ci}, {} batches)",
                pct(res.availability()),
                res.batches
            ),
        ],
        vec!["read ACC".into(), pct(c.read_availability())],
        vec!["write ACC".into(), pct(c.write_availability())],
        vec![
            "goodput".into(),
            format!("{:.3} commits/unit-time", c.goodput()),
        ],
        vec![
            "read latency".into(),
            format!("{:.4} mean", c.read_latency.mean()),
        ],
        vec![
            "write latency".into(),
            format!("{:.4} mean", c.write_latency.mean()),
        ],
        vec![
            "timed out".into(),
            format!("{}", c.reads_timed_out + c.writes_timed_out),
        ],
        vec![
            "unavailable".into(),
            format!("{}", c.reads_unavailable + c.writes_unavailable),
        ],
        vec!["retries".into(), format!("{}", c.retries)],
        vec![
            "messages".into(),
            format!(
                "{} sent / {} delivered / {} dropped",
                c.messages_sent, c.messages_delivered, c.messages_dropped
            ),
        ],
        vec![
            "freshness violations".into(),
            format!("{}", c.freshness_violations),
        ],
        vec![
            "wall clock".into(),
            format!(
                "{:.2}s on {threads} thread(s), utilization {:.0}%",
                wall.as_secs_f64(),
                100.0 * registry.snapshot().gauges["cluster.thread_utilization"],
            ),
        ],
    ];
    print_table(&["metric", "value"], &rows);
    assert!(res.is_fresh(), "stale committed read — protocol bug");

    let mut m = RunManifest::new("cluster_sim", seed);
    m.params = manifest::sim_params_record(&cfg.params);
    m.topology = manifest::topology_record(topo.name(), 0, &topo);
    m.votes = votes.as_slice().to_vec();
    res.fill_manifest(&mut m);
    m.absorb_snapshot(&registry.snapshot());
    manifest::write_requested(args, &m);
}

/// One sweep cell's measurements: (ACC, goodput, read/write latency means).
type CellResult = (f64, f64, f64, f64);
type CellJob<'a> = Box<dyn FnOnce() -> CellResult + Send + 'a>;

fn sweep(args: &Args, scale: Scale, seed: u64) {
    let sites: usize = args.get_or("sites", 9);
    let alpha: f64 = args.get_or("alpha", 0.7);
    let kind: String = args.get_or("topology", "ring".to_string());
    let threads = args.get_or("threads", default_threads());
    let (topo, votes, workload) = site_setup(&kind, sites, alpha);
    let total = votes.total();

    // Fixed-batch parameters keep the grid affordable; the CI question
    // here is the argmax location, not a tight per-cell interval.
    let mut params = scale.params();
    params.max_batches = params.min_batches;
    let latencies = [0.01, 0.04, 0.08, 0.16, 0.32];
    let qrs: Vec<u64> = QuorumSpec::read_quorum_domain(total).collect();

    println!(
        "# Latency sweep | {} alpha={alpha} timeout={} qr∈{:?} scale={} seed={seed}",
        topo.name(),
        ClusterConfig::new(params).session_timeout,
        (qrs[0], *qrs.last().expect("non-empty domain")),
        scale.label(),
    );

    let cells: Vec<(f64, u64)> = latencies
        .iter()
        .flat_map(|&lat| qrs.iter().map(move |&qr| (lat, qr)))
        .collect();
    let jobs: Vec<CellJob<'_>> = cells
        .iter()
        .map(|&(lat, qr)| {
            let (topo, votes, workload) = (&topo, votes.clone(), workload.clone());
            Box::new(move || {
                let mut cfg = ClusterConfig::new(params);
                cfg.net = NetConfig {
                    latency: LatencyDist::Exponential { mean: lat },
                    loss: 0.01,
                };
                // No retries: a session must beat the timeout on its
                // first round, so ACC itself pays the fan-out cost (the
                // `q_r`-th fastest reply) instead of hiding it behind
                // retransmissions.
                cfg.max_retries = 0;
                let spec = QuorumSpec::from_read_quorum(qr, total).expect("domain is legal");
                let res = run_cluster(topo, &cfg, spec, votes, workload, seed);
                assert!(res.is_fresh(), "stale committed read — protocol bug");
                (
                    res.availability(),
                    res.combined.goodput(),
                    res.combined.read_latency.mean(),
                    res.combined.write_latency.mean(),
                )
            }) as CellJob<'_>
        })
        .collect();
    let results = run_jobs(threads, jobs);

    let mut m = RunManifest::new("cluster_sim_sweep", seed);
    m.params = manifest::sim_params_record(&params);
    m.topology = manifest::topology_record(topo.name(), 0, &topo);
    m.votes = votes.as_slice().to_vec();

    println!("latency\tq_r\tACC\tgoodput\tread_lat\twrite_lat");
    let mut best_track = Vec::new();
    for (li, &lat) in latencies.iter().enumerate() {
        let mut best: Option<(u64, f64)> = None;
        for (qi, &qr) in qrs.iter().enumerate() {
            let (acc, goodput, rl, wl) = results[li * qrs.len() + qi];
            println!("{lat}\t{qr}\t{}\t{goodput:.3}\t{rl:.4}\t{wl:.4}", pct(acc));
            m.set_metric(&format!("sweep.acc.lat{lat}.qr{qr}"), acc);
            m.set_metric(&format!("sweep.goodput.lat{lat}.qr{qr}"), goodput);
            if best.is_none_or(|(_, a)| acc > a) {
                best = Some((qr, acc));
            }
        }
        let (qr, acc) = best.expect("non-empty q_r domain");
        println!("# latency {lat}: ACC-optimal q_r = {qr} ({})", pct(acc));
        m.set_metric(&format!("sweep.best_qr.lat{lat}"), qr as f64);
        best_track.push(qr);
    }
    println!(
        "# optimal q_r by rising latency: {:?} (expected: drifts toward small q_r as fan-out cost grows)",
        best_track
    );
    manifest::write_requested(args, &m);
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 11);
    if args.flag("sweep") {
        sweep(&args, scale, seed);
    } else {
        single_run(&args, scale, seed);
    }
}
