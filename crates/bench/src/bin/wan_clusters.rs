//! The WAN-of-datacenters scenario: quorum assignment when the partition
//! structure is clusters-on-a-backbone instead of the paper's chorded
//! rings.
//!
//! Five fully-connected clusters of five sites ride a backbone ring.
//! Questions answered:
//!
//! 1. Where does the optimal `q_r` land, and how much does it beat
//!    majority / ROWA (the §5.5 question on a modern topology)?
//! 2. Does the on-line estimate match a direct per-assignment simulation?
//! 3. What does the §5.4 write floor cost here?
//! 4. What happens when the backbone links are flakier than the LAN links
//!    (the realistic case)?
//!
//! Usage: cargo run -p quorum-bench --release --bin wan_clusters
//!        [-- --clusters 5 --cluster-size 5 --alpha 0.75 --medium-scale]

#![forbid(unsafe_code)]

use quorum_bench::{default_threads, pct, Args, Scale};
use quorum_core::metrics::AvailabilityMetric;
use quorum_core::{QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_graph::Topology;
use quorum_replica::sweep::sweep_read_quorum;
use quorum_replica::{run_static, CurveSet, RunConfig, Workload};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 73);
    let threads = args.get_or("threads", default_threads());
    let clusters: usize = args.get_or("clusters", 5);
    let cluster_size: usize = args.get_or("cluster-size", 5);
    let alpha: f64 = args.get_or("alpha", 0.75);

    let topo = Topology::ring_of_clusters(clusters, cluster_size);
    let n = topo.num_sites();
    let total = n as u64;
    println!(
        "# WAN clusters | {} ({} links, diameter {:?}) alpha={alpha} scale={}",
        topo.name(),
        topo.num_links(),
        topo.diameter(),
        scale.label()
    );

    let cfg = RunConfig {
        params: scale.params(),
        seed,
        threads,
    };
    let results = run_static(
        &topo,
        VoteAssignment::uniform(n),
        QuorumSpec::from_read_quorum(total / 2, total).expect("valid"),
        Workload::uniform(n, alpha),
        cfg,
    );
    let curves = CurveSet::from_run(&results);

    // 1. Optimal vs baselines.
    let opt = curves.optimal(alpha, SearchStrategy::Exhaustive);
    let model = curves.model(AvailabilityMetric::Accessibility);
    let eval = |spec: QuorumSpec| {
        alpha * model.read_availability(spec.q_r())
            + (1.0 - alpha) * model.write_availability(spec.q_w())
    };
    println!(
        "optimal: q_r={} q_w={} A={}   majority: {}   ROWA: {}",
        opt.spec.q_r(),
        opt.spec.q_w(),
        pct(opt.availability),
        pct(eval(QuorumSpec::majority(total))),
        pct(eval(QuorumSpec::read_one_write_all(total))),
    );
    // Cluster-size quorums are natural sweet spots here: one cluster
    // (5 votes) for reads, the rest for writes.
    let cluster_q = cluster_size as u64;
    if cluster_q <= total / 2 {
        println!(
            "one-cluster read quorum (q_r={cluster_q}): A = {}",
            pct(model.availability(alpha, cluster_q))
        );
    }

    // 2. Cross-check the curve against direct simulation on a ladder.
    let ladder: Vec<u64> = vec![1, cluster_q.min(total / 2), total / 4, total / 2]
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .filter(|&q| q >= 1)
        .collect();
    let rows = sweep_read_quorum(&topo, &VoteAssignment::uniform(n), alpha, &ladder, cfg);
    println!("\nq_r\tdirect_A\tcurve_A");
    for row in &rows {
        let q = row.x as u64;
        println!(
            "{q}\t{}\t{}",
            pct(row.availability()),
            pct(curves.availability(AvailabilityMetric::Accessibility, alpha, q)),
        );
        assert!(row.results.is_one_copy_serializable());
    }

    // 3. Write floor.
    for floor in [0.25, 0.50, 0.75] {
        match curves.optimal_with_write_floor(alpha, floor, SearchStrategy::Exhaustive) {
            Some(c) => println!(
                "floor W>={}: q_r={} A={} (W={})",
                pct(floor),
                c.spec.q_r(),
                pct(c.availability),
                pct(c.write_availability)
            ),
            None => println!("floor W>={}: infeasible", pct(floor)),
        }
    }
    // 4. Flaky backbone: WAN links at 85%, LAN links untouched. The
    //    backbone links are exactly the ones joining gateway members of
    //    consecutive clusters.
    let mut link_rels = vec![scale.params().reliability; topo.num_links()];
    for (idx, &(a, b)) in topo.links().iter().enumerate() {
        if a / cluster_size != b / cluster_size {
            link_rels[idx] = 0.85;
        }
    }
    let mut flaky_sim = quorum_replica::Simulation::new(
        &topo,
        scale.params(),
        Workload::uniform(n, alpha),
        seed + 7,
    )
    .with_link_reliabilities(link_rels);
    let mut proto = quorum_core::QuorumConsensus::new(
        VoteAssignment::uniform(n),
        QuorumSpec::from_read_quorum(total / 2, total).expect("valid"),
    );
    let mut flaky_stats =
        flaky_sim.run_batch(&mut proto, &mut quorum_replica::simulation::NullObserver);
    for _ in 1..3 {
        let s = flaky_sim.run_batch(&mut proto, &mut quorum_replica::simulation::NullObserver);
        flaky_stats.merge(&s);
    }
    let flaky_results = quorum_replica::RunResults {
        acc: quorum_stats::BatchMeans::paper_defaults(),
        read_acc: quorum_stats::BatchMeans::paper_defaults(),
        write_acc: quorum_stats::BatchMeans::paper_defaults(),
        combined: flaky_stats,
        batches: 3,
        ci_trace: Vec::new(),
    };
    let flaky_curves = CurveSet::from_run(&flaky_results);
    let flaky_opt = flaky_curves.optimal(alpha, SearchStrategy::Exhaustive);
    println!(
        "
flaky backbone (WAN links 85%): optimal q_r={} A={} (uniform-reliability optimum was q_r={} A={})",
        flaky_opt.spec.q_r(),
        pct(flaky_opt.availability),
        opt.spec.q_r(),
        pct(opt.availability),
    );

    println!("# reading: ROWA loses ~12 points — backbone partitions make all-copies");
    println!("# writes rare — while anything from one-cluster-sized read quorums to the");
    println!("# majority end sits on a ~1-point plateau. The optimizer's pick lands just");
    println!("# above one cluster: big enough that writes stay cheap, small enough that");
    println!("# a lone healthy cluster plus neighbors can serve reads.");
}
