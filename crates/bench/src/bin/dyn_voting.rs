//! Static optimal quorums vs Jajodia–Mutchler dynamic voting [12, 13] —
//! the protocol family the paper contrasts with (§1, §3).
//!
//! §3 predicts the outcome: dynamic protocols keep a shrinking
//! "distinguished" lineage alive (good for SURV) but the lineage contracts
//! onto few sites, so an arbitrary submitter is often outside it — ACC,
//! the paper's metric, suffers. This experiment measures ACC for static
//! majority, the Figure-1 static optimum, dynamic voting, and the adaptive
//! QR controller on a sparse and a well-connected paper topology.
//!
//! Usage: cargo run -p quorum-bench --release --bin dyn_voting
//!        [-- --alpha 0.5 --medium-scale]

#![forbid(unsafe_code)]

use quorum_bench::{default_threads, pct, Args, Scale};
use quorum_core::{DynamicVoting, QuorumConsensus, QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_replica::adaptive::{run_adaptive, AdaptiveConfig, Phase};
use quorum_replica::scenario::PaperScenario;
use quorum_replica::simulation::NullObserver;
use quorum_replica::{run_static, CurveSet, RunConfig, Simulation, Workload};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 61);
    let threads = args.get_or("threads", default_threads());
    let alpha: f64 = args.get_or("alpha", 0.5);
    let params = scale.params();

    println!(
        "# Static optimal vs dynamic voting | alpha={alpha} scale={} (ACC metric)",
        scale.label()
    );
    println!("topology\tstatic-majority\tstatic-optimal\tdynamic-voting\tadaptive-QR");
    println!("#         (each cell: ACC / SURV)");

    for chords in [0usize, 16] {
        let sc = PaperScenario::new(chords);
        let topo = sc.topology();
        let n = topo.num_sites();
        let total = n as u64;

        // Calibration run → static optimum for this α.
        let calib = run_static(
            &topo,
            VoteAssignment::uniform(n),
            QuorumSpec::from_read_quorum(total / 2, total).expect("valid"),
            Workload::uniform(n, alpha),
            RunConfig {
                params,
                seed: seed + 1,
                threads,
            },
        );
        let curves = CurveSet::from_run(&calib);
        let opt_spec = curves.optimal(alpha, SearchStrategy::Exhaustive).spec;

        let mut majority = QuorumConsensus::majority(n);
        let mut sim = Simulation::new(&topo, params, Workload::uniform(n, alpha), seed)
            .probe_survivability(true);
        let m_stats = sim.run_batch(&mut majority, &mut NullObserver);
        let (a_majority, s_majority) = (m_stats.availability(), m_stats.surv_availability());

        let mut optimal = QuorumConsensus::new(VoteAssignment::uniform(n), opt_spec);
        let mut sim = Simulation::new(&topo, params, Workload::uniform(n, alpha), seed)
            .probe_survivability(true);
        let o_stats = sim.run_batch(&mut optimal, &mut NullObserver);
        let (a_optimal, s_optimal) = (o_stats.availability(), o_stats.surv_availability());

        let mut dv = DynamicVoting::new(n);
        let mut sim = Simulation::new(&topo, params, Workload::uniform(n, alpha), seed)
            .probe_survivability(true);
        let dv_stats = sim.run_batch(&mut dv, &mut NullObserver);
        assert_eq!(dv_stats.stale_reads, 0, "dynamic voting must be 1SR");
        assert_eq!(dv_stats.write_conflicts, 0);
        let (a_dv, s_dv) = (dv_stats.availability(), dv_stats.surv_availability());

        let adaptive = run_adaptive(
            &topo,
            params,
            &[Phase::new(alpha, params.batch_accesses)],
            QuorumSpec::majority(total),
            AdaptiveConfig {
                write_floor: Some(0.05),
                ..AdaptiveConfig::default()
            },
            seed,
        );
        let a_qr = adaptive[0].stats.availability();

        println!(
            "{}\t{} / {}\t{} / {} (q_r={})\t{} / {} ({} epochs)\t{}",
            sc.label(),
            pct(a_majority),
            pct(s_majority),
            pct(a_optimal),
            pct(s_optimal),
            opt_spec.q_r(),
            pct(a_dv),
            pct(s_dv),
            dv.updates(),
            pct(a_qr),
        );
    }
    println!("# reading (§3 + §5.5): SURV ('can anyone access?') is where dynamic voting");
    println!("# shines — its lineage survives partitions the static quorums cannot. ACC");
    println!("# ('can an arbitrary site access?') tells the opposite story:");
    println!("# on the sparse ring, dynamic voting's shrinking");
    println!("# electorate crushes static majority (~8x) — the adaptivity the dynamic");
    println!("# family is famous for — but still reaches only half of the Figure-1");
    println!("# static optimum, because it treats reads like writes. The paper's");
    println!("# contribution is exactly that read/write distinction; on dense");
    println!("# topologies every contender converges near site reliability.");
}
