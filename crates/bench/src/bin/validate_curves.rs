//! Methodology validation: the "one run, all curves" trick vs direct
//! per-assignment simulation.
//!
//! Thin CLI over [`quorum_bench::validate`]: the figure harness measures
//! one component-vote histogram per topology and derives every
//! `A(α, q_r)` point from it through the Figure-1 model; the validation
//! sweep directly simulates a grid of `(α, q_r)` cells and compares.
//! Cells run in parallel with dynamic load balancing.
//!
//! Usage: cargo run -p quorum-bench --release --bin validate_curves
//!        [-- --topology 4 --seed 6 --medium-scale --manifest m.json]

#![forbid(unsafe_code)]

use quorum_bench::validate::{run, ValidateOpts};
use quorum_bench::{manifest, pct, Args, Scale};

fn main() {
    let args = Args::parse();
    let opts = ValidateOpts::from_cli(&args);

    println!(
        "# Curve-method validation | Topology {} scale={} seed={}",
        opts.chords,
        Scale::from_args(&args).label(),
        opts.seed
    );

    let report = run(&opts);

    println!("alpha\tq_r\tdirect_A\tcurve_A\tdelta");
    for cell in &report.cells {
        println!(
            "{}\t{}\t{}\t{}\t{:+.2}%",
            cell.alpha,
            cell.q_r,
            pct(cell.direct),
            pct(cell.predicted),
            100.0 * (cell.direct - cell.predicted)
        );
        assert!(cell.serializable, "1SR violated — simulator bug");
    }
    println!(
        "# worst |direct − curve| = {:.2}% (both sides carry ~{:.1}% CI at this scale)",
        100.0 * report.worst_delta,
        100.0 * report.reference_half_width
    );

    manifest::write_requested(&args, &report.manifest);
}
