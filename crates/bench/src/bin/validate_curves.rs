//! Methodology validation: the "one run, all curves" trick vs direct
//! per-assignment simulation.
//!
//! The figure harness measures one component-vote histogram per topology
//! and derives every `A(α, q_r)` point from it through the Figure-1 model.
//! This binary spot-checks that shortcut: for a grid of `(α, q_r)` cells
//! it *directly* simulates the static protocol at that exact assignment
//! and workload, then compares the measured grant rate against the curve
//! prediction. Cells run in parallel with dynamic load balancing.
//!
//! Usage: cargo run -p quorum-bench --release --bin validate_curves
//!        [-- --topology 4 --seed 6 --medium-scale]

use quorum_bench::{default_threads, pct, run_jobs, Args, Scale};
use quorum_core::metrics::AvailabilityMetric;
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_replica::scenario::PaperScenario;
use quorum_replica::{run_static, CurveSet, RunConfig, RunResults, Workload};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 6);
    let threads = args.get_or("threads", default_threads());
    let chords: usize = args.get_or("topology", 4);

    let sc = PaperScenario::new(chords);
    let topo = sc.topology();
    let n = topo.num_sites();
    let total = n as u64;

    println!(
        "# Curve-method validation | {} scale={} seed={seed}",
        sc.label(),
        scale.label()
    );

    // Reference: one histogram run → curve family.
    let reference = run_static(
        &topo,
        VoteAssignment::uniform(n),
        QuorumSpec::from_read_quorum(total / 2, total).expect("valid"),
        Workload::uniform(n, 0.5),
        RunConfig {
            params: scale.params(),
            seed,
            threads,
        },
    );
    let curves = CurveSet::from_run(&reference);

    // Grid of direct simulations.
    let grid: Vec<(f64, u64)> = [0.0, 0.5, 1.0]
        .iter()
        .flat_map(|&a| [1u64, 10, 25, 40, 50].map(|q| (a, q)))
        .collect();
    type CellJob<'a> = Box<dyn FnOnce() -> (f64, u64, RunResults) + Send + 'a>;
    let topo_ref = &topo;
    let params = scale.params();
    let jobs: Vec<CellJob> = grid
        .iter()
        .map(|&(alpha, q_r)| {
            Box::new(move || {
                let res = run_static(
                    topo_ref,
                    VoteAssignment::uniform(n),
                    QuorumSpec::from_read_quorum(q_r, total).expect("valid"),
                    Workload::uniform(n, alpha),
                    RunConfig {
                        params,
                        seed: seed + 1000 + q_r + (alpha * 7.0) as u64,
                        threads: 1,
                    },
                );
                (alpha, q_r, res)
            }) as CellJob
        })
        .collect();
    let results = run_jobs(threads, jobs);

    println!("alpha\tq_r\tdirect_A\tcurve_A\tdelta");
    let mut worst: f64 = 0.0;
    for (alpha, q_r, res) in results {
        let direct = res.availability();
        let predicted = curves.availability(AvailabilityMetric::Accessibility, alpha, q_r);
        let delta = (direct - predicted).abs();
        worst = worst.max(delta);
        println!(
            "{alpha}\t{q_r}\t{}\t{}\t{:+.2}%",
            pct(direct),
            pct(predicted),
            100.0 * (direct - predicted)
        );
        assert!(res.is_one_copy_serializable());
    }
    println!(
        "# worst |direct − curve| = {:.2}% (both sides carry ~{:.1}% CI at this scale)",
        100.0 * worst,
        100.0 * reference
            .interval()
            .map(|ci| ci.half_width)
            .unwrap_or(0.0)
    );
}
