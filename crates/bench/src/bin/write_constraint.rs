//! Regenerates the §5.4 worked example (based on Figure 4, Topology 2):
//! with α = 75 % the unconstrained optimum sits at q_r = 1 (availability
//! ≈ 72 %) but q_w = T means writes almost never succeed; demanding write
//! availability A_w ≥ 20 % pushes the assignment to q_r ≈ 28 with overall
//! availability ≈ 50 %.
//!
//! Usage:
//!   cargo run -p quorum-bench --release --bin write_constraint
//!   cargo run -p quorum-bench --release --bin write_constraint -- \
//!       --topology 2 --alpha 0.75 --floor 0.20 --paper-scale
//!
//! Also demonstrates the ω-weighted alternative the paper describes (and
//! rejects) for a few ω values.

#![forbid(unsafe_code)]

use quorum_bench::{default_threads, pct, Args, Scale};
use quorum_core::optimal::optimal_weighted;
use quorum_core::{QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_replica::scenario::PaperScenario;
use quorum_replica::{run_static, CurveSet, RunConfig, Workload};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 54);
    let threads = args.get_or("threads", default_threads());
    let chords: usize = args.get_or("topology", 2);
    let alpha: f64 = args.get_or("alpha", 0.75);
    let floor: f64 = args.get_or("floor", 0.20);

    let sc = PaperScenario::new(chords);
    let topo = sc.topology();
    let n = topo.num_sites();
    let total = n as u64;

    println!(
        "# Write-constraint enhancement (paper §5.4) | {} alpha={alpha} floor={floor} scale={}",
        sc.label(),
        scale.label()
    );

    let cfg = RunConfig {
        params: scale.params(),
        seed,
        threads,
    };
    let results = run_static(
        &topo,
        VoteAssignment::uniform(n),
        QuorumSpec::from_read_quorum(total / 2, total).expect("valid"),
        Workload::uniform(n, alpha),
        cfg,
    );
    let curves = CurveSet::from_run(&results);

    let unconstrained = curves.optimal(alpha, SearchStrategy::Exhaustive);
    println!(
        "unconstrained optimum: q_r={} q_w={} A={} (W={})",
        unconstrained.spec.q_r(),
        unconstrained.spec.q_w(),
        pct(unconstrained.availability),
        pct(unconstrained.write_availability),
    );

    match curves.optimal_with_write_floor(alpha, floor, SearchStrategy::Exhaustive) {
        Some(c) => {
            println!(
                "constrained  optimum: q_r={} q_w={} A={} (W={} >= floor {})",
                c.spec.q_r(),
                c.spec.q_w(),
                pct(c.availability),
                pct(c.write_availability),
                pct(floor),
            );
            println!("# paper's worked numbers at alpha=0.75, floor=20%: q_r ~ 28, A ~ 50%");
        }
        None => println!("floor {} infeasible for this topology", pct(floor)),
    }

    println!("\n# omega-weighted alternative (paper describes, then rejects):");
    println!("omega\tq_r\tq_w\tweighted-objective\tplain-A\tW");
    let model = curves.model(quorum_core::metrics::AvailabilityMetric::Accessibility);
    for omega in [0.0, 0.5, 1.0, 2.0, 5.0] {
        let o = optimal_weighted(model, omega, alpha, SearchStrategy::Exhaustive);
        println!(
            "{omega}\t{}\t{}\t{}\t{}\t{}",
            o.spec.q_r(),
            o.spec.q_w(),
            pct(o.availability),
            pct(alpha * o.read_availability + (1.0 - alpha) * o.write_availability),
            pct(o.write_availability),
        );
    }
}
