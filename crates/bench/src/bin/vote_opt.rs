//! Joint vote/quorum optimization in the non-partitionable model —
//! reproducing the shape of Cheung–Ahamad–Ammar \[7\], the related work the
//! paper extends (§1). \[7\] exhaustively searches networks of up to seven
//! sites; so do we, then cross-check the winning assignment against the
//! *partitionable* simulator to show where the no-partition assumption
//! breaks down.
//!
//! Usage: cargo run -p quorum-bench --release --bin vote_opt
//!        [-- --alpha 0.5 --max-votes 3]

#![forbid(unsafe_code)]

use quorum_bench::{pct, Args};
use quorum_core::nonpartition::{optimal_votes_exhaustive, optimal_votes_hill_climb};
use quorum_core::{QuorumConsensus, QuorumSpec, VoteAssignment};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_replica::simulation::NullObserver;
use quorum_replica::{Simulation, Workload};

fn simulate_assignment(
    topo: &Topology,
    votes: &[u64],
    spec: QuorumSpec,
    alpha: f64,
    seed: u64,
) -> f64 {
    let n = topo.num_sites();
    let va = VoteAssignment::weighted(votes.to_vec());
    let mut sim = Simulation::with_votes(
        topo,
        SimParams {
            warmup_accesses: 2_000,
            batch_accesses: 60_000,
            ..SimParams::paper()
        },
        va.clone(),
        Workload::uniform(n, alpha),
        seed,
    );
    let mut proto = QuorumConsensus::new(va, spec);
    sim.run_batch(&mut proto, &mut NullObserver).availability()
}

fn main() {
    let args = Args::parse();
    let alpha: f64 = args.get_or("alpha", 0.5);
    let max_votes: u64 = args.get_or("max-votes", 3);
    let seed: u64 = args.get_or("seed", 88);

    println!("# Joint vote/quorum optimization (related work [7]) | alpha={alpha}");
    println!("\n## Non-partitionable model (exact DP), n <= 7, votes 0..={max_votes}");
    println!("reliabilities\topt_votes\t(q_r,q_w)\tA_opt\tA_uniform_best\tgain");
    let cases: Vec<Vec<f64>> = vec![
        vec![0.9; 5],
        vec![0.99, 0.9, 0.9, 0.9, 0.9],
        vec![0.99, 0.99, 0.7, 0.7, 0.7],
        vec![0.95, 0.9, 0.85, 0.8, 0.75],
        vec![0.99, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
    ];
    for rel in &cases {
        let opt = optimal_votes_exhaustive(rel, alpha, max_votes);
        // Best uniform-vote assignment for comparison.
        let uni_votes = vec![1u64; rel.len()];
        let uni_model = quorum_core::nonpartition::model_uniform_access(&uni_votes, rel);
        let hi = (rel.len() as u64 / 2).max(1);
        let uni_best = (1..=hi)
            .map(|q| uni_model.availability(alpha, q))
            .fold(f64::MIN, f64::max);
        println!(
            "{rel:?}\t{:?}\t({},{})\t{}\t{}\t{:+.2}pts",
            opt.votes,
            opt.spec.q_r(),
            opt.spec.q_w(),
            pct(opt.availability),
            pct(uni_best),
            100.0 * (opt.availability - uni_best),
        );
    }

    println!("\n## Hill-climb at n = 15 (beyond [7]'s exhaustive reach)");
    let rel15: Vec<f64> = (0..15).map(|i| 0.75 + 0.015 * i as f64).collect();
    let hc = optimal_votes_hill_climb(&rel15, alpha, max_votes);
    println!(
        "votes {:?} (q_r={}, q_w={}) A={} after {} evaluations",
        hc.votes,
        hc.spec.q_r(),
        hc.spec.q_w(),
        pct(hc.availability),
        hc.evaluations
    );

    println!("\n## Does the no-partition optimum survive partitions? (star topology)");
    // A star's hub is a cut vertex: the non-partitionable model sees all
    // sites as equal, but the partitionable simulator knows leaf sites are
    // useless without the hub. Compare uniform vs hub-weighted votes on a
    // simulated 7-site star.
    let topo = Topology::star(7);
    let uniform = vec![1u64; 7];
    let hub_heavy = vec![3u64, 1, 1, 1, 1, 1, 1];
    for (label, votes) in [("uniform", &uniform), ("hub-weighted", &hub_heavy)] {
        let total: u64 = votes.iter().sum();
        let spec = QuorumSpec::majority(total);
        let a = simulate_assignment(&topo, votes, spec, alpha, seed);
        println!(
            "{label:<13} votes={votes:?} majority spec ({},{}) → simulated A = {}",
            spec.q_r(),
            spec.q_w(),
            pct(a)
        );
    }
    println!("# expected: hub-weighted votes win on the star — the partitionable");
    println!("# simulator credits the hub's structural importance, which the");
    println!("# non-partitionable model cannot see. This is the gap the paper's");
    println!("# on-line method (measure f_i, don't assume it) was built to close.");
}
