//! Cross-validates the §4.2 closed-form densities against simulation.
//!
//! For the ring and the fully-connected network the paper gives exact
//! `f_i(v)`; a correct simulator must reproduce them. Caveat on the
//! comparison: the closed forms describe *independent* steady-state
//! component states, while the simulator samples at access instants of an
//! evolving alternating-renewal process — the marginals agree because each
//! site/link process is in steady state at (Poisson) access times. The bus
//! variants are printed analytically (no graph simulation applies).
//!
//! Usage: cargo run -p quorum-bench --release --bin analytic_vs_sim
//!        [-- --sites 31 --medium-scale --seed 7]

#![forbid(unsafe_code)]

use quorum_bench::{default_threads, Args, Scale};
use quorum_core::analytic::{
    bus_density_sites_fail, bus_density_sites_independent, fully_connected_density, ring_density,
};
use quorum_core::{QuorumSpec, VoteAssignment};
use quorum_graph::Topology;
use quorum_replica::{run_static, RunConfig, Workload};
use quorum_stats::VoteHistogram;

fn compare(name: &str, topo: &Topology, analytic: &quorum_stats::DiscreteDist, cfg: RunConfig) {
    let n = topo.num_sites();
    let results = run_static(
        topo,
        VoteAssignment::uniform(n),
        QuorumSpec::from_read_quorum((n as u64) / 2, n as u64).expect("valid"),
        Workload::uniform(n, 0.5),
        cfg,
    );
    let empirical = results.combined.access_votes.estimate();
    let tv = empirical.total_variation(analytic);
    println!(
        "{name}: n={n} observations={} TV(analytic, simulated)={tv:.4} mean_analytic={:.2} mean_sim={:.2}",
        results.combined.access_votes.observations(),
        analytic.mean(),
        empirical.mean()
    );
    println!("  v\tanalytic\tsimulated");
    // Print the head of both densities plus the tail mass.
    let show = 12.min(n);
    for v in 0..=show {
        println!("  {v}\t{:.4}\t{:.4}", analytic.pmf(v), empirical.pmf(v));
    }
    if show < n {
        println!(
            "  >{show}\t{:.4}\t{:.4}",
            analytic.tail_sum(show + 1),
            empirical.tail_sum(show + 1)
        );
    }
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 4);
    let threads = args.get_or("threads", default_threads());
    let n: usize = args.get_or("sites", 31);
    let p = 0.96;
    let r = 0.96;

    println!(
        "# Analytic f_i(v) vs simulation (paper §4.2) | n={n} p={p} r={r} scale={}",
        scale.label()
    );
    let cfg = RunConfig {
        params: scale.params(),
        seed,
        threads,
    };

    compare("ring", &Topology::ring(n), &ring_density(n, p, r), cfg);
    compare(
        "fully-connected",
        &Topology::fully_connected(n),
        &fully_connected_density(n, p, r),
        cfg,
    );

    println!("\n# bus closed forms (analytic only; both §4.2 variants):");
    let bus_fail = bus_density_sites_fail(n, p, r);
    let bus_ind = bus_density_sites_independent(n, p, r);
    println!(
        "bus(sites-fail):        P[v=0]={:.4} mean={:.2} mass={:.6}",
        bus_fail.pmf(0),
        bus_fail.mean(),
        bus_fail.total_mass()
    );
    println!(
        "bus(sites-independent): P[v=0]={:.4} P[v=1]={:.4} mean={:.2} mass={:.6}",
        bus_ind.pmf(0),
        bus_ind.pmf(1),
        bus_ind.mean(),
        bus_ind.total_mass()
    );
}
