//! Event-replay comparison of the component-maintenance kernels.
//!
//! Two measurements, both over the paper's topology families:
//!
//! * **Kernel replay** — a deterministic site/link toggle trace with the
//!   simulator's hot-loop shape (1 topology event per 8 component
//!   reads), replayed three ways: queue-based full BFS per event, word-
//!   parallel bitset BFS per event, and the incremental delta kernel
//!   (merge on recovery, single-component rescan on failure, no-op
//!   filtering). Reports wall-clock and the full-BFS/delta speedup —
//!   the headline ratio EXPERIMENTS.md quotes for chords ≥ 256.
//! * **Engine batches** — full replica-simulator batches (ring, full,
//!   bus) with the kernel on vs off at 1 and `--threads` worker
//!   threads, pinning what the micro numbers buy end to end.
//!
//! With `--manifest <path>` a run manifest is written containing every
//! wall-clock metric plus the kernel-on engine counters, so the
//! `graph.delta_*` fast-path identity (counter sum = topology events)
//! is visible to the CI jq gate.
//!
//! Usage: cargo run -p quorum-bench --release --bin kernel_replay
//!        [-- --paper-scale --threads 2 --seed 11 --events 50000
//!            --manifest results/BENCH_PR.json]

#![forbid(unsafe_code)]

use quorum_bench::{manifest, print_table, run_jobs, Args, Scale};
use quorum_core::{QuorumConsensus, QuorumSpec, VoteAssignment};
use quorum_graph::{ComponentCache, DeltaConnectivity, NetworkState, Topology, TopologyEvent};
use quorum_obs::{Registry, RunManifest};
use quorum_replica::simulation::NullObserver;
use quorum_replica::{BatchStats, Simulation, Workload};
use std::time::Instant;

/// One replayed configuration: label, topology, votes, workload.
struct Setup {
    label: String,
    chords: usize,
    topo: Topology,
    votes: VoteAssignment,
    workload: Workload,
}

/// The paper's families at §5 scale; the bus hub (site 0) relays but
/// carries no votes and submits no accesses.
fn setups() -> Vec<Setup> {
    let mut out = Vec::new();
    for chords in [0usize, 256, 1024] {
        out.push(Setup {
            label: format!("ring-101-c{chords}"),
            chords,
            topo: Topology::ring_with_chords(101, chords),
            votes: VoteAssignment::uniform(101),
            workload: Workload::uniform(101, 0.7),
        });
    }
    out.push(Setup {
        label: "full-101".into(),
        chords: 0,
        topo: Topology::fully_connected(101),
        votes: VoteAssignment::uniform(101),
        workload: Workload::uniform(101, 0.7),
    });
    let bus = Topology::bus(100);
    let n = bus.num_sites();
    let mut votes = vec![1u64; n];
    votes[0] = 0;
    let mut weights = vec![1.0; n];
    weights[0] = 0.0;
    out.push(Setup {
        label: "bus-100".into(),
        chords: 0,
        topo: bus,
        votes: VoteAssignment::weighted(votes),
        workload: Workload::weighted(0.7, &weights, &weights),
    });
    out
}

/// Deterministic toggle trace (inline LCG; every entry is a real
/// transition when replayed from all-up). Down entities always repair
/// but up entities fail only 1 in 24 draws, so the trace settles at the
/// simulator's mostly-up steady state (§5.2 reliability 0.96) instead
/// of a coin-flip regime of half-dead networks.
fn event_trace(topo: &Topology, len: usize, seed: u64) -> Vec<TopologyEvent> {
    let n = topo.num_sites();
    let m = topo.num_links();
    let mut state = NetworkState::all_up(topo);
    let mut x = seed | 1;
    let mut draw = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as usize
    };
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let pick = draw() % (n + m);
        let up_now = if pick < n {
            state.site_up(pick)
        } else {
            state.link_up(pick - n)
        };
        if up_now && draw() % 24 != 0 {
            continue;
        }
        if pick < n {
            state.set_site(pick, !up_now);
            out.push(TopologyEvent::Site {
                site: pick,
                up: !up_now,
            });
        } else {
            state.set_link(pick - n, !up_now);
            out.push(TopologyEvent::Link {
                link: pick - n,
                up: !up_now,
            });
        }
    }
    out
}

fn apply_to_state(state: &mut NetworkState, ev: TopologyEvent) {
    match ev {
        TopologyEvent::Site { site, up } => assert!(state.set_site(site, up)),
        TopologyEvent::Link { link, up } => assert!(state.set_link(link, up)),
    }
}

/// Replays `trace` with 8 component reads per event; `make_cache` picks
/// the kernel. Returns (wall seconds, vote checksum, final cache).
fn replay(
    setup: &Setup,
    trace: &[TopologyEvent],
    make_cache: impl Fn() -> ComponentCache,
) -> (f64, u64, ComponentCache) {
    let votes = setup.votes.as_slice();
    let n = setup.topo.num_sites();
    let mut state = NetworkState::all_up(&setup.topo);
    let mut cache = make_cache();
    cache.view(&setup.topo, &state, votes);
    let started = Instant::now();
    let mut acc = 0u64;
    for (i, &ev) in trace.iter().enumerate() {
        apply_to_state(&mut state, ev);
        cache.apply_event(&setup.topo, &state, votes, ev);
        for k in 0..8usize {
            acc += cache.view(&setup.topo, &state, votes).votes_of((i + k) % n);
        }
    }
    (started.elapsed().as_secs_f64(), acc, cache)
}

/// Replays with a from-scratch word-parallel bitset BFS per event (the
/// middle rung between queue BFS and the incremental kernel).
fn replay_bitset(setup: &Setup, trace: &[TopologyEvent]) -> (f64, u64) {
    let votes = setup.votes.as_slice();
    let n = setup.topo.num_sites();
    let mut state = NetworkState::all_up(&setup.topo);
    let started = Instant::now();
    let mut acc = 0u64;
    for (i, &ev) in trace.iter().enumerate() {
        apply_to_state(&mut state, ev);
        let view = DeltaConnectivity::new(&setup.topo, &state, votes).to_view();
        for k in 0..8usize {
            acc += view.votes_of((i + k) % n);
        }
    }
    (started.elapsed().as_secs_f64(), acc)
}

/// Runs `batches` replica batches under one kernel setting, spread over
/// `threads` workers exactly like the production runner (one engine per
/// worker, disjoint batch indices). Returns (wall secs, merged stats).
fn engine_run(
    setup: &Setup,
    scale: Scale,
    seed: u64,
    kernel: bool,
    threads: usize,
    batches: u64,
) -> (f64, BatchStats) {
    let params = scale.params();
    let spec = QuorumSpec::majority(setup.votes.total());
    let started = Instant::now();
    type Job<'a> = Box<dyn FnOnce() -> BatchStats + Send + 'a>;
    let jobs: Vec<Job<'_>> = (0..batches)
        .map(|b| {
            let (topo, votes, workload) =
                (&setup.topo, setup.votes.clone(), setup.workload.clone());
            Box::new(move || {
                let mut sim = Simulation::with_votes(topo, params, votes.clone(), workload, seed)
                    .with_delta_kernel(kernel);
                let mut proto = QuorumConsensus::new(votes, spec);
                sim.run_indexed_batch(&mut proto, &mut NullObserver, b)
            }) as Job<'_>
        })
        .collect();
    let results = run_jobs(threads, jobs);
    let wall = started.elapsed().as_secs_f64();
    let mut combined = results[0].clone();
    for s in &results[1..] {
        combined.merge(s);
    }
    (wall, combined)
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 11);
    let threads: usize = args.get_or("threads", 2);
    let events: usize = args.get_or(
        "events",
        match scale {
            Scale::Quick => 2_000,
            Scale::Medium => 10_000,
            Scale::Paper => 50_000,
        },
    );
    let batches: u64 = args.get_or("batches", 2);

    let mut m = RunManifest::new("kernel_replay", seed);
    m.params = manifest::sim_params_record(&scale.params());

    println!(
        "# Kernel replay | {events} events x 8 reads, engine batches={batches}, scale={} seed={seed}",
        scale.label()
    );
    let mut rows = Vec::new();
    let setups = setups();
    for setup in &setups {
        let trace = event_trace(&setup.topo, events, seed.wrapping_mul(0x9E3779B97F4A7C15));
        let (full_secs, full_acc, _) = replay(setup, &trace, ComponentCache::new);
        let (bitset_secs, bitset_acc) = replay_bitset(setup, &trace);
        let (delta_secs, delta_acc, cache) = replay(setup, &trace, ComponentCache::incremental);
        assert_eq!(full_acc, delta_acc, "kernel changed a reported number");
        assert_eq!(full_acc, bitset_acc, "bitset BFS changed a reported number");
        let counters = cache.delta_counters();
        assert_eq!(
            counters.total(),
            events as u64,
            "every event must land in exactly one fast-path counter"
        );
        let speedup = full_secs / delta_secs;
        rows.push(vec![
            setup.label.clone(),
            format!("{full_secs:.3}"),
            format!("{bitset_secs:.3}"),
            format!("{delta_secs:.3}"),
            format!("{speedup:.1}x"),
            format!(
                "{}/{}/{}",
                counters.merges, counters.rescans, counters.noops
            ),
        ]);
        m.set_metric(&format!("replay.full_bfs_secs.{}", setup.label), full_secs);
        m.set_metric(
            &format!("replay.bitset_bfs_secs.{}", setup.label),
            bitset_secs,
        );
        m.set_metric(&format!("replay.delta_secs.{}", setup.label), delta_secs);
        m.set_metric(&format!("replay.speedup.{}", setup.label), speedup);
    }
    print_table(
        &[
            "config",
            "full_bfs_s",
            "bitset_bfs_s",
            "delta_s",
            "speedup",
            "merge/rescan/noop",
        ],
        &rows,
    );

    // End-to-end engine wall-clock, kernel on vs off, 1 and N threads.
    // Counters are published from the kernel-on runs only, so the
    // manifest's delta identity (sum = topology events) stays exact.
    let registry = Registry::new();
    let headline = &setups[1];
    m.topology = manifest::topology_record(&headline.label, headline.chords, &headline.topo);
    let mut rows = Vec::new();
    for setup in &setups {
        for t in [1usize, threads.max(2)] {
            let (off_secs, _) = engine_run(setup, scale, seed, false, t, batches);
            let (on_secs, stats) = engine_run(setup, scale, seed, true, t, batches);
            stats.observe_into(&registry);
            rows.push(vec![
                setup.label.clone(),
                format!("{t}"),
                format!("{off_secs:.2}"),
                format!("{on_secs:.2}"),
                format!("{:.2}x", off_secs / on_secs),
            ]);
            m.set_metric(
                &format!("engine.full_bfs_secs.{}.t{t}", setup.label),
                off_secs,
            );
            m.set_metric(&format!("engine.delta_secs.{}.t{t}", setup.label), on_secs);
            m.set_metric(
                &format!("engine.speedup.{}.t{t}", setup.label),
                off_secs / on_secs,
            );
        }
    }
    println!();
    print_table(
        &["config", "threads", "full_bfs_s", "delta_s", "speedup"],
        &rows,
    );
    m.batches = batches;
    m.absorb_snapshot(&registry.snapshot());
    manifest::write_requested(&args, &m);
}
