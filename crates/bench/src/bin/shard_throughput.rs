//! Million-object sharded throughput benchmark.
//!
//! Drives [`quorum_shard`] at paper-scale topology (101 sites): build
//! the shared failure timeline once, then push every object's Poisson
//! access walk through two engines —
//!
//! * the **batched sharded** path (contiguous object shards fanned over
//!   the converge orchestrator, no event queue in the access loop), and
//! * the **naive binary-heap** baseline (every object's next access in
//!   one future-event list, popped one access at a time),
//!
//! asserts their tallies are *equal* (same per-object RNG streams), and
//! reports sustained accesses/sec for both plus the speedup. With
//! `--manifest <path>` the numbers land in a run manifest for the CI
//! throughput gate (`results/BENCH_PR.json` / `BENCH_BASELINE.json`).
//!
//! Counters in the manifest are invariant to `--shards` and
//! `--threads`; wall-clock metrics and the `shard.threads` /
//! `shard.thread_utilization` gauges are the only run-shaped values.
//!
//! With `--per-object` the catalog is expanded to per-object quorum
//! assignments: objects of each class spread over `--alpha-buckets`
//! read-ratio buckets (± `--alpha-spread` around the class α) and the
//! optimizer picks each uniform-vote bucket's `q_r` against the
//! topology's analytic component density (full-connected exactly;
//! chorded rings use the plain ring density as the documented proxy —
//! chords only tighten connectivity, and the engine measures throughput,
//! not the proxy's fidelity).
//!
//! Usage: cargo run -p quorum-bench --release --bin shard_throughput
//!        [-- --objects 1000000 --shards 64 --threads 2 --horizon 2.0
//!            --seed 11 --chords 256 (default: full-101) --skip-naive
//!            --per-object --alpha-buckets 4 --alpha-spread 0.2
//!            --manifest results/BENCH_PR.json]

#![forbid(unsafe_code)]

use quorum_bench::{manifest, print_table, Args};
use quorum_core::analytic::{fully_connected_density, ring_density};
use quorum_des::SimParams;
use quorum_graph::Topology;
use quorum_obs::{keys, Registry, RunManifest};
use quorum_shard::{FailureTimeline, ObjectCatalog, ShardEngine};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get_or("seed", 11);
    let objects: u64 = args.get_or("objects", 50_000);
    let shards: u64 = args.get_or("shards", 64);
    let threads: usize = args.get_or("threads", quorum_bench::default_threads());
    let horizon: f64 = args.get_or("horizon", 2.0);
    let per_object = args.flag("per-object");
    let (label, topology) = match args.get::<usize>("chords") {
        Some(k) => (format!("ring-101-c{k}"), Topology::ring_with_chords(101, k)),
        None => ("full-101".to_string(), Topology::fully_connected(101)),
    };
    let params = SimParams::paper();

    println!(
        "# Shard throughput | {label} objects={objects} shards={shards} threads={threads} \
         horizon={horizon} seed={seed} per_object={per_object}"
    );

    let registry = Registry::new();
    let mut catalog = ObjectCatalog::paper_mix(topology.num_sites(), objects);
    if per_object {
        let n = topology.num_sites();
        let r = params.reliability;
        let density = match args.get::<usize>("chords") {
            Some(_) => ring_density(n, r, r),
            None => fully_connected_density(n, r, r),
        };
        let buckets: usize = args.get_or("alpha-buckets", 4);
        let spread: f64 = args.get_or("alpha-spread", 0.2);
        catalog = catalog.with_optimized_assignments(&density, buckets, spread);
        registry.add(keys::OPTIMIZER_EVALUATIONS, catalog.optimizer_evaluations());
        println!(
            "# per-object assignments: {} profiles over {} classes x {buckets} alpha-buckets \
             ({} optimizer evaluations)",
            catalog.num_assignments(),
            catalog.num_classes(),
            catalog.optimizer_evaluations()
        );
    }
    let timeline = {
        let _t = registry.scoped_timer(keys::PHASE_TIMELINE_BUILD);
        FailureTimeline::build(&topology, &catalog, &params, horizon, seed)
    };
    println!(
        "# timeline: {} epochs over {} site + {} link transitions",
        timeline.num_epochs(),
        timeline.site_transitions(),
        timeline.link_transitions()
    );

    let engine = ShardEngine::new(&topology, &catalog, &timeline, horizon, seed);

    let batched_started = Instant::now();
    let (stats, conv) = {
        let _t = registry.scoped_timer(keys::PHASE_BATCHED_RUN);
        engine.run_sharded(shards, threads)
    };
    let batched_secs = batched_started.elapsed().as_secs_f64();
    let accesses_per_sec = stats.accesses as f64 / batched_secs.max(1e-9);

    let naive = if args.flag("skip-naive") {
        None
    } else {
        let naive_started = Instant::now();
        let naive_stats = {
            let _t = registry.scoped_timer(keys::PHASE_NAIVE_RUN);
            engine.run_naive()
        };
        let naive_secs = naive_started.elapsed().as_secs_f64();
        assert_eq!(
            naive_stats, stats,
            "naive heap and batched shard engines disagree"
        );
        Some((
            naive_stats.accesses as f64 / naive_secs.max(1e-9),
            naive_secs,
        ))
    };

    let mut rows = vec![vec![
        "batched".to_string(),
        format!("{}", stats.accesses),
        format!("{batched_secs:.3}"),
        format!("{accesses_per_sec:.0}"),
        format!("{:.4}", stats.availability()),
    ]];
    if let Some((naive_aps, naive_secs)) = naive {
        rows.push(vec![
            "naive-heap".to_string(),
            format!("{}", stats.accesses),
            format!("{naive_secs:.3}"),
            format!("{naive_aps:.0}"),
            format!("{:.4}", stats.availability()),
        ]);
        rows.push(vec![
            "speedup".to_string(),
            String::new(),
            String::new(),
            format!("{:.2}x", accesses_per_sec / naive_aps),
            String::new(),
        ]);
    }
    print_table(
        &[
            "engine",
            "accesses",
            "wall_s",
            "accesses/sec",
            "availability",
        ],
        &rows,
    );

    stats.observe_into(&registry);
    timeline.observe_into(&registry);
    registry.set_gauge(keys::SHARD_SHARDS, shards as f64);
    registry.set_gauge(keys::SHARD_THREADS, threads as f64);
    registry.set_gauge(keys::SHARD_THREAD_UTILIZATION, conv.utilization());

    let mut m = RunManifest::new("shard_throughput", seed);
    m.params = manifest::sim_params_record(&params);
    m.topology = manifest::topology_record(&label, args.get_or("chords", 0), &topology);
    m.batches = conv.batches;
    m.absorb_snapshot(&registry.snapshot());
    m.set_metric(keys::ACCESSES_PER_SEC, accesses_per_sec);
    m.set_metric(keys::BATCHED_WALL_SECS, batched_secs);
    m.set_metric(keys::AVAILABILITY, stats.availability());
    m.set_metric(keys::HORIZON, horizon);
    if let Some((naive_aps, naive_secs)) = naive {
        m.set_metric(keys::NAIVE_ACCESSES_PER_SEC, naive_aps);
        m.set_metric(keys::NAIVE_WALL_SECS, naive_secs);
        m.set_metric(keys::SPEEDUP_VS_NAIVE, accesses_per_sec / naive_aps);
    }
    manifest::write_requested(&args, &m);
}
