//! Bounded exhaustive model check of the cluster protocol (`quorum-mc`).
//!
//! Explores every reachable state of a scripted [`Universe`] — all
//! message delivery/drop orders, timer fires, partition toggles, and
//! install points — driving the engine's real `ProtocolCore`, and
//! reports state counts plus invariant violations (cross-epoch vote
//! mixing, stale committed reads, multiple write-capable components).
//!
//! The default run certifies the shipped engine: exhaustive within
//! bounds (`truncated == 0`, `capped == false`) and zero violations.
//! `--ablate` re-runs with the `mix_epoch_votes` flag restoring the
//! pre-fix retry behavior; the checker must then find cross-epoch
//! mixing, which is the negative control CI gates on.
//!
//! Usage: cargo run -p quorum-bench --release --bin model_check
//!        [-- --universe standard --ablate --depth 48 --states 4000000
//!            --net-changes 1 --no-reduction --no-symmetry
//!            --manifest run.json]

#![forbid(unsafe_code)]

use quorum_bench::{manifest, print_table, Args};
use quorum_mc::{explore, ExploreOptions, Universe};
use quorum_obs::{Registry, RunManifest};

fn universe_for(name: &str) -> Universe {
    match name {
        "standard" => Universe::standard(),
        "symmetric" => Universe::symmetric(),
        other => panic!("--universe {other:?}: expected standard or symmetric"),
    }
}

fn main() {
    let args = Args::parse();
    let name: String = args.get_or("universe", "standard".to_string());
    let mut universe = universe_for(&name);
    if let Some(nc) = args.get::<u32>("net-changes") {
        universe.max_net_changes = nc;
    }
    let opts = ExploreOptions {
        mix_epoch_votes: args.flag("ablate"),
        reduction: !args.flag("no-reduction"),
        symmetry: !args.flag("no-symmetry"),
        max_depth: args.get::<u32>("depth"),
        max_states: args.get::<u64>("states"),
    };

    println!(
        "# Model check | universe={name} sites={} accesses={} installs={} modes={} ablate={} reduction={} symmetry={}",
        universe.num_sites(),
        universe.accesses.len(),
        universe.installs.len(),
        universe.modes.len(),
        opts.mix_epoch_votes,
        opts.reduction,
        opts.symmetry,
    );

    let started = std::time::Instant::now();
    let report = explore(&universe, &opts);
    let wall = started.elapsed();

    let depth = |d: Option<u32>| d.map_or("—".to_string(), |d| d.to_string());
    let rows = vec![
        vec![
            "states explored".into(),
            format!("{}", report.states_explored),
        ],
        vec!["transitions".into(), format!("{}", report.transitions)],
        vec![
            "exhaustive".into(),
            format!(
                "{} (truncated={}, capped={})",
                report.exhaustive(),
                report.truncated,
                report.capped
            ),
        ],
        vec![
            "violations".into(),
            format!(
                "{} (cross-epoch={}, stale-read={}, multi-write={})",
                report.violations(),
                report.cross_epoch_violations,
                report.stale_read_violations,
                report.multi_write_violations
            ),
        ],
        vec![
            "first violation depth".into(),
            depth(report.first_violation_depth),
        ],
        vec![
            "first cross-epoch depth".into(),
            depth(report.first_cross_epoch_depth),
        ],
        vec![
            "reduction".into(),
            format!(
                "{} dead messages auto-dropped, {} alternatives skipped",
                report.noop_skips, report.por_skips
            ),
        ],
        vec![
            "symmetry group".into(),
            format!("{} permutation(s)", report.symmetry_perms),
        ],
        vec![
            "max depth seen".into(),
            format!("{}", report.max_depth_seen),
        ],
        vec!["wall clock".into(), format!("{:.2}s", wall.as_secs_f64())],
    ];
    print_table(&["metric", "value"], &rows);

    if opts.mix_epoch_votes {
        println!(
            "# ablation (pre-fix behavior): checker must find cross-epoch mixing — found {}",
            report.cross_epoch_violations
        );
    } else if report.exhaustive() && report.violations() == 0 {
        println!("# certified: every reachable state within bounds satisfies all invariants");
    }

    let registry = Registry::new();
    report.observe_into(&registry);
    let mut m = RunManifest::new("model_check", 0);
    m.votes = universe.votes.as_slice().to_vec();
    m.set_metric(quorum_obs::keys::MC_ABLATE, f64::from(opts.mix_epoch_votes));
    m.absorb_snapshot(&registry.snapshot());
    manifest::write_requested(&args, &m);
}
