//! Structural vote-weighting heuristics on asymmetric topologies — with a
//! mostly *negative* result worth knowing.
//!
//! Intuition says a cut vertex deserves extra votes. The experiment says:
//! under majority quorums, symmetric weighting of cut vertices changes
//! almost nothing — when the cut vertex is DOWN every side is a fragment
//! no assignment can rescue, and when it is UP the majority is reachable
//! anyway (at 96 % reliability overwhelmingly so). What *does* move the
//! needle is asymmetric weighting: a primary-side assignment that lets one
//! designated fragment keep operating alone. Four assignments compared —
//! uniform, degree-proportional, articulation-weighted (symmetric), and
//! articulation-primary (all votes on one cut vertex) — at two component
//! reliabilities.
//!
//! Usage: cargo run -p quorum-bench --release --bin vote_heuristics
//!        [-- --alpha 0.5 --reliability 0.85 --medium-scale]

#![forbid(unsafe_code)]

use quorum_bench::{default_threads, pct, run_jobs, Args, Scale};
use quorum_core::{QuorumConsensus, QuorumSpec, VoteAssignment};
use quorum_graph::{articulation_weighted_votes, Topology};
use quorum_replica::simulation::NullObserver;
use quorum_replica::{Simulation, Workload};

fn barbell(k: usize) -> Topology {
    // Two complete graphs of k sites joined by one bridge edge.
    let n = 2 * k;
    let mut links = Vec::new();
    for a in 0..k {
        for b in a + 1..k {
            links.push((a, b));
            links.push((k + a, k + b));
        }
    }
    links.push((k - 1, k));
    Topology::from_links(n, links, format!("barbell-{k}+{k}"))
}

fn simulate(
    topo: &Topology,
    votes: Vec<u64>,
    alpha: f64,
    scale: Scale,
    reliability: f64,
    seed: u64,
) -> f64 {
    let n = topo.num_sites();
    let va = VoteAssignment::weighted(votes);
    let spec = QuorumSpec::majority(va.total());
    let mut params = scale.params();
    params.reliability = reliability;
    let mut sim =
        Simulation::with_votes(topo, params, va.clone(), Workload::uniform(n, alpha), seed);
    let mut proto = QuorumConsensus::new(va, spec);
    sim.run_batch(&mut proto, &mut NullObserver).availability()
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 19);
    let threads = args.get_or("threads", default_threads());
    let alpha: f64 = args.get_or("alpha", 0.5);

    let topologies = vec![Topology::star(15), barbell(8), Topology::grid(4, 4)];
    for reliability in [0.96, 0.85] {
        println!(
            "\n# Structural vote heuristics | alpha={alpha} reliability={reliability} scale={} (majority quorums)",
            scale.label()
        );
        println!("topology\tuniform\tdegree-wt\tcut-wt(symmetric)\tcut-primary");
        for topo in &topologies {
            let n = topo.num_sites();
            let uniform = vec![1u64; n];
            let degree: Vec<u64> = (0..n).map(|s| 1 + topo.degree(s) as u64 / 3).collect();
            let articulation = articulation_weighted_votes(topo, 1, 2);
            // Primary-side: all votes on the first cut vertex (or site 0
            // when the topology has none).
            let cuts = quorum_graph::articulation_points(topo);
            let primary_site = cuts.first().copied().unwrap_or(0);
            let mut primary = vec![0u64; n];
            primary[primary_site] = 1;
            let assignments = vec![uniform, degree, articulation, primary];
            let topo_ref = &topo;
            let jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = assignments
                .into_iter()
                .map(|votes| {
                    Box::new(move || simulate(topo_ref, votes, alpha, scale, reliability, seed))
                        as Box<dyn FnOnce() -> f64 + Send>
                })
                .collect();
            let out = run_jobs(threads, jobs);
            println!(
                "{}\t{}\t{}\t{}\t{}",
                topo.name(),
                pct(out[0]),
                pct(out[1]),
                pct(out[2]),
                pct(out[3]),
            );
        }
    }
    println!("# reading: symmetric cut-vertex weighting is a wash — with the cut DOWN no");
    println!("# side can be rescued by votes, with it UP the majority was reachable");
    println!("# anyway. The asymmetric cut-primary assignment trades a lower ceiling");
    println!("# (the primary must be reachable) for partition immunity; on the barbell");
    println!("# it lets one whole clique keep operating through bridge failures.");
}
