//! Evaluates the dynamic quorum reassignment protocol (§2.2 + §4.3) —
//! the experiment the paper describes but does not measure.
//!
//! A phased workload shifts its read ratio (write-heavy → read-heavy →
//! balanced). Three contenders run through the same phases:
//!   * static majority (never adapts),
//!   * static "oracle" (re-optimized off-line for phase 1 and held),
//!   * adaptive QR (on-line estimates + version-numbered reassignment).
//!
//! Usage: cargo run -p quorum-bench --release --bin dynamic_qr
//!        [-- --topology 0 --seed 3 --accesses 40000]

#![forbid(unsafe_code)]

use quorum_bench::{pct, Args};
use quorum_core::{QuorumConsensus, QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_des::SimParams;
use quorum_replica::adaptive::{run_adaptive, run_phased, AdaptiveConfig, Phase};
use quorum_replica::scenario::PaperScenario;
use quorum_replica::{run_static, CurveSet, RunConfig, Workload};

fn main() {
    let args = Args::parse();
    let chords: usize = args.get_or("topology", 16);
    let seed: u64 = args.get_or("seed", 3);
    let accesses: u64 = args.get_or("accesses", 40_000);

    let sc = PaperScenario::new(chords);
    let topo = sc.topology();
    let n = topo.num_sites();
    let total = n as u64;

    let phases = [
        Phase::new(0.10, accesses),
        Phase::new(0.95, accesses),
        Phase::new(0.50, accesses),
    ];
    let params = SimParams {
        warmup_accesses: 5_000,
        ..SimParams::paper()
    };

    println!(
        "# Dynamic QR vs static (paper §4.3, protocol of §2.2) | {} seed={seed}",
        sc.label()
    );
    println!(
        "# phases: {:?}",
        phases.iter().map(|p| p.alpha).collect::<Vec<_>>()
    );

    // Contender 1: static majority.
    let mut majority = QuorumConsensus::majority(n);
    let static_major = run_phased(&topo, params, &phases, &mut majority, seed);

    // Contender 2: static oracle for phase 1 — off-line optimum computed
    // from a calibration run at the phase-1 ratio, then frozen.
    let calib = run_static(
        &topo,
        VoteAssignment::uniform(n),
        QuorumSpec::from_read_quorum(total / 2, total).expect("valid"),
        Workload::uniform(n, phases[0].alpha),
        RunConfig {
            params: SimParams::quick(),
            seed: seed + 1,
            threads: 4,
        },
    );
    let oracle_spec = CurveSet::from_run(&calib)
        .optimal(phases[0].alpha, SearchStrategy::Exhaustive)
        .spec;
    let mut oracle = QuorumConsensus::new(VoteAssignment::uniform(n), oracle_spec);
    let static_oracle = run_phased(&topo, params, &phases, &mut oracle, seed);

    // Contender 3: adaptive QR. The write floor (§5.4) keeps every
    // installed assignment re-assignable — without it the controller can
    // install a near-ROWA q_w that no future component ever attains,
    // freezing the protocol at the first read-optimized assignment. On
    // very sparse topologies (bare ring) even modest floors are
    // infeasible at steady state and the controller correctly holds: QR
    // reassignment toward reads is a one-way door there (run with
    // `--topology 0` to see it).
    let adaptive = run_adaptive(
        &topo,
        params,
        &phases,
        QuorumSpec::majority(total),
        AdaptiveConfig {
            write_floor: Some(0.05),
            ..AdaptiveConfig::default()
        },
        seed,
    );

    println!(
        "phase\talpha\tstatic-majority\tstatic-phase1-opt\tadaptive-QR\treassignments\tfinal-spec"
    );
    let mut sums = [0.0f64; 3];
    for i in 0..phases.len() {
        let a = static_major[i].1.availability();
        let b = static_oracle[i].1.availability();
        let c = adaptive[i].stats.availability();
        sums[0] += a;
        sums[1] += b;
        sums[2] += c;
        println!(
            "{i}\t{}\t{}\t{}\t{}\t{}\t(q_r={}, q_w={})",
            phases[i].alpha,
            pct(a),
            pct(b),
            pct(c),
            adaptive[i].reassignments,
            adaptive[i].final_spec.q_r(),
            adaptive[i].final_spec.q_w(),
        );
        assert_eq!(adaptive[i].stats.stale_reads, 0, "QR must preserve 1SR");
    }
    let k = phases.len() as f64;
    println!(
        "mean\t-\t{}\t{}\t{}",
        pct(sums[0] / k),
        pct(sums[1] / k),
        pct(sums[2] / k)
    );
    println!("# expected shape (topology 16): adaptive tracks each phase's optimum; the");
    println!("# phase-1-tuned static collapses after the shift; majority is mediocre throughout.");
}
