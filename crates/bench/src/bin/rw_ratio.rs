//! Regenerates the §5.5 analysis: how the read-write ratio moves the
//! optimal quorum assignment across topologies.
//!
//! Prints, for every (topology, α) cell, the argmax `q_r`, whether it is
//! an endpoint, and the availability penalty of ignoring reads (always
//! using the majority end `q_r = ⌊T/2⌋`, as the pre-quorum-consensus
//! protocols do). The paper's summary claims, checked here:
//!   * about half the curves peak at the majority end (low read rates,
//!     highly-connected topologies);
//!   * the rest peak at `q_r = 1` — and for those, the majority
//!     assignment is frequently the *worst* choice.
//!
//! Usage: cargo run -p quorum-bench --release --bin rw_ratio [-- --paper-scale]

#![forbid(unsafe_code)]

use quorum_bench::{default_threads, manifest, pct, run_jobs, Args, Scale};
use quorum_core::{QuorumSpec, SearchStrategy, VoteAssignment};
use quorum_obs::Registry;
use quorum_replica::scenario::{PaperScenario, PAPER_ALPHAS};
use quorum_replica::{run_static_observed, CurveSet, RunConfig, RunResults, Workload};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args);
    let seed: u64 = args.get_or("seed", 55);
    let threads = args.get_or("threads", default_threads());
    let scenarios = PaperScenario::all();

    println!(
        "# Read-write ratio effects (paper §5.5) | scale={} seed={seed}",
        scale.label()
    );

    // One simulation per topology, load-balanced across workers; every
    // run reports into one registry so the manifest covers the sweep.
    let registry = Registry::new();
    let runs = {
        let _t = registry.scoped_timer(quorum_obs::keys::RW_RATIO_SIMULATIONS);
        let reg = &registry;
        let jobs: Vec<Box<dyn FnOnce() -> RunResults + Send + '_>> = scenarios
            .iter()
            .map(|sc| {
                let topo = sc.topology();
                let cfg = RunConfig {
                    params: scale.params(),
                    seed,
                    threads: 1,
                };
                Box::new(move || {
                    let n = topo.num_sites();
                    run_static_observed(
                        &topo,
                        VoteAssignment::uniform(n),
                        QuorumSpec::from_read_quorum(n as u64 / 2, n as u64).expect("valid"),
                        Workload::uniform(n, 0.5),
                        cfg,
                        reg,
                    )
                }) as Box<dyn FnOnce() -> RunResults + Send + '_>
            })
            .collect();
        run_jobs(threads, jobs)
    };

    println!("topology\talpha\topt_q_r\topt_A\tendpoint\tA_at_majority_end\tmajority_is_minimum");
    // Tie tolerance = the paper's CI half-width: on dense topologies the
    // curve is flat at the top, so strict argmax position is noise.
    let tol = 0.005;
    let mut majority_end_attains = 0usize;
    let mut strict_majority_argmax = 0usize;
    let mut cells = 0usize;
    for (sc, run) in scenarios.iter().zip(&runs) {
        let curves = CurveSet::from_run(run);
        let total = curves.total_votes();
        let hi = total / 2;
        for &alpha in &PAPER_ALPHAS {
            let opt = curves.optimal(alpha, SearchStrategy::Exhaustive);
            let series = curves.curve(
                quorum_core::metrics::AvailabilityMetric::Accessibility,
                alpha,
            );
            let at_end = series[hi as usize - 1];
            let min = series.iter().cloned().fold(f64::MAX, f64::min);
            let majority_is_min = (at_end - min).abs() < 1e-9;
            let endpoint = opt.spec.q_r() == 1 || opt.spec.q_r() == hi;
            if opt.spec.q_r() == hi {
                strict_majority_argmax += 1;
            }
            if at_end >= opt.availability - tol {
                majority_end_attains += 1;
            }
            cells += 1;
            println!(
                "{}\t{alpha}\t{}\t{}\t{endpoint}\t{}\t{majority_is_min}",
                sc.chords,
                opt.spec.q_r(),
                pct(opt.availability),
                pct(at_end),
            );
        }
    }
    println!(
        "# {}/{} cells: the majority end attains the maximum within the paper's ±0.5% CI",
        majority_end_attains, cells
    );
    println!(
        "# ({} of those have their strict argmax exactly at q_r = ⌊T/2⌋; paper: about one half)",
        strict_majority_argmax
    );

    // Fully-connected sanity: topology 256 and 4949 curves nearly coincide
    // (the paper omits Figure for 4949 for this reason).
    let c256 = CurveSet::from_run(&runs[5]);
    let c4949 = CurveSet::from_run(&runs[6]);
    let mut worst: f64 = 0.0;
    for &alpha in &PAPER_ALPHAS {
        for q in 1..=50u64 {
            let d = (c256.availability(
                quorum_core::metrics::AvailabilityMetric::Accessibility,
                alpha,
                q,
            ) - c4949.availability(
                quorum_core::metrics::AvailabilityMetric::Accessibility,
                alpha,
                q,
            ))
            .abs();
            worst = worst.max(d);
        }
    }
    println!(
        "# max |A(topology 256) - A(topology 4949)| over all curves: {:.2}% (paper: nearly identical)",
        100.0 * worst
    );

    // Structural fields describe the first topology's run; counters and
    // timers aggregate the whole seven-topology sweep.
    let sc0 = scenarios[0];
    let mut m = manifest::manifest_for_run(
        "rw_ratio",
        seed,
        &scale.params(),
        &sc0.label(),
        sc0.chords,
        &sc0.topology(),
        &VoteAssignment::uniform(sc0.topology().num_sites()),
        &runs[0],
        &registry,
    );
    m.batches = m.counter(quorum_obs::keys::RUN_BATCHES);
    m.set_metric(
        quorum_obs::keys::RW_RATIO_MAJORITY_END_ATTAINS_FRACTION,
        majority_end_attains as f64 / cells as f64,
    );
    m.set_metric(
        quorum_obs::keys::RW_RATIO_STRICT_MAJORITY_ARGMAX,
        strict_majority_argmax as f64,
    );
    m.set_metric(quorum_obs::keys::RW_RATIO_DENSE_TOPOLOGY_MAX_DELTA, worst);
    manifest::write_requested(&args, &m);
}
