//! Fixture: exact float comparison in the numeric core (`no-float-eq`).
//! Epsilon-style comparison is the sanctioned shape.

pub fn saturated(availability: f64) -> bool {
    availability == 1.0
}

pub fn distinct(a: f64, b: f64) -> bool {
    a != b
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}
