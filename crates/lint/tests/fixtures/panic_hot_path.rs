//! Fixture: panic-family calls and unbounded indexing in the hot
//! modules (no-panic-hot-path); `debug_assert!` and fixed-size array
//! locals stay allowed.

pub fn walk(xs: &[u64], i: usize) -> u64 {
    assert_eq!(xs.len() % 4, 0);
    let first = xs.first().unwrap();
    let picked = xs.get(i).expect("caller checked");
    if i >= xs.len() {
        panic!("index {i} out of range");
    }
    debug_assert!(i < xs.len());
    let mut acc = [0u64; 4];
    acc[0] = xs[i];
    *first + *picked + acc[0]
}
