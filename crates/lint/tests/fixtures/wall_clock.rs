//! Fixture: wall-clock reads in a simulated path (`no-wall-clock`).

pub fn batch_seconds() -> f64 {
    let start = std::time::Instant::now();
    work();
    start.elapsed().as_secs_f64()
}

pub fn stamp_nanos() -> u128 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_nanos()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn timeout_guard_may_read_the_clock() {
        let _deadline = std::time::Instant::now();
    }
}

fn work() {}
