//! Fixture: sequential `StdRng` leaking into a scoped access hot path.

use quorum_stats::rng::rng_from_seed;

pub fn walk(seed: u64) -> u64 {
    let mut rng = rng_from_seed(seed);
    step(&mut rng)
}

fn step(rng: &mut rand::rngs::StdRng) -> u64 {
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn reference_engine_may_use_it() {
        let _rng: rand::rngs::StdRng = super::build();
    }
}
