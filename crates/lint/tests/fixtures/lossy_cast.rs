//! Fixture: narrowing `as` casts in hot modules (no-lossy-cast);
//! widening and float casts pass.

pub fn pack(object: usize, rate: f64) -> (u32, u64, u16, f32) {
    let id = object as u32;
    let wide = object as u64;
    let class = (object / 2) as u16;
    let ratio = rate as f32;
    (id, wide, class, ratio)
}
