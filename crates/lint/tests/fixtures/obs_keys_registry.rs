//! Fixture: the declared metric-key schema (obs-key-registry). Every
//! key is a constant here; two deliberate defects below.

/// Granted accesses per walk.
pub const WALK_GRANTED: &str = "walk.granted";
/// Denied accesses per walk.
pub const WALK_DENIED: &str = "walk.denied";
/// Declared but referenced nowhere: dead schema.
pub const WALK_ORPHANED: &str = "walk.orphaned";
/// Second constant spelling an already-declared key value.
pub const WALK_GRANTED_ALIAS: &str = "walk.granted";
