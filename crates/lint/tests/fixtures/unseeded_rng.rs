//! Fixture: OS-entropy randomness (`no-unseeded-rng`) — the rule runs
//! with `include_tests = true`, so the test module is flagged too.

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rand::random::<f64>() + noise(&mut rng)
}

#[cfg(test)]
mod tests {
    #[test]
    fn entropy_seeding_is_flagged_even_here() {
        let _rng = rand::rngs::StdRng::from_entropy();
    }
}

fn noise<R>(_r: &mut R) -> f64 {
    0.0
}
