//! Fixture: hash-iteration order reaching deterministic output
//! (`no-unordered-iteration`). Keyed lookup stays legal; iterating is
//! flagged, and strict mode flags the declaration itself.

use std::collections::HashMap;

pub struct Stats {
    per_site: HashMap<u64, u64>,
}

impl Stats {
    pub fn lookup(&self, site: u64) -> u64 {
        *self.per_site.get(&site).unwrap_or(&0)
    }

    pub fn rows(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (site, count) in &self.per_site {
            out.push((*site, *count));
        }
        out
    }

    pub fn total(&self) -> u64 {
        self.per_site.values().sum()
    }
}
