//! Fixture: a crate root without `#![forbid(unsafe_code)]`
//! (`forbid-unsafe` flags it only when the path matches a root glob).

pub fn add(a: u64, b: u64) -> u64 {
    a + b
}
