//! Fixture: temporal effects inside a protocol core must flow through
//! the `Scheduler` trait (scheduler-discipline); a raw `EventQueue`
//! touch is an effect quorum-mc's replay never sees.

impl<'a, S: Scheduler> ProtocolCore<'a, S> {
    fn on_read(&mut self, msg: Message) {
        self.sched.schedule(self.rtt, Event::ReadDone);
        let mut bypass = EventQueue::new();
        bypass.push(msg);
    }
}

impl Harness {
    fn drain(q: &mut EventQueue) {
        q.clear();
    }
}
