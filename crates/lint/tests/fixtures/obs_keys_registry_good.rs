//! Fixture: a clean schema — every key declared once, every key
//! referenced by an emitter.

pub const WALK_GRANTED: &str = "walk.granted";
pub const WALK_DENIED: &str = "walk.denied";
