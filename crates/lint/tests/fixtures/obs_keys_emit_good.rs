//! Fixture: every emission references a declared constant; lints
//! clean against the good registry fixture.

pub fn publish(obs: &mut Registry, denied: u64) {
    obs.counter(keys::WALK_GRANTED, 1);
    obs.set_gauge(keys::WALK_DENIED, denied as f64);
}
