//! Fixture: emission sites checked against the registry fixture; one
//! good reference, three drifts, one indirect reference.

pub fn publish(obs: &mut Registry, denied: u64) {
    obs.counter(keys::WALK_GRANTED, 1);
    obs.counter("walk.denied", denied);
    obs.counter("walk.phantom", 1);
    obs.set_gauge(keys::WALK_MISSING, 1.0);
    retire(keys::WALK_GRANTED_ALIAS);
}
