//! Fixture-driven acceptance tests for every rule: each known-bad
//! snippet is flagged at the expected lines, an exact `file:line`
//! allowlist entry suppresses it, and a drifted anchor is a hard error
//! (exit 2). The last test runs the real engine over the real workspace
//! under the shipped `lint.toml` and requires a clean exit — so a stale
//! allowlist anchor fails `cargo test`, not just CI's lint job.

#![forbid(unsafe_code)]

use quorum_lint::{run_sources, Config};

const WALL_CLOCK: &str = include_str!("fixtures/wall_clock.rs");
const UNSEEDED_RNG: &str = include_str!("fixtures/unseeded_rng.rs");
const UNORDERED: &str = include_str!("fixtures/unordered_iteration.rs");
const MISSING_FORBID: &str = include_str!("fixtures/missing_forbid.rs");
const FLOAT_EQ: &str = include_str!("fixtures/float_eq.rs");
const STDRNG_HOT: &str = include_str!("fixtures/stdrng_hot_path.rs");
const OBS_REGISTRY: &str = include_str!("fixtures/obs_keys_registry.rs");
const OBS_EMIT: &str = include_str!("fixtures/obs_keys_emit.rs");
const OBS_REGISTRY_GOOD: &str = include_str!("fixtures/obs_keys_registry_good.rs");
const OBS_EMIT_GOOD: &str = include_str!("fixtures/obs_keys_emit_good.rs");
const SCHED: &str = include_str!("fixtures/scheduler_discipline.rs");
const PANIC_HOT: &str = include_str!("fixtures/panic_hot_path.rs");
const LOSSY: &str = include_str!("fixtures/lossy_cast.rs");

fn config(toml: &str) -> Config {
    Config::parse(toml).expect("fixture config parses")
}

/// (rule, line) pairs of an outcome's findings, for compact asserts.
fn found(out: &quorum_lint::Outcome) -> Vec<(&str, u32)> {
    out.findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn wall_clock_fixture_is_flagged_outside_tests() {
    let out = run_sources(
        &[("crates/demo/src/wall.rs", WALL_CLOCK)],
        &Config::default(),
    );
    assert_eq!(
        found(&out),
        vec![("no-wall-clock", 4), ("no-wall-clock", 10)],
        "{:?}",
        out.findings
    );
    assert_eq!(out.exit_code(), 1);
}

#[test]
fn unseeded_rng_fixture_is_flagged_in_tests_too() {
    let cfg = config("[rules.no-unseeded-rng]\ninclude_tests = true\n");
    let out = run_sources(&[("crates/demo/src/rng.rs", UNSEEDED_RNG)], &cfg);
    assert_eq!(
        found(&out),
        vec![
            ("no-unseeded-rng", 5),
            ("no-unseeded-rng", 6),
            ("no-unseeded-rng", 13),
        ],
        "{:?}",
        out.findings
    );
    assert_eq!(out.exit_code(), 1);
}

#[test]
fn unordered_iteration_fixture_flags_iteration_not_lookup() {
    let out = run_sources(
        &[("crates/demo/src/stats.rs", UNORDERED)],
        &Config::default(),
    );
    assert_eq!(
        found(&out),
        vec![
            ("no-unordered-iteration", 18),
            ("no-unordered-iteration", 25),
        ],
        "{:?}",
        out.findings
    );
}

#[test]
fn unordered_iteration_strict_mode_also_flags_the_declaration() {
    let cfg = config("[rules.no-unordered-iteration]\nforbid_types = true\n");
    let out = run_sources(&[("crates/demo/src/stats.rs", UNORDERED)], &cfg);
    assert_eq!(
        found(&out),
        vec![
            ("no-unordered-iteration", 8),
            ("no-unordered-iteration", 18),
            ("no-unordered-iteration", 25),
        ],
        "{:?}",
        out.findings
    );
}

#[test]
fn missing_forbid_fixture_is_flagged_only_at_crate_roots() {
    let cfg = config("[rules.forbid-unsafe]\nroots = [\"crates/*/src/lib.rs\"]\n");
    let out = run_sources(&[("crates/demo/src/lib.rs", MISSING_FORBID)], &cfg);
    assert_eq!(
        found(&out),
        vec![("forbid-unsafe", 1)],
        "{:?}",
        out.findings
    );
    // The identical file at a non-root path is not a crate root.
    let out = run_sources(&[("crates/demo/src/helper.rs", MISSING_FORBID)], &cfg);
    assert_eq!(out.findings, vec![]);
}

#[test]
fn float_eq_fixture_is_flagged_inside_scoped_paths_only() {
    let cfg = config("[rules.no-float-eq]\npaths = [\"crates/core\"]\n");
    let out = run_sources(&[("crates/core/src/avail.rs", FLOAT_EQ)], &cfg);
    assert_eq!(
        found(&out),
        vec![("no-float-eq", 5), ("no-float-eq", 9)],
        "{:?}",
        out.findings
    );
    // Outside the scoped numeric core the same comparisons pass.
    let out = run_sources(&[("crates/graph/src/avail.rs", FLOAT_EQ)], &cfg);
    assert_eq!(out.findings, vec![]);
}

#[test]
fn stdrng_fixture_is_flagged_inside_scoped_paths_tests_exempt() {
    let cfg = config("[rules.no-stdrng]\npaths = [\"crates/shard\"]\n");
    let out = run_sources(&[("crates/shard/src/walk.rs", STDRNG_HOT)], &cfg);
    assert_eq!(
        found(&out),
        vec![("no-stdrng", 3), ("no-stdrng", 6), ("no-stdrng", 10)],
        "{:?}",
        out.findings
    );
    assert_eq!(out.exit_code(), 1);
    // Outside the scoped hot paths — every other crate, and anything
    // allowlisted like the once-per-run timeline replay — StdRng stays
    // the default seeded generator.
    let out = run_sources(&[("crates/replica/src/walk.rs", STDRNG_HOT)], &cfg);
    assert_eq!(out.findings, vec![]);
}

#[test]
fn obs_key_registry_fixture_flags_both_directions() {
    let cfg = config("[rules.obs-key-registry]\nregistry = \"crates/obs/src/keys.rs\"\n");
    let out = run_sources(
        &[
            ("crates/obs/src/keys.rs", OBS_REGISTRY),
            ("crates/demo/src/emit.rs", OBS_EMIT),
        ],
        &cfg,
    );
    // Emitter drifts: literal spelling of a declared key (6), undeclared
    // key (7), unresolved constant reference (8). Schema drifts: dead
    // declaration (9), duplicate value (11). WALK_GRANTED_ALIAS stays
    // live via the indirect `retire(…)` reference, so its only finding
    // is the duplicate.
    assert_eq!(
        found(&out),
        vec![
            ("obs-key-registry", 6),
            ("obs-key-registry", 7),
            ("obs-key-registry", 8),
            ("obs-key-registry", 9),
            ("obs-key-registry", 11),
        ],
        "{:?}",
        out.findings
    );
    assert_eq!(out.findings[0].file, "crates/demo/src/emit.rs");
    assert!(out.findings[0].message.contains("WALK_DENIED"));
    assert_eq!(out.findings[3].file, "crates/obs/src/keys.rs");
    assert!(out.findings[3].message.contains("WALK_ORPHANED"));
    assert!(out.findings[4].message.contains("re-declares"));
    assert_eq!(out.exit_code(), 1);
}

#[test]
fn obs_key_registry_good_pair_is_clean() {
    let cfg = config("[rules.obs-key-registry]\nregistry = \"crates/obs/src/keys.rs\"\n");
    let out = run_sources(
        &[
            ("crates/obs/src/keys.rs", OBS_REGISTRY_GOOD),
            ("crates/demo/src/emit.rs", OBS_EMIT_GOOD),
        ],
        &cfg,
    );
    assert_eq!(out.findings, vec![], "clean pair lints clean");
    assert_eq!(out.exit_code(), 0);
}

#[test]
fn scheduler_discipline_fixture_flags_only_policed_impls() {
    let cfg = config(
        "[rules.scheduler-discipline]\n\
         paths = [\"crates/cluster\"]\n\
         impls = [\"ProtocolCore\"]\n",
    );
    let out = run_sources(&[("crates/cluster/src/proto.rs", SCHED)], &cfg);
    // `EventQueue::new()` inside the ProtocolCore impl (8); the
    // Scheduler-routed call above it and the whole Harness impl pass.
    assert_eq!(
        found(&out),
        vec![("scheduler-discipline", 8)],
        "{:?}",
        out.findings
    );
    // The same source outside the configured paths is not policed.
    let out = run_sources(&[("crates/shard/src/proto.rs", SCHED)], &cfg);
    assert_eq!(out.findings, vec![]);
}

#[test]
fn panic_hot_path_fixture_flags_panics_and_scoped_indexing() {
    let cfg = config(
        "[rules.no-panic-hot-path]\n\
         paths = [\"crates/shard/src/engine.rs\", \"crates/graph/src/delta.rs\"]\n\
         index_paths = [\"crates/shard/src/engine.rs\"]\n",
    );
    let out = run_sources(&[("crates/shard/src/engine.rs", PANIC_HOT)], &cfg);
    // assert_eq! (6), unwrap (7), expect (8), panic! (10), xs[i] (14).
    // debug_assert! compiles out and `acc` is a fixed-size array local.
    assert_eq!(
        found(&out),
        vec![
            ("no-panic-hot-path", 6),
            ("no-panic-hot-path", 7),
            ("no-panic-hot-path", 8),
            ("no-panic-hot-path", 10),
            ("no-panic-hot-path", 14),
        ],
        "{:?}",
        out.findings
    );
    // delta.rs is panic-scoped but not index-scoped: same source, no
    // indexing finding.
    let out = run_sources(&[("crates/graph/src/delta.rs", PANIC_HOT)], &cfg);
    assert_eq!(
        found(&out),
        vec![
            ("no-panic-hot-path", 6),
            ("no-panic-hot-path", 7),
            ("no-panic-hot-path", 8),
            ("no-panic-hot-path", 10),
        ],
        "{:?}",
        out.findings
    );
    // Outside the hot modules the rule does not run at all.
    let out = run_sources(&[("crates/bench/src/driver.rs", PANIC_HOT)], &cfg);
    assert_eq!(out.findings, vec![]);
}

#[test]
fn lossy_cast_fixture_flags_narrowing_only() {
    let cfg = config("[rules.no-lossy-cast]\npaths = [\"crates/graph/src/delta.rs\"]\n");
    let out = run_sources(&[("crates/graph/src/delta.rs", LOSSY)], &cfg);
    // `as u32` (5) and `as u16` (7); `as u64` widens and `as f32` is
    // not an integer truncation.
    assert_eq!(
        found(&out),
        vec![("no-lossy-cast", 5), ("no-lossy-cast", 7)],
        "{:?}",
        out.findings
    );
    let out = run_sources(&[("crates/graph/src/view.rs", LOSSY)], &cfg);
    assert_eq!(out.findings, vec![]);
}

#[test]
fn exact_allowlist_anchors_suppress_every_semantic_rule_finding() {
    let cfg = config(
        r#"
[rules.obs-key-registry]
registry = "crates/obs/src/keys.rs"

[rules.scheduler-discipline]
paths = ["crates/cluster"]
impls = ["ProtocolCore"]

[rules.no-panic-hot-path]
paths = ["crates/shard/src/engine.rs"]
index_paths = ["crates/shard/src/engine.rs"]

[rules.no-lossy-cast]
paths = ["crates/graph/src/delta.rs"]

[[allow]]
rule = "obs-key-registry"
file = "crates/demo/src/emit.rs"
line = 6
reason = "fixture: literal spelling pending migration"

[[allow]]
rule = "obs-key-registry"
file = "crates/demo/src/emit.rs"
line = 7
reason = "fixture: key declared in a follow-up"

[[allow]]
rule = "obs-key-registry"
file = "crates/demo/src/emit.rs"
line = 8
reason = "fixture: constant lands with the next schema rev"

[[allow]]
rule = "obs-key-registry"
file = "crates/obs/src/keys.rs"
line = 9
reason = "fixture: emitter lands in a follow-up"

[[allow]]
rule = "obs-key-registry"
file = "crates/obs/src/keys.rs"
line = 11
reason = "fixture: alias kept one release for dashboard migration"

[[allow]]
rule = "scheduler-discipline"
file = "crates/cluster/src/proto.rs"
line = 8
reason = "fixture: bootstrap queue built before the scheduler exists"

[[allow]]
rule = "no-panic-hot-path"
file = "crates/shard/src/engine.rs"
line = 6
reason = "fixture: constructor-time shape validation"

[[allow]]
rule = "no-panic-hot-path"
file = "crates/shard/src/engine.rs"
line = 7
reason = "fixture: non-empty by construction"

[[allow]]
rule = "no-panic-hot-path"
file = "crates/shard/src/engine.rs"
line = 8
reason = "fixture: caller-checked bound"

[[allow]]
rule = "no-panic-hot-path"
file = "crates/shard/src/engine.rs"
line = 10
reason = "fixture: unreachable after the bound check"

[[allow]]
rule = "no-panic-hot-path"
file = "crates/shard/src/engine.rs"
line = 14
reason = "fixture: i bounded by the branch above"

[[allow]]
rule = "no-lossy-cast"
file = "crates/graph/src/delta.rs"
line = 5
reason = "fixture: object ids bounded by the table size"

[[allow]]
rule = "no-lossy-cast"
file = "crates/graph/src/delta.rs"
line = 7
reason = "fixture: class count is single digits"
"#,
    );
    let out = run_sources(
        &[
            ("crates/obs/src/keys.rs", OBS_REGISTRY),
            ("crates/demo/src/emit.rs", OBS_EMIT),
            ("crates/cluster/src/proto.rs", SCHED),
            ("crates/shard/src/engine.rs", PANIC_HOT),
            ("crates/graph/src/delta.rs", LOSSY),
        ],
        &cfg,
    );
    assert_eq!(out.findings, vec![], "all findings suppressed");
    assert_eq!(out.suppressed, 13);
    assert_eq!(out.stale, vec![]);
    assert_eq!(out.exit_code(), 0);
}

#[test]
fn anchor_audit_gives_drift_its_own_exit_code() {
    // Findings alone: the audit passes (code 0) even though the plain
    // lint exit is 1 — `--check-anchors` cares only about allowlist
    // health.
    let out = run_sources(
        &[("crates/demo/src/wall.rs", WALL_CLOCK)],
        &Config::default(),
    );
    assert_eq!(out.exit_code(), 1);
    assert_eq!(out.anchor_audit_code(), 0, "audit ignores findings");
    // A deliberately drifted anchor: the audit exits 3, distinct from
    // both "findings" (1) and the plain run's stale error (2).
    let cfg = config(
        r#"
[[allow]]
rule = "no-wall-clock"
file = "crates/demo/src/wall.rs"
line = 6  # reviewed when the call sat on line 6; it is on line 4 now
reason = "fixture: drifted anchor"
"#,
    );
    let out = run_sources(&[("crates/demo/src/wall.rs", WALL_CLOCK)], &cfg);
    assert_eq!(out.stale.len(), 1);
    assert_eq!(out.exit_code(), 2);
    assert_eq!(out.anchor_audit_code(), 3);
}

#[test]
fn exact_allowlist_anchors_suppress_every_fixture_finding() {
    let cfg = config(
        r#"
[rules.no-unseeded-rng]
include_tests = true

[[allow]]
rule = "no-wall-clock"
file = "crates/demo/src/wall.rs"
line = 4
reason = "fixture: driver wall-clock is the measured quantity"

[[allow]]
rule = "no-wall-clock"
file = "crates/demo/src/wall.rs"
line = 10
reason = "fixture: manifest stamps a human-readable start time"

[[allow]]
rule = "no-unseeded-rng"
file = "crates/demo/src/rng.rs"
line = 5
reason = "fixture: jitter outside the measured path"

[[allow]]
rule = "no-unseeded-rng"
file = "crates/demo/src/rng.rs"
line = 6
reason = "fixture: jitter outside the measured path"

[[allow]]
rule = "no-unseeded-rng"
file = "crates/demo/src/rng.rs"
line = 13
reason = "fixture: test-only entropy draw"

[[allow]]
rule = "no-unordered-iteration"
file = "crates/demo/src/stats.rs"
line = 18
reason = "fixture: rows are sorted by the caller before emission"

[[allow]]
rule = "no-unordered-iteration"
file = "crates/demo/src/stats.rs"
line = 25
reason = "fixture: summation is order-independent"
"#,
    );
    let out = run_sources(
        &[
            ("crates/demo/src/wall.rs", WALL_CLOCK),
            ("crates/demo/src/rng.rs", UNSEEDED_RNG),
            ("crates/demo/src/stats.rs", UNORDERED),
        ],
        &cfg,
    );
    assert_eq!(out.findings, vec![], "all findings suppressed");
    assert_eq!(out.suppressed, 7);
    assert_eq!(out.stale, vec![]);
    assert_eq!(out.exit_code(), 0);
}

#[test]
fn drifted_allowlist_anchor_is_a_hard_error() {
    // The justification was written for line 4; the finding is still
    // there, but the anchor has drifted one line — the entry goes stale
    // AND the finding resurfaces, and stale dominates the exit code.
    let cfg = config(
        r#"
[[allow]]
rule = "no-wall-clock"
file = "crates/demo/src/wall.rs"
line = 5
reason = "was reviewed when the call sat on line 5"
"#,
    );
    let out = run_sources(&[("crates/demo/src/wall.rs", WALL_CLOCK)], &cfg);
    assert_eq!(out.stale.len(), 1);
    assert_eq!(out.stale[0].line, 5);
    assert_eq!(found(&out)[0], ("no-wall-clock", 4));
    assert_eq!(out.exit_code(), 2, "stale beats plain findings");
}

#[test]
fn findings_render_as_file_line_rule_message() {
    let out = run_sources(
        &[("crates/demo/src/wall.rs", WALL_CLOCK)],
        &Config::default(),
    );
    let first = out.findings[0].to_string();
    assert!(
        first.starts_with("crates/demo/src/wall.rs:4: no-wall-clock: "),
        "{first}"
    );
}

#[test]
fn real_workspace_is_clean_under_the_shipped_config() {
    // CARGO_MANIFEST_DIR is crates/lint; the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml readable");
    let cfg = Config::parse(&toml).expect("shipped lint.toml parses");
    let out = quorum_lint::run(&root, &cfg).expect("workspace walk succeeds");
    assert_eq!(out.findings, vec![], "unallowlisted findings in workspace");
    assert_eq!(out.stale, vec![], "stale allowlist anchors in lint.toml");
    assert_eq!(out.exit_code(), 0);
    assert!(out.files > 100, "walked {} files", out.files);
    // ~20 determinism-rule anchors plus the hot-path invariant entries
    // the semantic rules added; a big drop here means a rule went dead.
    assert!(out.suppressed >= 45, "suppressed {}", out.suppressed);
}
