//! Report rendering: the default `file:line: rule: message` text, plus
//! machine formats for CI (`--format json`, `--format sarif`).
//!
//! The JSON is hand-rolled — the lint crate is dependency-free by
//! design (the build environment is offline), and both formats here are
//! flat enough that a serializer would be more code than this. SARIF
//! output targets the 2.1.0 schema subset code-scanning UIs ingest:
//! one run, one rule descriptor per [`crate::rules::RULE_IDS`] entry,
//! one result per finding with a physical location.

use crate::engine::Outcome;
use crate::model::json_str;
use crate::rules::RULE_IDS;

/// Output format selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable `file:line: rule: message` lines (default).
    Text,
    /// A flat JSON object with findings, stale anchors, and counts.
    Json,
    /// SARIF 2.1.0 for code-scanning upload.
    Sarif,
}

impl Format {
    /// Parses a `--format` argument.
    pub fn parse(s: &str) -> Result<Format, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "sarif" => Ok(Format::Sarif),
            other => Err(format!(
                "unknown format `{other}` (expected text, json, or sarif)"
            )),
        }
    }
}

/// Renders `outcome` in `format`. Text output matches what [`render_text`]
/// prints; the machine formats embed the same findings plus the stale
/// allowlist entries, so a SARIF consumer sees anchor drift too.
pub fn render(outcome: &Outcome, format: Format) -> String {
    match format {
        Format::Text => render_text(outcome),
        Format::Json => render_json(outcome),
        Format::Sarif => render_sarif(outcome),
    }
}

/// The default human-readable report.
pub fn render_text(outcome: &Outcome) -> String {
    let mut s = String::new();
    for f in &outcome.findings {
        s.push_str(&format!("{f}\n"));
    }
    for a in &outcome.stale {
        s.push_str(&format!("stale allowlist entry: {a}\n"));
    }
    s.push_str(&format!(
        "{} files checked, {} findings, {} suppressed, {} stale allowlist entries\n",
        outcome.files,
        outcome.findings.len(),
        outcome.suppressed,
        outcome.stale.len()
    ));
    s
}

/// Flat JSON: `{"files", "suppressed", "findings": […], "stale": […]}`.
pub fn render_json(outcome: &Outcome) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"files\": {},\n", outcome.files));
    s.push_str(&format!("  \"suppressed\": {},\n", outcome.suppressed));
    s.push_str("  \"findings\": [\n");
    for (i, f) in outcome.findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            comma(i, outcome.findings.len())
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"stale\": [\n");
    for (i, a) in outcome.stale.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}{}\n",
            json_str(&a.rule),
            json_str(&a.file),
            a.line,
            json_str(&a.reason),
            comma(i, outcome.stale.len())
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// SARIF 2.1.0. Findings map to `level: error` results; stale allowlist
/// entries map to `level: warning` results under the synthetic rule id
/// `stale-allowlist-anchor` so they surface in the same UI.
pub fn render_sarif(outcome: &Outcome) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"quorum-lint\",\n");
    s.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    s.push_str("          \"rules\": [\n");
    let mut rules: Vec<&str> = RULE_IDS.to_vec();
    rules.push("stale-allowlist-anchor");
    for (i, r) in rules.iter().enumerate() {
        s.push_str(&format!(
            "            {{\"id\": {}}}{}\n",
            json_str(r),
            comma(i, rules.len())
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    let total = outcome.findings.len() + outcome.stale.len();
    let mut n = 0usize;
    for f in &outcome.findings {
        s.push_str(&sarif_result(
            f.rule,
            "error",
            &f.message,
            &f.file,
            f.line,
            comma(n, total),
        ));
        n += 1;
    }
    for a in &outcome.stale {
        let message = format!(
            "allowlist entry for {} no longer suppresses a finding (reason was: {})",
            a.rule, a.reason
        );
        s.push_str(&sarif_result(
            "stale-allowlist-anchor",
            "warning",
            &message,
            &a.file,
            a.line,
            comma(n, total),
        ));
        n += 1;
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

fn sarif_result(
    rule: &str,
    level: &str,
    message: &str,
    file: &str,
    line: u32,
    trailing: &'static str,
) -> String {
    format!(
        "        {{\"ruleId\": {rule}, \"level\": {level}, \
         \"message\": {{\"text\": {msg}}}, \"locations\": [{{\"physicalLocation\": \
         {{\"artifactLocation\": {{\"uri\": {uri}}}, \"region\": \
         {{\"startLine\": {line}}}}}}}]}}{trailing}\n",
        rule = json_str(rule),
        level = json_str(level),
        msg = json_str(message),
        uri = json_str(file),
        line = line,
        trailing = trailing,
    )
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllowEntry;
    use crate::rules::Finding;

    fn outcome() -> Outcome {
        Outcome {
            findings: vec![Finding {
                file: "crates/x/src/a.rs".into(),
                line: 3,
                rule: "no-wall-clock",
                message: "`Instant::now` reads the \"wall\" clock".into(),
            }],
            stale: vec![AllowEntry {
                rule: "no-float-eq".into(),
                file: "crates/y/src/b.rs".into(),
                line: 9,
                reason: "drifted".into(),
            }],
            suppressed: 2,
            files: 5,
        }
    }

    #[test]
    fn text_report_lists_findings_stale_and_counts() {
        let s = render(&outcome(), Format::Text);
        assert!(s.contains("crates/x/src/a.rs:3: no-wall-clock:"));
        assert!(s.contains("stale allowlist entry: crates/y/src/b.rs:9"));
        assert!(s.contains("5 files checked, 1 findings, 2 suppressed, 1 stale"));
    }

    #[test]
    fn json_report_escapes_and_carries_stale() {
        let s = render(&outcome(), Format::Json);
        assert!(s.contains(r#""rule": "no-wall-clock""#));
        assert!(s.contains(r#"the \"wall\" clock"#));
        assert!(s.contains(r#""stale""#));
        assert!(s.contains(r#""reason": "drifted""#));
    }

    #[test]
    fn sarif_report_declares_all_rules_and_locates_results() {
        let s = render(&outcome(), Format::Sarif);
        assert!(s.contains("\"version\": \"2.1.0\""));
        for r in RULE_IDS {
            assert!(s.contains(&format!("{{\"id\": \"{r}\"}}")), "{r}");
        }
        assert!(s.contains(r#""ruleId": "no-wall-clock", "level": "error""#));
        assert!(s.contains(r#""ruleId": "stale-allowlist-anchor", "level": "warning""#));
        assert!(s.contains(r#""startLine": 3"#));
        assert!(s.contains(r#""uri": "crates/y/src/b.rs""#));
    }

    #[test]
    fn format_parse_accepts_known_names_only() {
        assert_eq!(Format::parse("sarif"), Ok(Format::Sarif));
        assert_eq!(Format::parse("json"), Ok(Format::Json));
        assert_eq!(Format::parse("text"), Ok(Format::Text));
        assert!(Format::parse("xml").is_err());
    }
}
