//! Item-level parsing on top of the token stream: the per-file half of
//! the workspace semantic model.
//!
//! The lexer gives exact tokens with exact lines; this module recovers
//! the item structure the cross-file rules need — `mod`/`fn`/`impl`
//! spans by brace matching, metric-emission call sites with their
//! string-literal or `SCREAMING_CASE` constant arguments, `pub const
//! NAME: &str = "…";` key declarations, and fixed-size array locals
//! (whose indexing is structurally bounded). It is deliberately *not* a
//! grammar-complete parser: every consumer is a lint rule that must
//! degrade to "no findings" on code it cannot model, never crash.

use crate::lexer::{Tok, TokKind};
use crate::rules::SourceFile;
use std::collections::BTreeSet;

/// What kind of item a [`Item`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// An inline `mod name { … }`.
    Mod,
    /// A `fn name(…) { … }` at any nesting depth.
    Fn,
    /// An `impl Type { … }` or `impl Trait for Type { … }`.
    Impl,
}

/// One parsed item with its token span (`[start, end]` inclusive, both
/// indices into the file's token stream).
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// `mod`/`fn` name, or the impl's *type* name (`ProtocolCore` for
    /// `impl<'a, S> ProtocolCore<'a, S>` and for
    /// `impl Scheduler for ProtocolCore`).
    pub name: String,
    /// Trait name for trait impls (`Scheduler` in
    /// `impl Scheduler for NetScheduler`), `None` otherwise.
    pub trait_name: Option<String>,
    /// Token-index span of the item including its body braces.
    pub span: (usize, usize),
    /// 1-based line of the item keyword.
    pub line: u32,
}

/// How an emission site names its metric key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitArg {
    /// A string literal: the raw key text.
    Literal(String),
    /// A path ending in a `SCREAMING_CASE` identifier — a reference to
    /// a declared key constant (`keys::MC_STATES_EXPLORED`).
    ConstRef(String),
}

/// One metric-emission call site: `.method("key", …)` or
/// `.method(keys::CONST, …)` for a method in [`EMIT_METHODS`].
#[derive(Debug, Clone)]
pub struct EmitSite {
    /// The method called (`counter`, `add`, `set_gauge`, …).
    pub method: String,
    /// How the key argument is spelled.
    pub arg: EmitArg,
    /// 1-based line of the call.
    pub line: u32,
    /// Token index of the method identifier (for test-mask lookup).
    pub tok_index: usize,
}

/// One `const NAME: &str = "value";` declaration.
#[derive(Debug, Clone)]
pub struct KeyConst {
    /// The constant's identifier.
    pub name: String,
    /// The declared key string.
    pub value: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// Methods whose first argument names a metric key. Covers the
/// `quorum_obs` Registry (`counter`/`add`/`set_gauge`/`scoped_timer`/
/// `record_duration`), `RunManifest::set_metric`,
/// `LatencyHistogram::to_record`, and the conventional `gauge`/
/// `histogram` spellings so renamed emitters stay covered.
pub const EMIT_METHODS: [&str; 9] = [
    "counter",
    "add",
    "set_gauge",
    "scoped_timer",
    "record_duration",
    "set_metric",
    "to_record",
    "gauge",
    "histogram",
];

/// The per-file semantic model: items, emission sites, key constants,
/// and structurally-bounded array locals.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Parsed `mod`/`fn`/`impl` items (spans may nest).
    pub items: Vec<Item>,
    /// Metric-emission call sites.
    pub emits: Vec<EmitSite>,
    /// `const NAME: &str = "…";` declarations.
    pub key_consts: Vec<KeyConst>,
    /// Names of locals bound to fixed-size arrays (`let x = [0; N]` or
    /// `let x: [T; N] = …`): indexing them is bounded by a compile-time
    /// length, so `no-panic-hot-path` exempts it.
    pub fixed_arrays: BTreeSet<String>,
}

impl FileModel {
    /// Builds the model for one lexed file.
    pub fn build(file: &SourceFile) -> Self {
        let toks = &file.toks;
        let mut model = FileModel::default();
        collect_items(toks, &mut model.items);
        collect_emits(toks, &mut model.emits);
        collect_key_consts(toks, &mut model.key_consts);
        collect_fixed_arrays(toks, &mut model.fixed_arrays);
        model
    }

    /// Impl items whose *type* name is in `names`.
    pub fn impls_of<'a>(&'a self, names: &'a [String]) -> impl Iterator<Item = &'a Item> {
        self.items
            .iter()
            .filter(move |it| it.kind == ItemKind::Impl && names.contains(&it.name))
    }
}

/// Index of the `}` matching the `{` at `open` (or the last token if
/// unbalanced — the damaged-tail rule again).
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct("{") {
            depth += 1;
        } else if toks[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

fn collect_items(toks: &[Tok], out: &mut Vec<Item>) {
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("mod") || t.is_ident("fn") {
            // `mod name { … }` / `fn name(…) … { … }`; declarations
            // ending in `;` (`mod name;`, trait method signatures) have
            // no body span and are skipped.
            let kind = if t.text == "mod" {
                ItemKind::Mod
            } else {
                ItemKind::Fn
            };
            if let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                let mut j = i + 2;
                while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct("{") {
                    out.push(Item {
                        kind,
                        name: name_tok.text.clone(),
                        trait_name: None,
                        span: (i, match_brace(toks, j)),
                        line: t.line,
                    });
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some(item) = parse_impl_header(toks, i) {
                out.push(item);
            }
            i += 1;
            continue;
        }
        i += 1;
    }
}

/// Parses `impl [<…>] Path [for Path] [where …] { … }` at `i`.
fn parse_impl_header(toks: &[Tok], i: usize) -> Option<Item> {
    // Header tokens run from after `impl` to the body `{`; `for` at
    // angle-depth 0 splits trait from type.
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut split: Option<usize> = None;
    let open = loop {
        let t = toks.get(j)?;
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct("{") && angle <= 0 {
            break j;
        } else if t.is_punct(";") {
            return None;
        } else if t.is_ident("for") && angle <= 0 {
            split = Some(j);
        }
        j += 1;
    };
    let last_ident = |range: &[Tok]| -> Option<String> {
        let mut depth = 0i32;
        let mut last = None;
        for t in range {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
            } else if depth <= 0 && t.kind == TokKind::Ident && t.text != "where" {
                last = Some(t.text.clone());
            }
        }
        last
    };
    // A `where` clause ends the type path; names after it are bounds.
    let header_end = toks[i + 1..open]
        .iter()
        .position(|t| t.is_ident("where"))
        .map(|p| i + 1 + p)
        .unwrap_or(open);
    let (trait_name, name) = match split {
        Some(f) if f < header_end => (
            last_ident(&toks[i + 1..f]),
            last_ident(&toks[f + 1..header_end])?,
        ),
        _ => (None, last_ident(&toks[i + 1..header_end])?),
    };
    Some(Item {
        kind: ItemKind::Impl,
        name,
        trait_name,
        span: (i, match_brace(toks, open)),
        line: toks[i].line,
    })
}

/// True for `SCREAMING_CASE` constant names (at least one uppercase
/// letter, no lowercase).
fn is_screaming(name: &str) -> bool {
    name.chars().any(|c| c.is_ascii_uppercase())
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

fn collect_emits(toks: &[Tok], out: &mut Vec<EmitSite>) {
    for i in 1..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !EMIT_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if !toks[i - 1].is_punct(".") || !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let arg_at = i + 2;
        let arg = match toks.get(arg_at) {
            Some(a) if a.kind == TokKind::Str => Some(EmitArg::Literal(a.text.clone())),
            Some(a) if a.kind == TokKind::Ident => {
                // Walk a plain `path::to::CONST` and take its last
                // segment; anything else (variables, `format!`, field
                // accesses) is a dynamic key the model cannot see.
                let mut j = arg_at;
                while toks.get(j + 1).is_some_and(|p| p.is_punct("::"))
                    && toks.get(j + 2).is_some_and(|n| n.kind == TokKind::Ident)
                {
                    j += 2;
                }
                let terminated = toks
                    .get(j + 1)
                    .is_some_and(|n| n.is_punct(",") || n.is_punct(")"));
                let last = &toks[j].text;
                (terminated && is_screaming(last)).then(|| EmitArg::ConstRef(last.clone()))
            }
            _ => None,
        };
        if let Some(arg) = arg {
            out.push(EmitSite {
                method: t.text.clone(),
                arg,
                line: t.line,
                tok_index: i,
            });
        }
    }
}

fn collect_key_consts(toks: &[Tok], out: &mut Vec<KeyConst>) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("const") {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        if !toks.get(i + 2).is_some_and(|c| c.is_punct(":")) {
            continue;
        }
        // `: &str` / `: &'static str`, then `= "…" ;`.
        let mut j = i + 3;
        let limit = (i + 8).min(toks.len());
        while j < limit && !toks[j].is_punct("=") {
            j += 1;
        }
        let is_str = toks[i + 3..j].iter().any(|t| t.is_ident("str"));
        if !is_str {
            continue;
        }
        if let Some(v) = toks.get(j + 1).filter(|v| v.kind == TokKind::Str) {
            if toks.get(j + 2).is_some_and(|s| s.is_punct(";")) {
                out.push(KeyConst {
                    name: name.text.clone(),
                    value: v.text.clone(),
                    line: name.line,
                });
            }
        }
    }
}

fn collect_fixed_arrays(toks: &[Tok], out: &mut BTreeSet<String>) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        // `let name: [T; N]` or `let name = [init; N]` / `[a, b, c]` —
        // either way the bound is a compile-time length.
        let fixed = match toks.get(j + 1) {
            Some(p) if p.is_punct(":") => toks.get(j + 2).is_some_and(|b| b.is_punct("[")),
            Some(p) if p.is_punct("=") => toks.get(j + 2).is_some_and(|b| b.is_punct("[")),
            _ => false,
        };
        if fixed {
            out.insert(name.text.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build(&SourceFile::new("crates/x/src/a.rs", src))
    }

    #[test]
    fn items_resolve_mods_fns_and_impls() {
        let src = r#"
            mod inner {
                fn helper() { body(); }
            }
            impl<'a, S: Scheduler> ProtocolCore<'a, S> {
                fn open_session(&mut self) {}
            }
            impl Scheduler for NetScheduler<'_> {
                fn now(&self) -> f64 { 0.0 }
            }
        "#;
        let m = model(src);
        let names: Vec<(ItemKind, &str, Option<&str>)> = m
            .items
            .iter()
            .map(|i| (i.kind, i.name.as_str(), i.trait_name.as_deref()))
            .collect();
        assert!(names.contains(&(ItemKind::Mod, "inner", None)));
        assert!(names.contains(&(ItemKind::Fn, "helper", None)));
        assert!(names.contains(&(ItemKind::Fn, "open_session", None)));
        assert!(names.contains(&(ItemKind::Impl, "ProtocolCore", None)));
        assert!(names.contains(&(ItemKind::Impl, "NetScheduler", Some("Scheduler"))));
    }

    #[test]
    fn impl_spans_cover_their_bodies() {
        let src = "impl Core { fn f(&self) { tick(); } }\nfn outside() { tock(); }";
        let m = model(src);
        let imp = m
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Impl)
            .expect("impl parsed");
        let file = SourceFile::new("crates/x/src/a.rs", src);
        let inside: Vec<&str> = file.toks[imp.span.0..=imp.span.1]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(inside.contains(&"tick"));
        assert!(!inside.contains(&"tock"));
    }

    #[test]
    fn emit_sites_capture_literals_and_const_refs() {
        let src = r#"
            fn publish(r: &Registry) {
                r.add("mc.states_explored", 1);
                r.set_gauge(quorum_obs::keys::MC_MAX_DEPTH, 3.0);
                r.counter(keys::CACHE_HITS);
                r.set_metric(&format!("load.{name}"), 0.5);
                r.scoped_timer(phase);
            }
        "#;
        let m = model(src);
        let got: Vec<(&str, &EmitArg)> = m
            .emits
            .iter()
            .map(|e| (e.method.as_str(), &e.arg))
            .collect();
        assert_eq!(
            got,
            vec![
                ("add", &EmitArg::Literal("mc.states_explored".into())),
                ("set_gauge", &EmitArg::ConstRef("MC_MAX_DEPTH".into())),
                ("counter", &EmitArg::ConstRef("CACHE_HITS".into())),
            ],
            "dynamic keys (format!, variables) are invisible by design"
        );
    }

    #[test]
    fn key_consts_parse_name_value_and_line() {
        let src = "pub const DES_EVENTS: &str = \"des.events_processed\";\npub const OTHER: &'static str = \"x.y\";\npub const NOT_A_KEY: u64 = 3;";
        let m = model(src);
        let got: Vec<(&str, &str, u32)> = m
            .key_consts
            .iter()
            .map(|k| (k.name.as_str(), k.value.as_str(), k.line))
            .collect();
        assert_eq!(
            got,
            vec![
                ("DES_EVENTS", "des.events_processed", 1),
                ("OTHER", "x.y", 2)
            ]
        );
    }

    #[test]
    fn fixed_array_locals_are_recognized() {
        let src = r#"
            fn stripe() {
                let mut seed = [0u64; STRIPE];
                let live: [usize; 64] = [0; 64];
                let trio = [a, b, c];
                let heap = Vec::new();
                let slice = &seed[..];
            }
        "#;
        let m = model(src);
        assert!(m.fixed_arrays.contains("seed"));
        assert!(m.fixed_arrays.contains("live"));
        assert!(m.fixed_arrays.contains("trio"));
        assert!(!m.fixed_arrays.contains("heap"));
        assert!(!m.fixed_arrays.contains("slice"));
    }
}
