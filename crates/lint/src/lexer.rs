//! A minimal Rust lexer: just enough token structure for the rule
//! engine to pattern-match reliably.
//!
//! The build environment is offline, so `syn` is unavailable; full AST
//! fidelity is also unnecessary — every rule in [`crate::rules`] is a
//! token-sequence property (`Instant :: now`, `#![forbid(unsafe_code)]`,
//! `== <float>`), not a type-level one. What *does* matter, and what a
//! regex over raw text gets wrong, is that matches never come from
//! comments, doc comments, or string literals, and that line numbers are
//! exact. The lexer handles nested block comments, escapes, raw/byte
//! strings, and the `'a` lifetime vs `'a'` char ambiguity so the rules
//! can treat the token stream as ground truth.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules don't need the distinction).
    Ident,
    /// Punctuation. Multi-char operators the rules match on (`::`, `==`,
    /// `!=`) are fused into one token; everything else is single-char.
    Punct,
    /// String literal (normal, raw, byte, or byte-raw). The token text
    /// is the literal's *inner* content (delimiters and any `r#`/`b`
    /// prefix stripped, escape sequences left undecoded) so the
    /// obs-key-registry rule can read metric keys out of call sites.
    Str,
    /// Character or byte literal.
    Char,
    /// Integer literal.
    Int,
    /// Floating-point literal (has a fractional part, exponent, or an
    /// `f32`/`f64` suffix).
    Float,
    /// Lifetime such as `'a`.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text. For string literals this is the inner content
    /// (escapes undecoded); every ident/punct matcher is kind-gated, so
    /// retaining it cannot leak literal contents into rule matches.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexes Rust source into a token stream.
///
/// Unterminated constructs (a dangling string or block comment) lex to
/// the end of input rather than erroring: the linter must degrade to
/// "no findings in the damaged tail", never crash, because it runs on
/// work-in-progress trees.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        bytes: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.quote(),
                _ if b.is_ascii_digit() => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                    if depth == 0 {
                        return;
                    }
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes a `"`-delimited string with escapes. `pos` is at the
    /// opening quote.
    fn string(&mut self) {
        let line = self.line;
        self.pos += 1;
        let start = self.pos;
        let mut end = self.bytes.len();
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    // An escaped newline (line continuation) still ends a
                    // physical line; missing it would drift every later
                    // token's line number — and with them the allowlist
                    // anchors.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                b'"' => {
                    end = self.pos;
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text = self.src[start..end.min(self.src.len())].to_string();
        self.push(TokKind::Str, text, line);
    }

    /// Consumes `r"..."` / `r#"..."#` (any `#` depth). `pos` is at the
    /// first `#` or quote after the `r`/`br` prefix.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let start = self.pos.min(self.bytes.len());
        let mut end = self.bytes.len();
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.bytes[self.pos] == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    end = self.pos;
                    self.pos += 1 + hashes;
                    break;
                }
            }
            self.pos += 1;
        }
        let text = self.src[start..end.min(self.src.len())].to_string();
        self.push(TokKind::Str, text, line);
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    /// `pos` is at the opening quote.
    fn quote(&mut self) {
        let line = self.line;
        // Escape ⇒ unambiguously a char literal.
        if self.peek(1) == Some(b'\\') {
            self.pos += 2; // quote + backslash
            self.pos += 1; // escaped byte (enough for \' \\ \n \u{...} scanning below)
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos += 1;
            self.push(TokKind::Char, String::new(), line);
            return;
        }
        // `'ident` not followed by a closing quote ⇒ lifetime.
        let mut end = self.pos + 1;
        while end < self.bytes.len()
            && (self.bytes[end] == b'_' || self.bytes[end].is_ascii_alphanumeric())
        {
            end += 1;
        }
        if end > self.pos + 1 && self.bytes.get(end) != Some(&b'\'') {
            let text = self.src[self.pos..end].to_string();
            self.pos = end;
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        // Char literal (possibly multi-byte UTF-8): scan to closing quote.
        self.pos += 1;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
            self.pos += 1;
        }
        self.pos += 1;
        self.push(TokKind::Char, String::new(), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut float = false;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x') | Some(b'o') | Some(b'b'))
        {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
        } else {
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_digit() || b == b'_')
            {
                self.pos += 1;
            }
            // Fractional part: `1.5` yes, `1.method()` and `0..n` no.
            if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
                float = true;
                self.pos += 1;
                while self
                    .peek(0)
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(0), Some(b'e') | Some(b'E'))
                && (self.peek(1).is_some_and(|b| b.is_ascii_digit())
                    || (matches!(self.peek(1), Some(b'+') | Some(b'-'))
                        && self.peek(2).is_some_and(|b| b.is_ascii_digit())))
            {
                float = true;
                self.pos += 1;
                if matches!(self.peek(0), Some(b'+') | Some(b'-')) {
                    self.pos += 1;
                }
                while self
                    .peek(0)
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.pos += 1;
                }
            }
            // Type suffix (`1f64`, `2u32`).
            let suffix_start = self.pos;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            let suffix = &self.src[suffix_start..self.pos];
            if suffix == "f32" || suffix == "f64" {
                float = true;
            }
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, self.src[start..self.pos].to_string(), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        // Raw/byte string and byte-char prefixes. An `r#`/`br#` prefix is
        // only a raw string if a `"` follows the hashes — `r#type` is a
        // raw *identifier*, and treating it as a string would swallow the
        // rest of the file hunting for a closing `"#`.
        let next = self.peek(0);
        match (text, next) {
            ("r" | "br" | "b" | "rb", Some(b'"')) => {
                self.raw_or_plain_string(text);
                return;
            }
            ("r" | "br" | "rb", Some(b'#')) => {
                let mut ahead = 0usize;
                while self.peek(ahead) == Some(b'#') {
                    ahead += 1;
                }
                if self.peek(ahead) == Some(b'"') {
                    self.raw_or_plain_string(text);
                    return;
                }
                // Raw identifier: consume the `#` and lex the name; the
                // token is the bare identifier (`r#type` ⇒ `type`).
                self.pos += 1;
                let name_start = self.pos;
                while self
                    .peek(0)
                    .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
                {
                    self.pos += 1;
                }
                let name = self.src[name_start..self.pos].to_string();
                self.push(TokKind::Ident, name, line);
                return;
            }
            ("b", Some(b'\'')) => {
                self.quote();
                return;
            }
            _ => {}
        }
        self.push(TokKind::Ident, text.to_string(), line);
    }

    fn raw_or_plain_string(&mut self, prefix: &str) {
        if prefix == "b" {
            self.string()
        } else {
            self.raw_string()
        }
    }

    fn punct(&mut self) {
        let line = self.line;
        let b = self.bytes[self.pos];
        let two = match (b, self.peek(1)) {
            (b':', Some(b':')) => Some("::"),
            (b'=', Some(b'=')) => Some("=="),
            (b'!', Some(b'=')) => Some("!="),
            _ => None,
        };
        if let Some(t) = two {
            self.pos += 2;
            self.push(TokKind::Punct, t.to_string(), line);
        } else {
            self.pos += 1;
            self.push(TokKind::Punct, (b as char).to_string(), line);
        }
    }
}

/// Returns a per-token mask marking tokens inside test-only items:
/// anything annotated `#[cfg(test)]` or `#[test]` (the annotated item's
/// full body, found by brace matching).
///
/// Rules use the mask to skip test code where a rule's config says so —
/// e.g. wall-clock reads in a latency assertion are fine, wall-clock in
/// an event scheduler is not.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if is_test_attr(toks, i) {
            // Cover from the attribute through the end of the item it
            // annotates: skip any further attributes, then brace-match.
            let start = i;
            let mut j = skip_attr(toks, i);
            while is_attr_start(toks, j) {
                j = skip_attr(toks, j);
            }
            // Find the item body `{ ... }`, stopping at `;` for
            // braceless items (`#[cfg(test)] use helpers;`).
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("{") {
                let mut depth = 0usize;
                while j < toks.len() {
                    if toks[j].is_punct("{") {
                        depth += 1;
                    } else if toks[j].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let end = j.min(toks.len().saturating_sub(1));
            for m in mask.iter_mut().take(end + 1).skip(start) {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

fn is_attr_start(toks: &[Tok], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct("#")) && toks.get(i + 1).is_some_and(|t| t.is_punct("["))
}

/// True if tokens at `i` start `#[test]`, `#[cfg(test)]`, or a
/// `cfg`-list containing `test` (`#[cfg(any(test, feature = "x"))]`).
fn is_test_attr(toks: &[Tok], i: usize) -> bool {
    if !is_attr_start(toks, i) {
        return false;
    }
    let end = skip_attr(toks, i);
    let body = &toks[i + 2..end.saturating_sub(1).max(i + 2)];
    match body.first() {
        Some(t) if t.is_ident("test") && body.len() == 1 => true,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Returns the index just past the `]` closing the attribute at `i`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    let mut depth = 0usize;
    while j < toks.len() {
        if toks[j].is_punct("[") {
            depth += 1;
        } else if toks[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let src = r##"
            // Instant::now in a comment
            /* HashMap /* nested */ SystemTime */
            let s = "thread_rng inside a string";
            let r = r#"Instant::now "quoted" raw"#;
            let b = b"from_entropy";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "from_entropy"));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn float_classification() {
        let kinds: Vec<_> = lex("1 1.5 2e3 1e-9 3f64 7u32 0.5 0xff 0..n")
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds[0], TokKind::Int);
        assert_eq!(kinds[1], TokKind::Float);
        assert_eq!(kinds[2], TokKind::Float);
        assert_eq!(kinds[3], TokKind::Float);
        assert_eq!(kinds[4], TokKind::Float);
        assert_eq!(kinds[5], TokKind::Int);
        assert_eq!(kinds[6], TokKind::Float);
        assert_eq!(kinds[7], TokKind::Int);
        // `0..n` must not lex `0.` as a float.
        assert_eq!(kinds[8], TokKind::Int);
    }

    #[test]
    fn fused_operators_and_lines() {
        let toks = lex("a == b\n  c::d != e");
        let eq = toks.iter().find(|t| t.is_punct("==")).unwrap();
        assert_eq!(eq.line, 1);
        let path = toks.iter().find(|t| t.is_punct("::")).unwrap();
        assert_eq!(path.line, 2);
        assert!(toks.iter().any(|t| t.is_punct("!=")));
    }

    #[test]
    fn test_mask_covers_cfg_test_module() {
        let src = r#"
            fn real() { now(); }
            #[cfg(test)]
            mod tests {
                fn helper() { now(); }
            }
            fn also_real() { now(); }
        "#;
        let toks = lex(src);
        let mask = test_mask(&toks);
        let nows: Vec<bool> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("now"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(nows, vec![false, true, false]);
    }

    #[test]
    fn test_mask_covers_test_fn_with_extra_attrs() {
        let src = r#"
            #[test]
            #[should_panic(expected = "boom")]
            fn explodes() { now(); }
            fn real() { now(); }
        "#;
        let toks = lex(src);
        let mask = test_mask(&toks);
        let nows: Vec<bool> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("now"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(nows, vec![true, false]);
    }

    fn strs(src: &str) -> Vec<(String, u32)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| (t.text, t.line))
            .collect()
    }

    #[test]
    fn string_contents_are_retained() {
        let src = r#"let k = "des.events_processed"; let e = "a\"b\\c";"#;
        let s = strs(src);
        assert_eq!(s[0].0, "des.events_processed");
        // Escapes stay undecoded; the delimiters and both escaped bytes
        // are inside the content.
        assert_eq!(s[1].0, r#"a\"b\\c"#);
    }

    #[test]
    fn raw_string_contents_exclude_delimiters() {
        let src = r###"
            let a = r"plain raw";
            let b = r#"one "quoted" hash"#;
            let c = r##"nested "# inside"##;
            let d = br#"bytes"#;
        "###;
        let s = strs(src);
        assert_eq!(s[0].0, "plain raw");
        assert_eq!(s[1].0, r#"one "quoted" hash"#);
        assert_eq!(s[2].0, r##"nested "# inside"##);
        assert_eq!(s[3].0, "bytes");
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        // Pre-fix, `r#type` entered the raw-string scanner and swallowed
        // everything up to the next `"#`, hiding the Instant::now.
        let src = "let r#type = 1;\nlet t = Instant::now();\nlet s = \"key\";";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("type")));
        let inst = toks.iter().find(|t| t.is_ident("Instant")).unwrap();
        assert_eq!(inst.line, 2);
        assert_eq!(strs(src), vec![("key".to_string(), 3)]);
    }

    #[test]
    fn escaped_newline_still_counts_the_line() {
        // A line-continuation escape ends a physical line; losing it
        // drifts every later allowlist anchor by one.
        let src = "let s = \"a\\\n b\";\nfn f() {}";
        let toks = lex(src);
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn nested_block_comments_balance_and_count_lines() {
        let src =
            "/* outer /* inner\n */ still\ncomment */ fn after() {}\n/*/ tricky */ fn tail() {}";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
        // `/*/` opens a comment whose `/` cannot double as a closer.
        let tail = toks.iter().find(|t| t.is_ident("tail")).unwrap();
        assert_eq!(tail.line, 4);
        assert!(!toks.iter().any(|t| t.is_ident("inner")));
        assert!(!toks.iter().any(|t| t.is_ident("tricky")));
    }

    #[test]
    fn string_adjacent_to_comment_keeps_content_boundaries() {
        let src = "/* c */ let k = \"graph.delta_merges\"; // tail \"not a string\"";
        assert_eq!(strs(src), vec![("graph.delta_merges".to_string(), 1)]);
    }

    #[test]
    fn cfg_any_test_is_treated_as_test() {
        let src = "#[cfg(any(test, feature = \"x\"))] mod m { fn f() { now(); } }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let idx = toks.iter().position(|t| t.is_ident("now")).unwrap();
        assert!(mask[idx]);
    }
}
