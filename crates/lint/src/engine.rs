//! Workspace walking, allowlist application, and report assembly.

use crate::config::{AllowEntry, Config};
use crate::model::{obs_key_registry, WorkspaceModel};
use crate::parser::FileModel;
use crate::rules::{check_file, Finding, SourceFile};
use std::fs;
use std::path::{Path, PathBuf};

/// Outcome of one lint run.
#[derive(Debug)]
pub struct Outcome {
    /// Findings that survived the allowlist, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Allowlist entries that suppressed nothing — stale anchors whose
    /// `file:line` drifted (or whose finding was fixed without removing
    /// the entry). Always a hard error.
    pub stale: Vec<AllowEntry>,
    /// Findings suppressed by the allowlist.
    pub suppressed: usize,
    /// Files checked.
    pub files: usize,
}

impl Outcome {
    /// Process exit code: 0 clean, 1 findings, 2 stale allowlist.
    pub fn exit_code(&self) -> i32 {
        if !self.stale.is_empty() {
            2
        } else if !self.findings.is_empty() {
            1
        } else {
            0
        }
    }

    /// Exit code for `--check-anchors`: the self-audit cares only about
    /// allowlist health, so findings are ignored and stale anchors get
    /// their own distinct code (3) so CI can tell "code regressed" (1)
    /// from "the allowlist no longer describes the code" (3).
    pub fn anchor_audit_code(&self) -> i32 {
        if self.stale.is_empty() {
            0
        } else {
            3
        }
    }
}

/// Lints the workspace rooted at `root` under `config`.
///
/// Walks the configured include directories (default `crates`,
/// `examples`, `tests`), skipping `exclude` prefixes, `target`, and
/// `third_party` (vendored stubs are not this workspace's code).
pub fn run(root: &Path, config: &Config) -> Result<Outcome, String> {
    let parsed = parse_workspace(root, config)?;
    Ok(check_parsed(&parsed, config))
}

/// Runs per-file rules and the cross-file workspace pass over parsed
/// files, then applies the allowlist.
fn check_parsed(parsed: &[(SourceFile, FileModel)], config: &Config) -> Outcome {
    let mut findings = Vec::new();
    for (file, model) in parsed {
        check_file(file, model, config, &mut findings);
    }
    let ws = WorkspaceModel::new(parsed);
    obs_key_registry(&ws, &config.rule("obs-key-registry"), &mut findings);
    findings.sort();
    findings.dedup();
    apply_allowlist(findings, &config.allow, parsed.len())
}

/// Parses in-memory sources into the workspace model without running
/// rules; `--emit-keys-json` and tests share this entry point.
pub fn parse_sources(sources: &[(&str, &str)]) -> Vec<(SourceFile, FileModel)> {
    sources
        .iter()
        .map(|(path, src)| {
            let file = SourceFile::new(path, src);
            let model = FileModel::build(&file);
            (file, model)
        })
        .collect()
}

/// Parses the on-disk workspace into the model without running rules
/// (also the first half of [`run`]; `--emit-keys-json` stops here).
pub fn parse_workspace(
    root: &Path,
    config: &Config,
) -> Result<Vec<(SourceFile, FileModel)>, String> {
    let mut files = Vec::new();
    for inc in config.include_or_default() {
        let dir = root.join(&inc);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)
                .map_err(|e| format!("walking {}: {e}", dir.display()))?;
        }
    }
    // Deterministic order regardless of readdir order.
    files.sort();
    let mut parsed = Vec::new();
    for path in &files {
        let rel = relative(root, path);
        if is_excluded(&rel, config) {
            continue;
        }
        let src = fs::read_to_string(path).map_err(|e| format!("reading {rel}: {e}"))?;
        let file = SourceFile::new(&rel, &src);
        let model = FileModel::build(&file);
        parsed.push((file, model));
    }
    Ok(parsed)
}

/// Lints in-memory sources (path → contents); the fixture harness and
/// unit tests drive the exact engine CI runs, filesystem aside.
pub fn run_sources(sources: &[(&str, &str)], config: &Config) -> Outcome {
    let kept: Vec<(&str, &str)> = sources
        .iter()
        .filter(|(path, _)| !is_excluded(path, config))
        .copied()
        .collect();
    let parsed = parse_sources(&kept);
    check_parsed(&parsed, config)
}

fn apply_allowlist(findings: Vec<Finding>, allow: &[AllowEntry], files: usize) -> Outcome {
    let mut used = vec![false; allow.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        let hit = allow
            .iter()
            .position(|a| a.rule == f.rule && a.file == f.file && a.line == f.line);
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(f),
        }
    }
    let stale = allow
        .iter()
        .zip(&used)
        .filter(|&(_, &u)| !u)
        .map(|(a, _)| a.clone())
        .collect();
    Outcome {
        findings: kept,
        stale,
        suppressed,
        files,
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "third_party" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Forward slashes so config anchors are platform-stable.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn is_excluded(rel: &str, config: &Config) -> bool {
    config
        .exclude
        .iter()
        .any(|e| rel == e || rel.starts_with(&format!("{e}/")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(toml: &str) -> Config {
        Config::parse(toml).unwrap()
    }

    #[test]
    fn allowlist_suppresses_exact_match_only() {
        let cfg = config(
            r#"
[[allow]]
rule = "no-wall-clock"
file = "crates/x/src/a.rs"
line = 1
reason = "driver wall-clock is the measured quantity"
"#,
        );
        let out = run_sources(
            &[(
                "crates/x/src/a.rs",
                "fn t() { let a = Instant::now(); }\nfn u() { let b = Instant::now(); }",
            )],
            &cfg,
        );
        assert_eq!(out.suppressed, 1);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].line, 2);
        assert!(out.stale.is_empty());
        assert_eq!(out.exit_code(), 1);
    }

    #[test]
    fn stale_allowlist_entry_is_a_hard_error() {
        let cfg = config(
            r#"
[[allow]]
rule = "no-wall-clock"
file = "crates/x/src/a.rs"
line = 5  # drifted: the finding is on line 1
reason = "was justified once"
"#,
        );
        let out = run_sources(
            &[("crates/x/src/a.rs", "fn t() { let a = Instant::now(); }")],
            &cfg,
        );
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.exit_code(), 2, "stale beats plain findings");
    }

    #[test]
    fn clean_run_exits_zero() {
        let out = run_sources(
            &[("crates/x/src/a.rs", "pub fn f(x: u64) -> u64 { x + 1 }")],
            &Config::default(),
        );
        assert!(out.findings.is_empty());
        assert_eq!(out.exit_code(), 0);
    }

    #[test]
    fn exclude_prefixes_skip_files() {
        let cfg = config("[workspace]\nexclude = [\"crates/lint/tests\"]\n");
        let out = run_sources(
            &[(
                "crates/lint/tests/fixtures/bad.rs",
                "fn t() { Instant::now(); }",
            )],
            &cfg,
        );
        assert!(out.findings.is_empty());
    }
}
