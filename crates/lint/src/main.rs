//! The `quorum-lint` binary: lints the workspace against `lint.toml`.
//!
//! Usage: `quorum-lint [--root DIR] [--config FILE]`. Defaults to the
//! current directory and `<root>/lint.toml`. Exit codes: 0 clean,
//! 1 findings, 2 stale allowlist or configuration error.

#![forbid(unsafe_code)]

use quorum_lint::{engine, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match try_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("quorum-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn try_main() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                config_path = Some(PathBuf::from(args.next().ok_or("--config needs a file")?));
            }
            "--help" | "-h" => {
                println!("usage: quorum-lint [--root DIR] [--config FILE]");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
    let config = Config::parse(&text).map_err(|e| format!("{}: {e}", config_path.display()))?;

    let outcome = engine::run(&root, &config)?;
    for f in &outcome.findings {
        println!("{f}");
    }
    for entry in &outcome.stale {
        eprintln!("quorum-lint: stale allowlist entry (no finding matched its anchor): {entry}");
    }
    eprintln!(
        "quorum-lint: {} files checked, {} finding(s), {} suppressed by allowlist, {} stale",
        outcome.files,
        outcome.findings.len(),
        outcome.suppressed,
        outcome.stale.len()
    );
    Ok(ExitCode::from(outcome.exit_code() as u8))
}
