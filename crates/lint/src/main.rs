//! The `quorum-lint` binary: lints the workspace against `lint.toml`.
//!
//! Usage:
//!
//! ```text
//! quorum-lint [--root DIR] [--config FILE] [--format text|json|sarif]
//!             [--emit-keys-json] [--check-anchors]
//! ```
//!
//! Defaults to the current directory and `<root>/lint.toml`.
//!
//! * `--format json|sarif` renders the findings for machines (SARIF
//!   2.1.0 uploads as a CI artifact); the summary line still goes to
//!   stderr so pipelines can redirect stdout wholesale.
//! * `--emit-keys-json` skips linting and prints the metric-key
//!   registry (`crates/obs/src/keys.rs`) as JSON, so CI can diff the
//!   keys its jq gates grep for against the declared schema.
//! * `--check-anchors` is the allowlist self-audit: it reports only
//!   stale `file:line` anchors and exits 3 if any drifted, 0 otherwise
//!   (findings are ignored — that's the normal run's job).
//!
//! Exit codes: 0 clean, 1 findings, 2 stale allowlist or configuration
//! error, 3 anchor-audit failure (under `--check-anchors` only).

#![forbid(unsafe_code)]

use quorum_lint::report::{render, Format};
use quorum_lint::{engine, model, Config, WorkspaceModel};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match try_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("quorum-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn try_main() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut emit_keys = false;
    let mut check_anchors = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                config_path = Some(PathBuf::from(args.next().ok_or("--config needs a file")?));
            }
            "--format" => {
                format = Format::parse(&args.next().ok_or("--format needs text|json|sarif")?)?;
            }
            "--emit-keys-json" => emit_keys = true,
            "--check-anchors" => check_anchors = true,
            "--help" | "-h" => {
                println!(
                    "usage: quorum-lint [--root DIR] [--config FILE] \
                     [--format text|json|sarif] [--emit-keys-json] [--check-anchors]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
    let config = Config::parse(&text).map_err(|e| format!("{}: {e}", config_path.display()))?;

    if emit_keys {
        let parsed = engine::parse_workspace(&root, &config)?;
        let ws = WorkspaceModel::new(&parsed);
        print!(
            "{}",
            model::keys_json(&ws, &config.rule("obs-key-registry"))
        );
        return Ok(ExitCode::SUCCESS);
    }

    let outcome = engine::run(&root, &config)?;

    if check_anchors {
        for entry in &outcome.stale {
            println!("drifted anchor: {entry}");
        }
        eprintln!(
            "quorum-lint: anchor audit: {} allowlist entries, {} stale",
            config.allow.len(),
            outcome.stale.len()
        );
        return Ok(ExitCode::from(outcome.anchor_audit_code() as u8));
    }

    match format {
        Format::Text => {
            for f in &outcome.findings {
                println!("{f}");
            }
            for entry in &outcome.stale {
                eprintln!(
                    "quorum-lint: stale allowlist entry (no finding matched its anchor): {entry}"
                );
            }
        }
        machine => print!("{}", render(&outcome, machine)),
    }
    eprintln!(
        "quorum-lint: {} files checked, {} finding(s), {} suppressed by allowlist, {} stale",
        outcome.files,
        outcome.findings.len(),
        outcome.suppressed,
        outcome.stale.len()
    );
    Ok(ExitCode::from(outcome.exit_code() as u8))
}
