//! The rule catalog: the determinism/safety properties every reported
//! number in this reproduction rests on (DESIGN.md §9, §13).
//!
//! Most rules are token-sequence properties checked per file, scoped by
//! path prefix (`paths` in `lint.toml`) and by test-ness
//! (`include_tests`); `forbid-unsafe` is additionally scoped to crate
//! roots via `roots` globs. The semantic rules added with the workspace
//! model ([`crate::parser`], [`crate::model`]) also consume the per-file
//! [`crate::parser::FileModel`]: `scheduler-discipline` needs impl-block
//! spans, `no-panic-hot-path` needs fixed-size-array locals, and
//! `obs-key-registry` runs as a workspace pass in the engine rather
//! than here.

use crate::config::{glob_match, Config, RuleConfig};
use crate::lexer::{lex, test_mask, Tok, TokKind};
use crate::parser::FileModel;
use std::collections::BTreeSet;
use std::fmt;

/// Rule identifiers, in report order.
pub const RULE_IDS: [&str; 10] = [
    "no-wall-clock",
    "no-unseeded-rng",
    "no-unordered-iteration",
    "forbid-unsafe",
    "no-float-eq",
    "no-stdrng",
    "obs-key-registry",
    "scheduler-discipline",
    "no-panic-hot-path",
    "no-lossy-cast",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id from [`RULE_IDS`].
    pub rule: &'static str,
    /// What was found and why it matters.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One lexed source file ready for rule checks.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub(crate) toks: Vec<Tok>,
    pub(crate) tests: Vec<bool>,
}

impl SourceFile {
    /// Lexes `src` as the contents of `path`.
    pub fn new(path: &str, src: &str) -> Self {
        let toks = lex(src);
        let tests = test_mask(&toks);
        Self {
            path: path.to_string(),
            toks,
            tests,
        }
    }

    fn in_scope(&self, rc: &RuleConfig) -> bool {
        rc.paths.is_empty()
            || rc
                .paths
                .iter()
                .any(|p| self.path == *p || self.path.starts_with(&format!("{p}/")))
    }
}

/// Runs every per-file rule over one file under `config`, appending
/// findings. (`obs-key-registry` is cross-file and runs as a workspace
/// pass in the engine instead.)
pub fn check_file(file: &SourceFile, model: &FileModel, config: &Config, out: &mut Vec<Finding>) {
    let checks: [(&'static str, RuleFn); 9] = [
        ("no-wall-clock", no_wall_clock),
        ("no-unseeded-rng", no_unseeded_rng),
        ("no-unordered-iteration", no_unordered_iteration),
        ("forbid-unsafe", forbid_unsafe),
        ("no-float-eq", no_float_eq),
        ("no-stdrng", no_stdrng),
        ("scheduler-discipline", scheduler_discipline),
        ("no-panic-hot-path", no_panic_hot_path),
        ("no-lossy-cast", no_lossy_cast),
    ];
    for (rule, f) in checks {
        let rc = config.rule(rule);
        if rule == "forbid-unsafe" {
            // Root-scoped, not prefix-scoped: applies iff the file
            // matches one of the crate-root globs.
            if rc.roots.iter().any(|g| glob_match(g, &file.path)) {
                f(file, model, &rc, rule, out);
            }
            continue;
        }
        // The hot-path rules are opt-in: they only make sense on the
        // modules lint.toml designates, so an unconfigured rule is off
        // rather than flooding the whole tree.
        if (rule == "no-panic-hot-path" || rule == "no-lossy-cast") && rc.paths.is_empty() {
            continue;
        }
        if rule == "scheduler-discipline" && rc.impls.is_empty() {
            continue;
        }
        if file.in_scope(&rc) {
            f(file, model, &rc, rule, out);
        }
    }
    // Deterministic report order and structural dedup (a `for` loop over
    // `.drain()` trips two detectors of the same rule on the same line).
    out.sort();
    out.dedup();
}

type RuleFn = fn(&SourceFile, &FileModel, &RuleConfig, &'static str, &mut Vec<Finding>);

/// Visible (non-test unless `include_tests`) token at index `i`?
fn visible(file: &SourceFile, rc: &RuleConfig, i: usize) -> bool {
    rc.include_tests || !file.tests[i]
}

fn push(out: &mut Vec<Finding>, file: &SourceFile, rule: &'static str, line: u32, message: String) {
    out.push(Finding {
        file: file.path.clone(),
        line,
        rule,
        message,
    });
}

/// Matches `toks[i..]` against `pat` (idents and puncts by text).
fn seq(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, want)| {
        toks.get(i + k).is_some_and(|t| {
            (t.kind == TokKind::Ident || t.kind == TokKind::Punct) && t.text == *want
        })
    })
}

/// `no-wall-clock`: `Instant::now` and any use of `SystemTime`.
///
/// Reading the wall clock inside simulation, stats, or manifest code
/// makes outputs depend on host speed; measured quantities (utilization
/// accounting, bench drivers) carry `file:line` allowlist entries.
fn no_wall_clock(
    file: &SourceFile,
    _model: &FileModel,
    rc: &RuleConfig,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !visible(file, rc, i) {
            continue;
        }
        if seq(toks, i, &["Instant", "::", "now"]) {
            push(
                out,
                file,
                rule,
                toks[i].line,
                "`Instant::now` reads the wall clock; simulated time must come from the DES clock"
                    .into(),
            );
        } else if toks[i].is_ident("SystemTime") {
            push(
                out,
                file,
                rule,
                toks[i].line,
                "`SystemTime` reads the wall clock; run artifacts must be reproducible".into(),
            );
        }
    }
}

/// `no-unseeded-rng`: `thread_rng`, `from_entropy`, `from_os_rng`, and
/// `rand::random` — all randomness must derive from the run seed.
fn no_unseeded_rng(
    file: &SourceFile,
    _model: &FileModel,
    rc: &RuleConfig,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !visible(file, rc, i) {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("from_os_rng") {
            push(
                out,
                file,
                rule,
                t.line,
                format!(
                    "`{}` draws OS entropy; derive all randomness from the run seed \
                     (quorum_stats::rng)",
                    t.text
                ),
            );
        } else if seq(toks, i, &["rand", "::", "random"]) {
            push(
                out,
                file,
                rule,
                t.line,
                "`rand::random` uses the thread-local OS-seeded RNG; derive all randomness \
                 from the run seed (quorum_stats::rng)"
                    .into(),
            );
        }
    }
}

/// Methods whose call on a `HashMap`/`HashSet` observes (or depends on)
/// its nondeterministic iteration order.
const ORDER_SENSITIVE_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// `no-unordered-iteration`: iterating a `HashMap`/`HashSet` in code
/// that feeds manifests, stats accumulation, or event scheduling.
///
/// Hash iteration order varies with the hasher's per-process seed and
/// the insertion history, so anything folded out of it (manifest rows,
/// merged stats, scheduled events) silently loses run-to-run stability.
/// Keyed lookup stays allowed; iteration requires a `BTreeMap`/sorted
/// materialization or an allowlist entry with a written justification.
///
/// Detection is file-local: identifiers bound or typed as
/// `HashMap`/`HashSet` in this file, then flagged at `.iter()`-family
/// calls and `for … in` loops over them.
fn no_unordered_iteration(
    file: &SourceFile,
    _model: &FileModel,
    rc: &RuleConfig,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    let decls = unordered_decls(toks);
    if decls.is_empty() {
        return;
    }
    let names: BTreeSet<&str> = decls.iter().map(|d| d.name).collect();
    if rc.forbid_types {
        // Strict mode: the declaration itself must be justified, so
        // membership-only uses carry a written allowlist reason instead
        // of silently inviting future iteration.
        for d in &decls {
            if d.strict && visible(file, rc, d.tok_index) {
                push(
                    out,
                    file,
                    rule,
                    toks[d.tok_index].line,
                    format!(
                        "`{}` is declared as a `{}`; this path feeds deterministic output — \
                         use a BTree collection, or allowlist with a membership-only \
                         justification",
                        d.name, d.type_name
                    ),
                );
            }
        }
    }
    for i in 0..toks.len() {
        if !visible(file, rc, i) {
            continue;
        }
        let t = &toks[i];
        // `name.iter()`, `name.drain()`, ... (also matches through
        // `self.name.iter()` since we key on the field name itself).
        if t.kind == TokKind::Ident
            && names.contains(t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|m| ORDER_SENSITIVE_METHODS.iter().any(|s| m.is_ident(s)))
        {
            let method = &toks[i + 2].text;
            push(
                out,
                file,
                rule,
                t.line,
                format!(
                    "`{}.{}()` observes hash-iteration order; use a BTreeMap/BTreeSet or \
                     materialize sorted keys first",
                    t.text, method
                ),
            );
        }
        // `for pat in [&][mut] [path.]name {` — the loop expression's
        // final identifier before `{` is the collection.
        if t.is_ident("for") {
            let Some(in_idx) = (i + 1..toks.len().min(i + 24)).find(|&k| toks[k].is_ident("in"))
            else {
                continue;
            };
            let Some(brace) =
                (in_idx + 1..toks.len().min(in_idx + 24)).find(|&k| toks[k].is_punct("{"))
            else {
                continue;
            };
            // Only treat simple paths (idents, `.`, `&`, `mut`, `self`)
            // as a bare-collection loop; method calls inside the
            // expression are handled by the detector above.
            let expr = &toks[in_idx + 1..brace];
            let simple = expr
                .iter()
                .all(|t| matches!(t.kind, TokKind::Ident) || t.is_punct("&") || t.is_punct("."));
            if !simple {
                continue;
            }
            if let Some(last) = expr.iter().rev().find(|t| t.kind == TokKind::Ident) {
                if names.contains(last.text.as_str()) {
                    push(
                        out,
                        file,
                        rule,
                        toks[i].line,
                        format!(
                            "`for … in {}` iterates a hash collection; use a BTreeMap/BTreeSet \
                             or materialize sorted keys first",
                            last.text
                        ),
                    );
                }
            }
        }
    }
}

/// One `HashMap`/`HashSet` binding found in a file.
struct UnorderedDecl<'a> {
    /// The bound identifier (field, let binding, or parameter name).
    name: &'a str,
    /// `"HashMap"` or `"HashSet"`.
    type_name: &'a str,
    /// Index of the bound identifier's token (for line/test lookup).
    tok_index: usize,
    /// Whether strict mode reports this site. Struct-literal inits
    /// (`field: HashSet::new()`) re-state a binding whose field
    /// declaration is reported already, so they count for name
    /// collection but not as a second finding.
    strict: bool,
}

/// Collects identifiers bound or typed as `HashMap`/`HashSet` anywhere
/// in the file: `name: [std::collections::]Hash{Map,Set}…`,
/// `let [mut] name = Hash{Map,Set}::…`.
fn unordered_decls(toks: &[Tok]) -> Vec<UnorderedDecl<'_>> {
    let mut decls: Vec<UnorderedDecl> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left over a `path::` prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        // `HashMap` followed by `::` is an expression (`HashMap::new()`),
        // not a type position.
        let type_position = !toks.get(i + 1).is_some_and(|n| n.is_punct("::"));
        let bound = match &toks[j - 1] {
            // Type annotation or struct-literal init:
            // `name : HashMap<…>` / `name : HashMap::new()`.
            p if p.is_punct(":") => {
                (j >= 2 && toks[j - 2].kind == TokKind::Ident).then(|| (j - 2, type_position))
            }
            // Initializer: `let [mut] name = HashMap::new()`.
            p if p.is_punct("=") => {
                let k = j - 1;
                if k >= 1 && toks[k - 1].kind == TokKind::Ident {
                    let k = k - 1;
                    let is_let_bound = (k >= 1 && toks[k - 1].is_ident("let"))
                        || (k >= 2 && toks[k - 1].is_ident("mut") && toks[k - 2].is_ident("let"));
                    (is_let_bound && !toks[k].is_ident("mut")).then_some((k, true))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some((k, strict)) = bound {
            let name = toks[k].text.as_str();
            if !decls.iter().any(|d| d.name == name && d.tok_index == k) {
                decls.push(UnorderedDecl {
                    name,
                    type_name: t.text.as_str(),
                    tok_index: k,
                    strict,
                });
            }
        }
    }
    decls
}

/// `forbid-unsafe`: every crate root (lib, bin, example, test target)
/// must carry `#![forbid(unsafe_code)]` so the guarantee is per-crate
/// airtight instead of a convention.
fn forbid_unsafe(
    file: &SourceFile,
    _model: &FileModel,
    _rc: &RuleConfig,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    let found = (0..toks.len()).any(|i| {
        seq(
            toks,
            i,
            &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"],
        )
    });
    if !found {
        push(
            out,
            file,
            rule,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".into(),
        );
    }
}

/// `no-float-eq`: `==` / `!=` with a float operand in the numeric core.
///
/// Exact float comparison encodes an accidental bit-pattern property;
/// availability estimates and CI bounds must compare with an explicit
/// epsilon (or restructure to integers). Detection: a float literal (or
/// an identifier annotated `: f64`/`: f32` in this file) directly on
/// either side of `==`/`!=`, allowing a unary minus.
fn no_float_eq(
    file: &SourceFile,
    _model: &FileModel,
    rc: &RuleConfig,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    let float_names = float_annotated_names(toks);
    let is_floaty = |t: &Tok| {
        t.kind == TokKind::Float
            || (t.kind == TokKind::Ident && float_names.contains(t.text.as_str()))
    };
    for i in 0..toks.len() {
        if !visible(file, rc, i) {
            continue;
        }
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let left_float = i >= 1 && is_floaty(&toks[i - 1]);
        let right = match toks.get(i + 1) {
            Some(m) if m.is_punct("-") => toks.get(i + 2),
            other => other,
        };
        let right_float = right.is_some_and(&is_floaty);
        if left_float || right_float {
            push(
                out,
                file,
                rule,
                t.line,
                format!(
                    "`{}` on a floating-point value; compare with an explicit epsilon instead",
                    t.text
                ),
            );
        }
    }
}

/// `no-stdrng`: `StdRng` (or `rng_from_seed`, which constructs one) in
/// a path scoped as an access hot path.
///
/// `StdRng` is ChaCha12 — sequentially stateful and ~an order of
/// magnitude more ARX work per draw than the counter-based SplitMix64
/// stream the shard walk kernels batch over. In scoped paths (the
/// shard crate via `lint.toml`), per-draw randomness must come from
/// `quorum_stats::rng::CounterRng`, whose draws are pure functions of
/// `(seed, counter)` — that positionality is what keeps the batched
/// SoA kernel and the naive heap engine bit-identical. Once-per-run
/// setup code (the failure-timeline replay) carries `file:line`
/// allowlist entries instead of weakening the rule.
fn no_stdrng(
    file: &SourceFile,
    _model: &FileModel,
    rc: &RuleConfig,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    for (i, t) in file.toks.iter().enumerate() {
        if !visible(file, rc, i) {
            continue;
        }
        if t.is_ident("StdRng") || t.is_ident("rng_from_seed") {
            push(
                out,
                file,
                rule,
                t.line,
                format!(
                    "`{}` brings sequential ChaCha12 state into a hot path; draw from \
                     quorum_stats::rng::CounterRng so batched and one-at-a-time walks \
                     stay bit-identical",
                    t.text
                ),
            );
        }
    }
}

/// `scheduler-discipline`: inside impl blocks of the configured types
/// (`impls` in `lint.toml`, e.g. `ProtocolCore`), forbid direct touches
/// of the event queue or wall/host time — everything temporal must go
/// through the `Scheduler` trait.
///
/// The point is model-checking coverage: `quorum-mc`'s `BagScheduler`
/// replays the protocol by implementing `Scheduler`. Any effect the
/// stochastic engine produces through a side channel (an `EventQueue`
/// handle, `Instant`, a raw timer) is an effect the checker silently
/// never explores, which is exactly how the PR 8 cross-epoch bug hid.
/// Forbidden identifiers default to `EventQueue`/`Instant`/`SystemTime`
/// and are configurable via `forbid`.
fn scheduler_discipline(
    file: &SourceFile,
    model: &FileModel,
    rc: &RuleConfig,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    const DEFAULT_FORBID: [&str; 3] = ["EventQueue", "Instant", "SystemTime"];
    let forbid: Vec<&str> = if rc.forbid.is_empty() {
        DEFAULT_FORBID.to_vec()
    } else {
        rc.forbid.iter().map(String::as_str).collect()
    };
    for imp in model.impls_of(&rc.impls) {
        for i in imp.span.0..=imp.span.1.min(file.toks.len() - 1) {
            if !visible(file, rc, i) {
                continue;
            }
            let t = &file.toks[i];
            if t.kind == TokKind::Ident && forbid.iter().any(|f| t.text == *f) {
                push(
                    out,
                    file,
                    rule,
                    t.line,
                    format!(
                        "`{}` touched directly inside `impl {}`; route every temporal \
                         effect through the `Scheduler` trait so quorum-mc's BagScheduler \
                         sees it",
                        t.text, imp.name
                    ),
                );
            }
        }
    }
}

/// Macros whose expansion can panic at runtime. `debug_assert*` is
/// excluded: it compiles out of release builds, which is what the hot
/// path ships.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// `no-panic-hot-path`: in designated hot modules, forbid
/// `.unwrap()`/`.expect()` and the panic-macro family; in the subset of
/// modules listed under `index_paths`, also forbid slice/`Vec` indexing
/// (`xs[i]`) unless the indexed binding is a fixed-size array local
/// (structurally bounded, from the [`FileModel`]).
///
/// A single bad index in the stripe kernel kills a 28 M accesses/sec
/// run half-way through; panics must either be impossible by
/// construction (fixed arrays, iterators, `get`) or carry a
/// `file:line` allowlist entry stating the bounding invariant.
fn no_panic_hot_path(
    file: &SourceFile,
    model: &FileModel,
    rc: &RuleConfig,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    let index_scoped = rc
        .index_paths
        .iter()
        .any(|p| file.path == *p || file.path.starts_with(&format!("{p}/")));
    for i in 0..toks.len() {
        if !visible(file, rc, i) {
            continue;
        }
        let t = &toks[i];
        // `.unwrap(` / `.expect(`.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            push(
                out,
                file,
                rule,
                t.line,
                format!(
                    "`.{}()` can panic on the hot path; handle the case, make it \
                     impossible by construction, or allowlist with the invariant that \
                     rules it out",
                    t.text
                ),
            );
            continue;
        }
        // `panic!(`, `assert_eq!(`, ...
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            push(
                out,
                file,
                rule,
                t.line,
                format!(
                    "`{}!` aborts the run on the hot path; return an error or allowlist \
                     cold-path uses (constructors, validation) with a written invariant",
                    t.text
                ),
            );
            continue;
        }
        // Indexing: a `[` whose previous token ends an expression
        // (identifier, `]`, or `)`). Type positions (`: [T; N]`),
        // array literals (`= [`), attributes (`#[`), and macro brackets
        // (`vec![`) all have non-expression predecessors and never
        // match. Only enforced under `index_paths`.
        if index_scoped && t.is_punct("[") && i >= 1 {
            let prev = &toks[i - 1];
            let ends_expr = prev.kind == TokKind::Ident || prev.is_punct("]") || prev.is_punct(")");
            // Keywords sit in Ident tokens; `match x { .. }` etc. never
            // precede an index expression, but `in`, `return`, `if` can
            // precede array literals (`for x in [a, b]`).
            let keyword = matches!(
                prev.text.as_str(),
                "in" | "return" | "if" | "else" | "match" | "while" | "break"
            );
            if ends_expr && !keyword {
                let bounded =
                    prev.kind == TokKind::Ident && model.fixed_arrays.contains(prev.text.as_str());
                if !bounded {
                    let what = if prev.kind == TokKind::Ident {
                        format!("`{}[…]`", prev.text)
                    } else {
                        "indexing".to_string()
                    };
                    push(
                        out,
                        file,
                        rule,
                        t.line,
                        format!(
                            "{what} can panic out-of-bounds on the hot path; use `get`, \
                             iterators, a fixed-size array local, or allowlist with the \
                             bounding invariant"
                        ),
                    );
                }
            }
        }
    }
}

/// Integer types an `as` cast can silently truncate into.
const NARROW_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// `no-lossy-cast`: `expr as u32` (or any ≤32-bit integer target) in
/// hot modules.
///
/// `as` silently wraps: a `usize` object id cast to `u32` corrupts the
/// assignment table at 2^32 objects with no diagnostic. Hot modules
/// must either widen the stored type, use `try_into` with a handled
/// error, or carry an allowlist entry arguing the bound (e.g. "site
/// count ≤ 64 by construction").
fn no_lossy_cast(
    file: &SourceFile,
    _model: &FileModel,
    rc: &RuleConfig,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !visible(file, rc, i) {
            continue;
        }
        if !toks[i].is_ident("as") {
            continue;
        }
        let Some(ty) = toks.get(i + 1) else { continue };
        if ty.kind == TokKind::Ident && NARROW_TYPES.contains(&ty.text.as_str()) {
            push(
                out,
                file,
                rule,
                toks[i].line,
                format!(
                    "`as {}` silently truncates; widen the type, use `try_into`, or \
                     allowlist with the argument for why the value fits",
                    ty.text
                ),
            );
        }
    }
}

/// Identifiers annotated `: f64` / `: f32` anywhere in the file.
fn float_annotated_names(toks: &[Tok]) -> BTreeSet<&str> {
    let mut names = BTreeSet::new();
    for i in 2..toks.len() {
        if (toks[i].is_ident("f64") || toks[i].is_ident("f32"))
            && toks[i - 1].is_punct(":")
            && toks[i - 2].kind == TokKind::Ident
        {
            names.insert(toks[i - 2].text.as_str());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule(path: &str, src: &str, config: &Config) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let model = FileModel::build(&file);
        let mut out = Vec::new();
        check_file(&file, &model, config, &mut out);
        out
    }

    fn default_config() -> Config {
        Config::parse(
            r#"
[rules.forbid-unsafe]
roots = ["crates/*/src/lib.rs"]
"#,
        )
        .unwrap()
    }

    #[test]
    fn wall_clock_is_flagged_outside_tests_only() {
        let src = r#"
            fn hot() { let t = std::time::Instant::now(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn timing() { let t = std::time::Instant::now(); }
            }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        let wall: Vec<_> = f.iter().filter(|f| f.rule == "no-wall-clock").collect();
        assert_eq!(wall.len(), 1);
        assert_eq!(wall[0].line, 2);
    }

    #[test]
    fn system_time_and_rng_are_flagged() {
        let src = r#"
            fn stamp() -> std::time::SystemTime { std::time::SystemTime::now() }
            fn roll() -> f64 { rand::random() }
            fn seed() { let r = rand::rngs::StdRng::from_entropy(); }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        assert!(f.iter().any(|f| f.rule == "no-wall-clock" && f.line == 2));
        assert!(f.iter().any(|f| f.rule == "no-unseeded-rng" && f.line == 3));
        assert!(f.iter().any(|f| f.rule == "no-unseeded-rng" && f.line == 4));
    }

    #[test]
    fn hash_iteration_is_flagged_lookup_is_not() {
        let src = r#"
            use std::collections::HashMap;
            struct S { sessions: HashMap<u64, String> }
            impl S {
                fn lookup(&self, k: u64) -> Option<&String> { self.sessions.get(&k) }
                fn dump(&self) {
                    for (k, v) in &self.sessions { println!("{k} {v}"); }
                    let keys: Vec<_> = self.sessions.keys().collect();
                }
            }
            fn local() {
                let mut seen = HashMap::new();
                seen.insert(1, 2);
                let n = seen.len();
                for v in seen.values() { drop(v); }
            }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        let it: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "no-unordered-iteration")
            .collect();
        let lines: Vec<u32> = it.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![7, 8, 15], "{it:?}");
    }

    #[test]
    fn strict_mode_flags_declarations() {
        let mut cfg = default_config();
        cfg.rules
            .entry("no-unordered-iteration".into())
            .or_default()
            .forbid_types = true;
        let src = r#"
            use std::collections::HashSet;
            struct Q { live: HashSet<u64> }
            fn check(q: &Q, k: u64) -> bool { q.live.contains(&k) }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &cfg);
        let it: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "no-unordered-iteration")
            .collect();
        assert_eq!(it.len(), 1, "{it:?}");
        assert_eq!(it[0].line, 3);
        assert!(it[0].message.contains("HashSet"));
        // Without strict mode the membership-only use is clean.
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        assert!(f.iter().all(|f| f.rule != "no-unordered-iteration"));
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = r#"
            use std::collections::BTreeMap;
            fn dump(m: &BTreeMap<u64, u64>) {
                for (k, v) in m { println!("{k} {v}"); }
                let _ = m.keys().count();
            }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        assert!(f.iter().all(|f| f.rule != "no-unordered-iteration"));
    }

    #[test]
    fn iteration_scope_respects_paths() {
        let mut cfg = default_config();
        cfg.rules
            .entry("no-unordered-iteration".into())
            .or_default()
            .paths = vec!["crates/cluster".into()];
        let src = "fn f(m: std::collections::HashMap<u8,u8>) { for x in m.values() { drop(x); } }";
        assert!(run_rule("crates/graph/src/a.rs", src, &cfg).is_empty());
        assert!(!run_rule("crates/cluster/src/a.rs", src, &cfg).is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_only_roots() {
        let cfg = default_config();
        let f = run_rule("crates/x/src/lib.rs", "pub fn f() {}", &cfg);
        assert!(f.iter().any(|f| f.rule == "forbid-unsafe"));
        let f = run_rule(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
            &cfg,
        );
        assert!(f.iter().all(|f| f.rule != "forbid-unsafe"));
        // Non-root files are exempt.
        let f = run_rule("crates/x/src/other.rs", "pub fn f() {}", &cfg);
        assert!(f.iter().all(|f| f.rule != "forbid-unsafe"));
    }

    #[test]
    fn float_eq_flags_literals_and_annotated_names() {
        let src = r#"
            fn check(availability: f64, n: u64) -> bool {
                if availability == 1.0 { return true; }
                if n == 3 { return false; }
                availability != 0.5
            }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "no-float-eq")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![3, 5]);
    }

    #[test]
    fn float_eq_allows_epsilon_style() {
        let src = "fn close(a: f64, b: f64) -> bool { (a - b).abs() < 1e-9 }";
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        assert!(f.iter().all(|f| f.rule != "no-float-eq"));
    }

    #[test]
    fn stdrng_is_flagged_in_scoped_paths_tests_exempt() {
        let mut cfg = default_config();
        cfg.rules.entry("no-stdrng".into()).or_default().paths = vec!["crates/shard".into()];
        let src = r#"
            use quorum_stats::rng::rng_from_seed;
            fn walk() { let rng = rng_from_seed(7); }
            #[cfg(test)]
            mod tests {
                fn reference() -> rand::rngs::StdRng { super::make() }
            }
        "#;
        let f = run_rule("crates/shard/src/engine.rs", src, &cfg);
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "no-stdrng")
            .map(|f| f.line)
            .collect();
        assert_eq!(
            lines,
            vec![2, 3],
            "import and call flagged, test module exempt"
        );
        // Outside the scoped paths the same source is clean.
        let f = run_rule("crates/replica/src/a.rs", src, &cfg);
        assert!(f.iter().all(|f| f.rule != "no-stdrng"));
    }

    #[test]
    fn scheduler_discipline_polices_only_configured_impls() {
        let mut cfg = default_config();
        let rc = cfg.rules.entry("scheduler-discipline".into()).or_default();
        rc.impls = vec!["ProtocolCore".into()];
        rc.paths = vec!["crates/cluster".into()];
        let src = r#"
            impl<'a, S: Scheduler> ProtocolCore<'a, S> {
                fn bad(&mut self, q: &mut EventQueue) {
                    let t = Instant::now();
                    q.push(t);
                }
                fn good(&mut self) { let t = self.sched.now(); }
            }
            impl Harness {
                fn driver(q: &mut EventQueue) { q.push(0); }
            }
        "#;
        let f = run_rule("crates/cluster/src/protocol.rs", src, &cfg);
        let hits: Vec<(u32, &str)> = f
            .iter()
            .filter(|f| f.rule == "scheduler-discipline")
            .map(|f| (f.line, f.message.as_str()))
            .collect();
        // EventQueue line 3, Instant line 4 (Instant::now also trips
        // no-wall-clock, which is fine and separate); the Harness impl
        // is out of scope.
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].0, 3);
        assert_eq!(hits[1].0, 4);
        assert!(hits[0].1.contains("ProtocolCore"));
        // Out of the configured paths the same source is clean.
        let f = run_rule("crates/bench/src/protocol.rs", src, &cfg);
        assert!(f.iter().all(|f| f.rule != "scheduler-discipline"));
    }

    #[test]
    fn panic_hot_path_flags_panics_and_scoped_indexing() {
        let mut cfg = default_config();
        let rc = cfg.rules.entry("no-panic-hot-path".into()).or_default();
        rc.paths = vec![
            "crates/shard/src/engine.rs".into(),
            "crates/graph/src/delta.rs".into(),
        ];
        rc.index_paths = vec!["crates/shard/src/engine.rs".into()];
        let src = r#"
            fn hot(xs: &[u64], i: usize) -> u64 {
                let v = xs.first().unwrap();
                assert!(i < xs.len());
                let mut acc = [0u64; 64];
                acc[i % 64] += xs[i];
                debug_assert!(*v > 0);
                let attr = vec![1, 2];
                *v
            }
        "#;
        let f = run_rule("crates/shard/src/engine.rs", src, &cfg);
        let hits: Vec<(u32, &str)> = f
            .iter()
            .filter(|f| f.rule == "no-panic-hot-path")
            .map(|f| (f.line, f.message.as_str()))
            .collect();
        // unwrap (3), assert! (4), xs[i] (6). acc[…] is a fixed-size
        // array local, debug_assert compiles out, vec![…] is a macro.
        assert_eq!(
            hits.iter().map(|h| h.0).collect::<Vec<_>>(),
            vec![3, 4, 6],
            "{hits:?}"
        );
        assert!(hits[2].1.contains("xs"));
        // delta.rs is panic-scoped but not index-scoped.
        let f = run_rule("crates/graph/src/delta.rs", src, &cfg);
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "no-panic-hot-path")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![3, 4]);
        // Unscoped files are untouched even with the rule configured.
        let f = run_rule("crates/cluster/src/runner.rs", src, &cfg);
        assert!(f.iter().all(|f| f.rule != "no-panic-hot-path"));
    }

    #[test]
    fn lossy_cast_flags_narrowing_only() {
        let mut cfg = default_config();
        cfg.rules.entry("no-lossy-cast".into()).or_default().paths = vec!["crates/shard".into()];
        let src = r#"
            fn pack(o: usize, w: u64) -> (u32, u64, f64) {
                let id = o as u32;
                let wide = o as u64;
                let f = w as f64;
                let b = (w & 0xff) as u8;
                (id, wide + b as u64, f)
            }
        "#;
        let f = run_rule("crates/shard/src/engine.rs", src, &cfg);
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "no-lossy-cast")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![3, 6], "narrowing casts only: as u32, as u8");
    }

    #[test]
    fn matches_inside_strings_and_comments_do_not_fire() {
        let src = r##"
            // Instant::now() would be bad here
            fn msg() -> &'static str { "uses Instant::now and thread_rng and SystemTime" }
            fn raw() -> &'static str { r#"for x in map.values()"# }
        "##;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        assert!(f.is_empty(), "{f:?}");
    }
}
