//! The rule catalog: six determinism/safety properties every reported
//! number in this reproduction rests on (DESIGN.md §9).
//!
//! Each rule is a token-sequence property checked per file. Rules are
//! scoped by path prefix (`paths` in `lint.toml`) and by test-ness
//! (`include_tests`); `forbid-unsafe` is additionally scoped to crate
//! roots via `roots` globs.

use crate::config::{glob_match, Config, RuleConfig};
use crate::lexer::{lex, test_mask, Tok, TokKind};
use std::collections::BTreeSet;
use std::fmt;

/// Rule identifiers, in report order.
pub const RULE_IDS: [&str; 6] = [
    "no-wall-clock",
    "no-unseeded-rng",
    "no-unordered-iteration",
    "forbid-unsafe",
    "no-float-eq",
    "no-stdrng",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id from [`RULE_IDS`].
    pub rule: &'static str,
    /// What was found and why it matters.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One lexed source file ready for rule checks.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    toks: Vec<Tok>,
    tests: Vec<bool>,
}

impl SourceFile {
    /// Lexes `src` as the contents of `path`.
    pub fn new(path: &str, src: &str) -> Self {
        let toks = lex(src);
        let tests = test_mask(&toks);
        Self {
            path: path.to_string(),
            toks,
            tests,
        }
    }

    fn in_scope(&self, rc: &RuleConfig) -> bool {
        rc.paths.is_empty()
            || rc
                .paths
                .iter()
                .any(|p| self.path == *p || self.path.starts_with(&format!("{p}/")))
    }
}

/// Runs every rule over one file under `config`, appending findings.
pub fn check_file(file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    let checks: [(&'static str, RuleFn); 6] = [
        ("no-wall-clock", no_wall_clock),
        ("no-unseeded-rng", no_unseeded_rng),
        ("no-unordered-iteration", no_unordered_iteration),
        ("forbid-unsafe", forbid_unsafe),
        ("no-float-eq", no_float_eq),
        ("no-stdrng", no_stdrng),
    ];
    for (rule, f) in checks {
        let rc = config.rule(rule);
        if rule == "forbid-unsafe" {
            // Root-scoped, not prefix-scoped: applies iff the file
            // matches one of the crate-root globs.
            if rc.roots.iter().any(|g| glob_match(g, &file.path)) {
                f(file, &rc, rule, out);
            }
            continue;
        }
        if file.in_scope(&rc) {
            f(file, &rc, rule, out);
        }
    }
    // Deterministic report order and structural dedup (a `for` loop over
    // `.drain()` trips two detectors of the same rule on the same line).
    out.sort();
    out.dedup();
}

type RuleFn = fn(&SourceFile, &RuleConfig, &'static str, &mut Vec<Finding>);

/// Visible (non-test unless `include_tests`) token at index `i`?
fn visible(file: &SourceFile, rc: &RuleConfig, i: usize) -> bool {
    rc.include_tests || !file.tests[i]
}

fn push(out: &mut Vec<Finding>, file: &SourceFile, rule: &'static str, line: u32, message: String) {
    out.push(Finding {
        file: file.path.clone(),
        line,
        rule,
        message,
    });
}

/// Matches `toks[i..]` against `pat` (idents and puncts by text).
fn seq(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, want)| {
        toks.get(i + k).is_some_and(|t| {
            (t.kind == TokKind::Ident || t.kind == TokKind::Punct) && t.text == *want
        })
    })
}

/// `no-wall-clock`: `Instant::now` and any use of `SystemTime`.
///
/// Reading the wall clock inside simulation, stats, or manifest code
/// makes outputs depend on host speed; measured quantities (utilization
/// accounting, bench drivers) carry `file:line` allowlist entries.
fn no_wall_clock(file: &SourceFile, rc: &RuleConfig, rule: &'static str, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !visible(file, rc, i) {
            continue;
        }
        if seq(toks, i, &["Instant", "::", "now"]) {
            push(
                out,
                file,
                rule,
                toks[i].line,
                "`Instant::now` reads the wall clock; simulated time must come from the DES clock"
                    .into(),
            );
        } else if toks[i].is_ident("SystemTime") {
            push(
                out,
                file,
                rule,
                toks[i].line,
                "`SystemTime` reads the wall clock; run artifacts must be reproducible".into(),
            );
        }
    }
}

/// `no-unseeded-rng`: `thread_rng`, `from_entropy`, `from_os_rng`, and
/// `rand::random` — all randomness must derive from the run seed.
fn no_unseeded_rng(file: &SourceFile, rc: &RuleConfig, rule: &'static str, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !visible(file, rc, i) {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("from_os_rng") {
            push(
                out,
                file,
                rule,
                t.line,
                format!(
                    "`{}` draws OS entropy; derive all randomness from the run seed \
                     (quorum_stats::rng)",
                    t.text
                ),
            );
        } else if seq(toks, i, &["rand", "::", "random"]) {
            push(
                out,
                file,
                rule,
                t.line,
                "`rand::random` uses the thread-local OS-seeded RNG; derive all randomness \
                 from the run seed (quorum_stats::rng)"
                    .into(),
            );
        }
    }
}

/// Methods whose call on a `HashMap`/`HashSet` observes (or depends on)
/// its nondeterministic iteration order.
const ORDER_SENSITIVE_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// `no-unordered-iteration`: iterating a `HashMap`/`HashSet` in code
/// that feeds manifests, stats accumulation, or event scheduling.
///
/// Hash iteration order varies with the hasher's per-process seed and
/// the insertion history, so anything folded out of it (manifest rows,
/// merged stats, scheduled events) silently loses run-to-run stability.
/// Keyed lookup stays allowed; iteration requires a `BTreeMap`/sorted
/// materialization or an allowlist entry with a written justification.
///
/// Detection is file-local: identifiers bound or typed as
/// `HashMap`/`HashSet` in this file, then flagged at `.iter()`-family
/// calls and `for … in` loops over them.
fn no_unordered_iteration(
    file: &SourceFile,
    rc: &RuleConfig,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    let decls = unordered_decls(toks);
    if decls.is_empty() {
        return;
    }
    let names: BTreeSet<&str> = decls.iter().map(|d| d.name).collect();
    if rc.forbid_types {
        // Strict mode: the declaration itself must be justified, so
        // membership-only uses carry a written allowlist reason instead
        // of silently inviting future iteration.
        for d in &decls {
            if d.strict && visible(file, rc, d.tok_index) {
                push(
                    out,
                    file,
                    rule,
                    toks[d.tok_index].line,
                    format!(
                        "`{}` is declared as a `{}`; this path feeds deterministic output — \
                         use a BTree collection, or allowlist with a membership-only \
                         justification",
                        d.name, d.type_name
                    ),
                );
            }
        }
    }
    for i in 0..toks.len() {
        if !visible(file, rc, i) {
            continue;
        }
        let t = &toks[i];
        // `name.iter()`, `name.drain()`, ... (also matches through
        // `self.name.iter()` since we key on the field name itself).
        if t.kind == TokKind::Ident
            && names.contains(t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|m| ORDER_SENSITIVE_METHODS.iter().any(|s| m.is_ident(s)))
        {
            let method = &toks[i + 2].text;
            push(
                out,
                file,
                rule,
                t.line,
                format!(
                    "`{}.{}()` observes hash-iteration order; use a BTreeMap/BTreeSet or \
                     materialize sorted keys first",
                    t.text, method
                ),
            );
        }
        // `for pat in [&][mut] [path.]name {` — the loop expression's
        // final identifier before `{` is the collection.
        if t.is_ident("for") {
            let Some(in_idx) = (i + 1..toks.len().min(i + 24)).find(|&k| toks[k].is_ident("in"))
            else {
                continue;
            };
            let Some(brace) =
                (in_idx + 1..toks.len().min(in_idx + 24)).find(|&k| toks[k].is_punct("{"))
            else {
                continue;
            };
            // Only treat simple paths (idents, `.`, `&`, `mut`, `self`)
            // as a bare-collection loop; method calls inside the
            // expression are handled by the detector above.
            let expr = &toks[in_idx + 1..brace];
            let simple = expr
                .iter()
                .all(|t| matches!(t.kind, TokKind::Ident) || t.is_punct("&") || t.is_punct("."));
            if !simple {
                continue;
            }
            if let Some(last) = expr.iter().rev().find(|t| t.kind == TokKind::Ident) {
                if names.contains(last.text.as_str()) {
                    push(
                        out,
                        file,
                        rule,
                        toks[i].line,
                        format!(
                            "`for … in {}` iterates a hash collection; use a BTreeMap/BTreeSet \
                             or materialize sorted keys first",
                            last.text
                        ),
                    );
                }
            }
        }
    }
}

/// One `HashMap`/`HashSet` binding found in a file.
struct UnorderedDecl<'a> {
    /// The bound identifier (field, let binding, or parameter name).
    name: &'a str,
    /// `"HashMap"` or `"HashSet"`.
    type_name: &'a str,
    /// Index of the bound identifier's token (for line/test lookup).
    tok_index: usize,
    /// Whether strict mode reports this site. Struct-literal inits
    /// (`field: HashSet::new()`) re-state a binding whose field
    /// declaration is reported already, so they count for name
    /// collection but not as a second finding.
    strict: bool,
}

/// Collects identifiers bound or typed as `HashMap`/`HashSet` anywhere
/// in the file: `name: [std::collections::]Hash{Map,Set}…`,
/// `let [mut] name = Hash{Map,Set}::…`.
fn unordered_decls(toks: &[Tok]) -> Vec<UnorderedDecl<'_>> {
    let mut decls: Vec<UnorderedDecl> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left over a `path::` prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        // `HashMap` followed by `::` is an expression (`HashMap::new()`),
        // not a type position.
        let type_position = !toks.get(i + 1).is_some_and(|n| n.is_punct("::"));
        let bound = match &toks[j - 1] {
            // Type annotation or struct-literal init:
            // `name : HashMap<…>` / `name : HashMap::new()`.
            p if p.is_punct(":") => {
                (j >= 2 && toks[j - 2].kind == TokKind::Ident).then(|| (j - 2, type_position))
            }
            // Initializer: `let [mut] name = HashMap::new()`.
            p if p.is_punct("=") => {
                let k = j - 1;
                if k >= 1 && toks[k - 1].kind == TokKind::Ident {
                    let k = k - 1;
                    let is_let_bound = (k >= 1 && toks[k - 1].is_ident("let"))
                        || (k >= 2 && toks[k - 1].is_ident("mut") && toks[k - 2].is_ident("let"));
                    (is_let_bound && !toks[k].is_ident("mut")).then_some((k, true))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some((k, strict)) = bound {
            let name = toks[k].text.as_str();
            if !decls.iter().any(|d| d.name == name && d.tok_index == k) {
                decls.push(UnorderedDecl {
                    name,
                    type_name: t.text.as_str(),
                    tok_index: k,
                    strict,
                });
            }
        }
    }
    decls
}

/// `forbid-unsafe`: every crate root (lib, bin, example, test target)
/// must carry `#![forbid(unsafe_code)]` so the guarantee is per-crate
/// airtight instead of a convention.
fn forbid_unsafe(file: &SourceFile, _rc: &RuleConfig, rule: &'static str, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let found = (0..toks.len()).any(|i| {
        seq(
            toks,
            i,
            &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"],
        )
    });
    if !found {
        push(
            out,
            file,
            rule,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".into(),
        );
    }
}

/// `no-float-eq`: `==` / `!=` with a float operand in the numeric core.
///
/// Exact float comparison encodes an accidental bit-pattern property;
/// availability estimates and CI bounds must compare with an explicit
/// epsilon (or restructure to integers). Detection: a float literal (or
/// an identifier annotated `: f64`/`: f32` in this file) directly on
/// either side of `==`/`!=`, allowing a unary minus.
fn no_float_eq(file: &SourceFile, rc: &RuleConfig, rule: &'static str, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let float_names = float_annotated_names(toks);
    let is_floaty = |t: &Tok| {
        t.kind == TokKind::Float
            || (t.kind == TokKind::Ident && float_names.contains(t.text.as_str()))
    };
    for i in 0..toks.len() {
        if !visible(file, rc, i) {
            continue;
        }
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let left_float = i >= 1 && is_floaty(&toks[i - 1]);
        let right = match toks.get(i + 1) {
            Some(m) if m.is_punct("-") => toks.get(i + 2),
            other => other,
        };
        let right_float = right.is_some_and(&is_floaty);
        if left_float || right_float {
            push(
                out,
                file,
                rule,
                t.line,
                format!(
                    "`{}` on a floating-point value; compare with an explicit epsilon instead",
                    t.text
                ),
            );
        }
    }
}

/// `no-stdrng`: `StdRng` (or `rng_from_seed`, which constructs one) in
/// a path scoped as an access hot path.
///
/// `StdRng` is ChaCha12 — sequentially stateful and ~an order of
/// magnitude more ARX work per draw than the counter-based SplitMix64
/// stream the shard walk kernels batch over. In scoped paths (the
/// shard crate via `lint.toml`), per-draw randomness must come from
/// `quorum_stats::rng::CounterRng`, whose draws are pure functions of
/// `(seed, counter)` — that positionality is what keeps the batched
/// SoA kernel and the naive heap engine bit-identical. Once-per-run
/// setup code (the failure-timeline replay) carries `file:line`
/// allowlist entries instead of weakening the rule.
fn no_stdrng(file: &SourceFile, rc: &RuleConfig, rule: &'static str, out: &mut Vec<Finding>) {
    for (i, t) in file.toks.iter().enumerate() {
        if !visible(file, rc, i) {
            continue;
        }
        if t.is_ident("StdRng") || t.is_ident("rng_from_seed") {
            push(
                out,
                file,
                rule,
                t.line,
                format!(
                    "`{}` brings sequential ChaCha12 state into a hot path; draw from \
                     quorum_stats::rng::CounterRng so batched and one-at-a-time walks \
                     stay bit-identical",
                    t.text
                ),
            );
        }
    }
}

/// Identifiers annotated `: f64` / `: f32` anywhere in the file.
fn float_annotated_names(toks: &[Tok]) -> BTreeSet<&str> {
    let mut names = BTreeSet::new();
    for i in 2..toks.len() {
        if (toks[i].is_ident("f64") || toks[i].is_ident("f32"))
            && toks[i - 1].is_punct(":")
            && toks[i - 2].kind == TokKind::Ident
        {
            names.insert(toks[i - 2].text.as_str());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule(path: &str, src: &str, config: &Config) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let mut out = Vec::new();
        check_file(&file, config, &mut out);
        out
    }

    fn default_config() -> Config {
        Config::parse(
            r#"
[rules.forbid-unsafe]
roots = ["crates/*/src/lib.rs"]
"#,
        )
        .unwrap()
    }

    #[test]
    fn wall_clock_is_flagged_outside_tests_only() {
        let src = r#"
            fn hot() { let t = std::time::Instant::now(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn timing() { let t = std::time::Instant::now(); }
            }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        let wall: Vec<_> = f.iter().filter(|f| f.rule == "no-wall-clock").collect();
        assert_eq!(wall.len(), 1);
        assert_eq!(wall[0].line, 2);
    }

    #[test]
    fn system_time_and_rng_are_flagged() {
        let src = r#"
            fn stamp() -> std::time::SystemTime { std::time::SystemTime::now() }
            fn roll() -> f64 { rand::random() }
            fn seed() { let r = rand::rngs::StdRng::from_entropy(); }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        assert!(f.iter().any(|f| f.rule == "no-wall-clock" && f.line == 2));
        assert!(f.iter().any(|f| f.rule == "no-unseeded-rng" && f.line == 3));
        assert!(f.iter().any(|f| f.rule == "no-unseeded-rng" && f.line == 4));
    }

    #[test]
    fn hash_iteration_is_flagged_lookup_is_not() {
        let src = r#"
            use std::collections::HashMap;
            struct S { sessions: HashMap<u64, String> }
            impl S {
                fn lookup(&self, k: u64) -> Option<&String> { self.sessions.get(&k) }
                fn dump(&self) {
                    for (k, v) in &self.sessions { println!("{k} {v}"); }
                    let keys: Vec<_> = self.sessions.keys().collect();
                }
            }
            fn local() {
                let mut seen = HashMap::new();
                seen.insert(1, 2);
                let n = seen.len();
                for v in seen.values() { drop(v); }
            }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        let it: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "no-unordered-iteration")
            .collect();
        let lines: Vec<u32> = it.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![7, 8, 15], "{it:?}");
    }

    #[test]
    fn strict_mode_flags_declarations() {
        let mut cfg = default_config();
        cfg.rules
            .entry("no-unordered-iteration".into())
            .or_default()
            .forbid_types = true;
        let src = r#"
            use std::collections::HashSet;
            struct Q { live: HashSet<u64> }
            fn check(q: &Q, k: u64) -> bool { q.live.contains(&k) }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &cfg);
        let it: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "no-unordered-iteration")
            .collect();
        assert_eq!(it.len(), 1, "{it:?}");
        assert_eq!(it[0].line, 3);
        assert!(it[0].message.contains("HashSet"));
        // Without strict mode the membership-only use is clean.
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        assert!(f.iter().all(|f| f.rule != "no-unordered-iteration"));
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = r#"
            use std::collections::BTreeMap;
            fn dump(m: &BTreeMap<u64, u64>) {
                for (k, v) in m { println!("{k} {v}"); }
                let _ = m.keys().count();
            }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        assert!(f.iter().all(|f| f.rule != "no-unordered-iteration"));
    }

    #[test]
    fn iteration_scope_respects_paths() {
        let mut cfg = default_config();
        cfg.rules
            .entry("no-unordered-iteration".into())
            .or_default()
            .paths = vec!["crates/cluster".into()];
        let src = "fn f(m: std::collections::HashMap<u8,u8>) { for x in m.values() { drop(x); } }";
        assert!(run_rule("crates/graph/src/a.rs", src, &cfg).is_empty());
        assert!(!run_rule("crates/cluster/src/a.rs", src, &cfg).is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_only_roots() {
        let cfg = default_config();
        let f = run_rule("crates/x/src/lib.rs", "pub fn f() {}", &cfg);
        assert!(f.iter().any(|f| f.rule == "forbid-unsafe"));
        let f = run_rule(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
            &cfg,
        );
        assert!(f.iter().all(|f| f.rule != "forbid-unsafe"));
        // Non-root files are exempt.
        let f = run_rule("crates/x/src/other.rs", "pub fn f() {}", &cfg);
        assert!(f.iter().all(|f| f.rule != "forbid-unsafe"));
    }

    #[test]
    fn float_eq_flags_literals_and_annotated_names() {
        let src = r#"
            fn check(availability: f64, n: u64) -> bool {
                if availability == 1.0 { return true; }
                if n == 3 { return false; }
                availability != 0.5
            }
        "#;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "no-float-eq")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![3, 5]);
    }

    #[test]
    fn float_eq_allows_epsilon_style() {
        let src = "fn close(a: f64, b: f64) -> bool { (a - b).abs() < 1e-9 }";
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        assert!(f.iter().all(|f| f.rule != "no-float-eq"));
    }

    #[test]
    fn stdrng_is_flagged_in_scoped_paths_tests_exempt() {
        let mut cfg = default_config();
        cfg.rules.entry("no-stdrng".into()).or_default().paths = vec!["crates/shard".into()];
        let src = r#"
            use quorum_stats::rng::rng_from_seed;
            fn walk() { let rng = rng_from_seed(7); }
            #[cfg(test)]
            mod tests {
                fn reference() -> rand::rngs::StdRng { super::make() }
            }
        "#;
        let f = run_rule("crates/shard/src/engine.rs", src, &cfg);
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "no-stdrng")
            .map(|f| f.line)
            .collect();
        assert_eq!(
            lines,
            vec![2, 3],
            "import and call flagged, test module exempt"
        );
        // Outside the scoped paths the same source is clean.
        let f = run_rule("crates/replica/src/a.rs", src, &cfg);
        assert!(f.iter().all(|f| f.rule != "no-stdrng"));
    }

    #[test]
    fn matches_inside_strings_and_comments_do_not_fire() {
        let src = r##"
            // Instant::now() would be bad here
            fn msg() -> &'static str { "uses Instant::now and thread_rng and SystemTime" }
            fn raw() -> &'static str { r#"for x in map.values()"# }
        "##;
        let f = run_rule("crates/x/src/a.rs", src, &default_config());
        assert!(f.is_empty(), "{f:?}");
    }
}
