//! `quorum-lint`: the determinism & safety static-analysis pass.
//!
//! Every reported number in this reproduction — the paper's Figure-1
//! availability curves, the orchestrator's "thread count never changes
//! any reported number" guarantee, the delta-kernel's bit-identical
//! view pin — rests on invariants that are structural, not local: no
//! wall-clock in simulated paths, all randomness derived from the run
//! seed, no hash-iteration order reaching manifests or schedulers,
//! `unsafe` forbidden at every crate root, no exact float comparison in
//! the numeric core. Tests pin *instances* of these properties;
//! `quorum-lint` checks the properties themselves on every build, so
//! they survive refactors instead of living as tribal knowledge.
//!
//! The pass is built on a small purpose-built lexer in [`lexer`] (the
//! offline build environment has no `syn`). Per-file rules in [`rules`]
//! are token-sequence properties; on top of the token stream, [`parser`]
//! resolves a per-file item model (modules, fns, impl blocks, emission
//! sites, key constants) and [`model`] links those into one
//! workspace-wide symbol table for cross-file rules such as
//! `obs-key-registry`. The lexer guarantees matches never come from
//! comments, and string-literal *content* is kept out of identifier
//! matching by construction.
//!
//! Configuration lives in the repo-root `lint.toml` ([`config`]):
//! per-rule path scoping plus a `file:line`-anchored allowlist where
//! every exception carries a written justification. Anchors go stale
//! loudly — an entry that no longer suppresses a finding fails the run
//! (exit 2) so drifted lines get re-reviewed, not silently ignored.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p quorum-lint
//! ```
//!
//! Findings print as `file:line: rule-id: message` (or SARIF/JSON via
//! `--format`); exit codes are 0 (clean), 1 (findings), 2 (stale
//! allowlist or config error), 3 (`--check-anchors` audit failure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod report;
pub mod rules;

pub use config::{AllowEntry, Config};
pub use engine::{run, run_sources, Outcome};
pub use model::WorkspaceModel;
pub use parser::FileModel;
pub use rules::{Finding, RULE_IDS};
