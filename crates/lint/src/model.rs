//! The workspace semantic model: every file's [`FileModel`] linked
//! into one symbol table, plus the cross-file `obs-key-registry` rule
//! that runs over it.

use crate::config::RuleConfig;
use crate::lexer::TokKind;
use crate::parser::{EmitArg, FileModel, KeyConst};
use crate::rules::{Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Default registry path when `[rules.obs-key-registry]` does not set
/// one.
pub const DEFAULT_REGISTRY: &str = "crates/obs/src/keys.rs";

/// The workspace-wide symbol table: one `(lexed file, file model)` pair
/// per checked file, in deterministic path order.
pub struct WorkspaceModel<'a> {
    /// The modeled files.
    pub files: &'a [(SourceFile, FileModel)],
}

impl<'a> WorkspaceModel<'a> {
    /// Wraps the engine's parsed files.
    pub fn new(files: &'a [(SourceFile, FileModel)]) -> Self {
        Self { files }
    }

    /// The registry file's declared key constants (empty if the
    /// registry file is not part of this run).
    pub fn declared_keys(&self, registry: &str) -> Vec<&KeyConst> {
        self.files
            .iter()
            .filter(|(f, _)| f.path == registry)
            .flat_map(|(_, m)| m.key_consts.iter())
            .collect()
    }

    /// Every identifier referenced anywhere outside `registry` (tests
    /// included — a key emitted only under test coverage still counts
    /// as live). Used for declared-but-never-emitted detection, which
    /// must also see constants passed *indirectly* (e.g. a phase-label
    /// argument forwarded to `scoped_timer`).
    pub fn referenced_idents(&self, registry: &str) -> BTreeSet<&str> {
        self.files
            .iter()
            .filter(|(f, _)| f.path != registry)
            .flat_map(|(f, _)| f.toks.iter())
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }
}

/// `obs-key-registry`: `crates/obs/src/keys.rs` is the single declared
/// schema of every metric key.
///
/// Emitted-but-undeclared and declared-but-never-referenced both fail:
/// * every key argument at an emission site must be a reference to a
///   declared constant — raw string literals are flagged whether or not
///   their text happens to match a declared key, because two spellings
///   of one schema is exactly the drift this rule exists to stop;
/// * a constant reference that resolves to no declared key is flagged
///   at the call site;
/// * a declared constant never referenced anywhere else in the
///   workspace is flagged at its declaration — dead schema;
/// * two constants declaring the same key string are flagged at the
///   second declaration.
///
/// Dynamic keys (`format!`-built, variables) are invisible to the model
/// by design; CI's jq cross-check of `--emit-keys-json` covers the
/// static gate keys, which is the contract that must not drift.
pub fn obs_key_registry(model: &WorkspaceModel<'_>, rc: &RuleConfig, out: &mut Vec<Finding>) {
    const RULE: &str = "obs-key-registry";
    let registry = if rc.registry.is_empty() {
        DEFAULT_REGISTRY
    } else {
        rc.registry.as_str()
    };
    let declared = model.declared_keys(registry);
    let by_name: BTreeMap<&str, &KeyConst> =
        declared.iter().map(|k| (k.name.as_str(), *k)).collect();
    let by_value: BTreeMap<&str, &KeyConst> = declared
        .iter()
        .rev() // first declaration wins the map slot
        .map(|k| (k.value.as_str(), *k))
        .collect();

    // Duplicate key values: flag every declaration after the first.
    let mut seen_values: BTreeMap<&str, &KeyConst> = BTreeMap::new();
    for k in &declared {
        if let Some(first) = seen_values.get(k.value.as_str()) {
            out.push(Finding {
                file: registry.to_string(),
                line: k.line,
                rule: RULE,
                message: format!(
                    "`{}` re-declares key \"{}\" already declared by `{}` (line {}); \
                     one key, one constant",
                    k.name, k.value, first.name, first.line
                ),
            });
        } else {
            seen_values.insert(k.value.as_str(), k);
        }
    }

    // Emission sites: literals and unresolved constant references.
    for (file, fm) in model.files {
        if file.path == registry || !in_scope(&file.path, rc) {
            continue;
        }
        for e in &fm.emits {
            if !rc.include_tests && file.tests[e.tok_index] {
                continue;
            }
            match &e.arg {
                EmitArg::Literal(key) => {
                    let message = match by_value.get(key.as_str()) {
                        Some(k) => format!(
                            "`.{}(\"{}\")` spells a declared key as a raw literal; \
                             reference `quorum_obs::keys::{}` so the registry stays \
                             the single schema",
                            e.method, key, k.name
                        ),
                        None => format!(
                            "`.{}(\"{}\")` emits a key not declared in {registry}; \
                             declare a constant there and reference it",
                            e.method, key
                        ),
                    };
                    out.push(Finding {
                        file: file.path.clone(),
                        line: e.line,
                        rule: RULE,
                        message,
                    });
                }
                EmitArg::ConstRef(name) => {
                    if !by_name.contains_key(name.as_str()) {
                        out.push(Finding {
                            file: file.path.clone(),
                            line: e.line,
                            rule: RULE,
                            message: format!(
                                "`.{}({})` references a key constant not declared \
                                 in {registry}",
                                e.method, name
                            ),
                        });
                    }
                }
            }
        }
    }

    // Declared-but-never-referenced: dead schema entries. A raw literal
    // spelling the key's value counts as a reference — that site is
    // already flagged above, and one drift should produce one finding,
    // not a second "dead key" report for a key that is clearly live.
    let referenced = model.referenced_idents(registry);
    let literal_values: BTreeSet<&str> = model
        .files
        .iter()
        .filter(|(f, _)| f.path != registry)
        .flat_map(|(_, m)| m.emits.iter())
        .filter_map(|e| match &e.arg {
            EmitArg::Literal(v) => Some(v.as_str()),
            EmitArg::ConstRef(_) => None,
        })
        .collect();
    for k in &declared {
        if !referenced.contains(k.name.as_str()) && !literal_values.contains(k.value.as_str()) {
            out.push(Finding {
                file: registry.to_string(),
                line: k.line,
                rule: RULE,
                message: format!(
                    "declared key `{}` (\"{}\") is never referenced by any emitter; \
                     delete it or wire up the emission",
                    k.name, k.value
                ),
            });
        }
    }
}

fn in_scope(path: &str, rc: &RuleConfig) -> bool {
    rc.paths.is_empty()
        || rc
            .paths
            .iter()
            .any(|p| path == *p || path.starts_with(&format!("{p}/")))
}

/// Renders the declared registry as JSON for `--emit-keys-json`:
/// `{"registry": …, "count": N, "keys": [{name, value, line}…],
/// "values": […]}` with `values` sorted for cheap jq containment
/// checks.
pub fn keys_json(model: &WorkspaceModel<'_>, rc: &RuleConfig) -> String {
    let registry = if rc.registry.is_empty() {
        DEFAULT_REGISTRY
    } else {
        rc.registry.as_str()
    };
    let declared = model.declared_keys(registry);
    let mut values: Vec<&str> = declared.iter().map(|k| k.value.as_str()).collect();
    values.sort_unstable();
    values.dedup();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"registry\": {},\n", json_str(registry)));
    s.push_str(&format!("  \"count\": {},\n", declared.len()));
    s.push_str("  \"keys\": [\n");
    for (i, k) in declared.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"value\": {}, \"line\": {}}}{}\n",
            json_str(&k.name),
            json_str(&k.value),
            k.line,
            if i + 1 < declared.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"values\": [");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(v));
    }
    s.push_str("]\n}\n");
    s
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::FileModel;

    fn parse(files: &[(&str, &str)]) -> Vec<(SourceFile, FileModel)> {
        files
            .iter()
            .map(|(p, s)| {
                let f = SourceFile::new(p, s);
                let m = FileModel::build(&f);
                (f, m)
            })
            .collect()
    }

    const REGISTRY: &str = r#"
        pub const DES_EVENTS: &str = "des.events_processed";
        pub const MC_STATES: &str = "mc.states_explored";
        pub const DEAD_KEY: &str = "never.emitted";
    "#;

    fn rc() -> RuleConfig {
        RuleConfig {
            registry: "crates/obs/src/keys.rs".into(),
            ..RuleConfig::default()
        }
    }

    #[test]
    fn bidirectional_coverage_is_enforced() {
        let files = parse(&[
            ("crates/obs/src/keys.rs", REGISTRY),
            (
                "crates/des/src/a.rs",
                r#"
                fn publish(r: &Registry) {
                    r.add(keys::DES_EVENTS, 1);
                    r.add("mc.states_explored", 2);
                    r.add("des.unregistered", 3);
                    r.counter(keys::NOT_DECLARED);
                }
                "#,
            ),
        ]);
        let model = WorkspaceModel::new(&files);
        let mut out = Vec::new();
        obs_key_registry(&model, &rc(), &mut out);
        out.sort();
        let got: Vec<(&str, u32)> = out.iter().map(|f| (f.file.as_str(), f.line)).collect();
        // literal-of-declared (line 4), undeclared literal (line 5),
        // unresolved const ref (line 6), dead declaration (registry).
        assert_eq!(
            got,
            vec![
                ("crates/des/src/a.rs", 4),
                ("crates/des/src/a.rs", 5),
                ("crates/des/src/a.rs", 6),
                ("crates/obs/src/keys.rs", 4),
            ],
            "{out:?}"
        );
        assert!(out[0].message.contains("DES_EVENTS") || out[0].message.contains("MC_STATES"));
        assert!(out[3].message.contains("DEAD_KEY"));
    }

    #[test]
    fn indirect_references_count_as_coverage() {
        let files = parse(&[
            ("crates/obs/src/keys.rs", REGISTRY),
            (
                "crates/replica/src/a.rs",
                // All three keys referenced: two via emits, one passed
                // as a plain argument (phase-label indirection).
                r#"
                fn run(r: &Registry) {
                    r.add(keys::DES_EVENTS, 1);
                    r.add(keys::MC_STATES, 1);
                    run_with_phase(r, keys::DEAD_KEY);
                }
                "#,
            ),
        ]);
        let model = WorkspaceModel::new(&files);
        let mut out = Vec::new();
        obs_key_registry(&model, &rc(), &mut out);
        assert_eq!(out, vec![], "{out:?}");
    }

    #[test]
    fn test_masked_emits_are_skipped_but_grant_coverage() {
        let files = parse(&[
            (
                "crates/obs/src/keys.rs",
                "pub const ONLY_TESTED: &str = \"only.tested\";",
            ),
            (
                "crates/x/src/a.rs",
                r#"
                #[cfg(test)]
                mod tests {
                    fn t(r: &Registry) {
                        r.add("raw.literal.in.test", 1);
                        r.add(keys::ONLY_TESTED, 1);
                    }
                }
                "#,
            ),
        ]);
        let model = WorkspaceModel::new(&files);
        let mut out = Vec::new();
        obs_key_registry(&model, &rc(), &mut out);
        assert_eq!(out, vec![], "{out:?}");
    }

    #[test]
    fn duplicate_key_values_are_flagged() {
        let files = parse(&[(
            "crates/obs/src/keys.rs",
            "pub const A: &str = \"same.key\";\npub const B: &str = \"same.key\";",
        )]);
        let model = WorkspaceModel::new(&files);
        let mut out = Vec::new();
        obs_key_registry(&model, &rc(), &mut out);
        let dup: Vec<_> = out
            .iter()
            .filter(|f| f.message.contains("re-declares"))
            .collect();
        assert_eq!(dup.len(), 1);
        assert_eq!(dup[0].line, 2);
    }

    #[test]
    fn keys_json_is_sorted_and_escaped() {
        let files = parse(&[(
            "crates/obs/src/keys.rs",
            "pub const B: &str = \"b.key\";\npub const A: &str = \"a.key\";",
        )]);
        let model = WorkspaceModel::new(&files);
        let json = keys_json(&model, &rc());
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"values\": [\"a.key\", \"b.key\"]"));
        assert!(json.contains("\"name\": \"B\""));
        assert_eq!(json_str("a\"b\\c"), r#""a\"b\\c""#);
    }
}
