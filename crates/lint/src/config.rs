//! `lint.toml` loading: rule scoping and the `file:line`-anchored
//! allowlist.
//!
//! The environment is offline (no `toml` crate), so this module parses
//! the small TOML subset the config actually uses: `[section]` /
//! `[[array-of-table]]` headers, `key = "string" | integer | bool |
//! [array of strings]`, and `#` comments. Anything outside that subset
//! is a hard error — a silently misread config is worse than none,
//! because it turns rules off without anyone noticing.

use std::collections::BTreeMap;
use std::fmt;

/// One `[[allow]]` entry: suppresses exactly one finding of `rule` at
/// `file:line`. Entries that suppress nothing are *stale* and fail the
/// run — an anchored line that drifted means the justification below it
/// no longer describes the code it was written for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry applies to, e.g. `"no-wall-clock"`.
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line the finding sits on.
    pub line: u32,
    /// Human justification; required, and printed when the entry goes
    /// stale so the reviewer knows what claim needs re-checking.
    pub reason: String,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} ({})",
            self.file, self.line, self.rule, self.reason
        )
    }
}

/// Per-rule configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleConfig {
    /// Path prefixes the rule is restricted to (empty = whole tree).
    pub paths: Vec<String>,
    /// Glob patterns naming crate-root files (only used by
    /// `forbid-unsafe`).
    pub roots: Vec<String>,
    /// Whether the rule also fires inside `#[cfg(test)]` / `#[test]`
    /// items. Defaults to false (rules guard shipped behavior; tests
    /// may e.g. read wall-clock to assert timeouts).
    pub include_tests: bool,
    /// Strict mode for `no-unordered-iteration`: flag `HashMap`/`HashSet`
    /// *declarations* in scoped paths, not just iteration sites, so
    /// membership-only uses need an explicit allowlisted justification.
    pub forbid_types: bool,
    /// `obs-key-registry`: workspace-relative path of the key registry
    /// file (empty = `crates/obs/src/keys.rs`).
    pub registry: String,
    /// `scheduler-discipline`: type names whose impl blocks the rule
    /// polices (e.g. `ProtocolCore`).
    pub impls: Vec<String>,
    /// `scheduler-discipline`: identifiers forbidden inside the policed
    /// impl blocks (empty = `EventQueue`, `Instant`, `SystemTime`).
    pub forbid: Vec<String>,
    /// `no-panic-hot-path`: path prefixes where slice/`Vec` *indexing*
    /// is also flagged, not just the panic family. Indexing enforcement
    /// is opt-in per module because slab-style kernels maintain their
    /// own index invariants and would need one brittle anchor per line.
    pub index_paths: Vec<String>,
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Directory prefixes to scan (default: `crates`, `examples`,
    /// `tests`).
    pub include: Vec<String>,
    /// Path prefixes to skip (fixture trees, vendored code).
    pub exclude: Vec<String>,
    /// Per-rule settings keyed by rule id; a missing entry means the
    /// rule runs with defaults.
    pub rules: BTreeMap<String, RuleConfig>,
    /// Allowlist entries.
    pub allow: Vec<AllowEntry>,
}

impl Config {
    /// The scan roots, with defaults applied.
    pub fn include_or_default(&self) -> Vec<String> {
        if self.include.is_empty() {
            vec!["crates".into(), "examples".into(), "tests".into()]
        } else {
            self.include.clone()
        }
    }

    /// Settings for `rule` (defaults if unconfigured).
    pub fn rule(&self, rule: &str) -> RuleConfig {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Parses the TOML-subset text of a `lint.toml`.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        // Current insertion target: which table the next `key = value`
        // lands in.
        enum Target {
            None,
            Workspace,
            Rule(String),
            Allow,
        }
        let mut target = Target::None;

        // Logical lines: a `key = [` array may span physical lines until
        // its closing `]`.
        let mut logical: Vec<(usize, String)> = Vec::new();
        let mut pending: Option<(usize, String)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let piece = strip_comment(raw).trim().to_string();
            if let Some((start, mut acc)) = pending.take() {
                acc.push(' ');
                acc.push_str(&piece);
                if piece.ends_with(']') {
                    logical.push((start, acc));
                } else {
                    pending = Some((start, acc));
                }
                continue;
            }
            if piece.is_empty() {
                continue;
            }
            if piece.contains("= [") && !piece.ends_with(']') {
                pending = Some((idx + 1, piece));
            } else {
                logical.push((idx + 1, piece));
            }
        }
        if let Some((start, _)) = pending {
            return Err(format!("line {start}: unterminated array"));
        }

        for (lineno, line) in &logical {
            let (lineno, line) = (*lineno, line.as_str());
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                match header.trim() {
                    "allow" => {
                        cfg.allow.push(AllowEntry {
                            rule: String::new(),
                            file: String::new(),
                            line: 0,
                            reason: String::new(),
                        });
                        target = Target::Allow;
                    }
                    other => return Err(format!("line {lineno}: unknown table [[{other}]]")),
                }
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let header = header.trim();
                if header == "workspace" {
                    target = Target::Workspace;
                } else if let Some(rule) = header.strip_prefix("rules.") {
                    cfg.rules.entry(rule.to_string()).or_default();
                    target = Target::Rule(rule.to_string());
                } else {
                    return Err(format!("line {lineno}: unknown table [{header}]"));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let key = key.trim();
            let value = Value::parse(value.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
            match &target {
                Target::None => {
                    return Err(format!("line {lineno}: `{key}` outside any table"));
                }
                Target::Workspace => match key {
                    "include" => cfg.include = value.strings(key)?,
                    "exclude" => cfg.exclude = value.strings(key)?,
                    _ => return Err(format!("line {lineno}: unknown workspace key `{key}`")),
                },
                Target::Rule(rule) => {
                    let rc = cfg.rules.get_mut(rule).expect("table created at header");
                    match key {
                        "paths" => rc.paths = value.strings(key)?,
                        "roots" => rc.roots = value.strings(key)?,
                        "include_tests" => rc.include_tests = value.boolean(key)?,
                        "forbid_types" => rc.forbid_types = value.boolean(key)?,
                        "registry" => rc.registry = value.string(key)?,
                        "impls" => rc.impls = value.strings(key)?,
                        "forbid" => rc.forbid = value.strings(key)?,
                        "index_paths" => rc.index_paths = value.strings(key)?,
                        _ => {
                            return Err(format!(
                                "line {lineno}: unknown key `{key}` for rule `{rule}`"
                            ))
                        }
                    }
                }
                Target::Allow => {
                    let entry = cfg.allow.last_mut().expect("entry created at header");
                    match key {
                        "rule" => entry.rule = value.string(key)?,
                        "file" => entry.file = value.string(key)?,
                        "line" => entry.line = value.integer(key)? as u32,
                        "reason" => entry.reason = value.string(key)?,
                        _ => return Err(format!("line {lineno}: unknown allow key `{key}`")),
                    }
                }
            }
        }

        for (i, entry) in cfg.allow.iter().enumerate() {
            if entry.rule.is_empty() || entry.file.is_empty() || entry.line == 0 {
                return Err(format!(
                    "[[allow]] entry {} is incomplete: rule, file, and line are all required",
                    i + 1
                ));
            }
            if entry.reason.trim().is_empty() {
                return Err(format!(
                    "[[allow]] entry {}:{} ({}) has no reason — every exception must say why",
                    entry.file, entry.line, entry.rule
                ));
            }
        }
        Ok(cfg)
    }
}

/// Strips a `#` comment, respecting `"..."` strings on the line.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// A parsed TOML-subset value.
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    Array(Vec<String>),
}

impl Value {
    fn parse(text: &str) -> Result<Value, String> {
        if let Some(rest) = text.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or("unterminated array (arrays must be single-line)")?;
            let mut items = Vec::new();
            for part in split_top_level(inner) {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                match Value::parse(part)? {
                    Value::Str(s) => items.push(s),
                    _ => return Err("arrays may only contain strings".into()),
                }
            }
            return Ok(Value::Array(items));
        }
        if let Some(rest) = text.strip_prefix('"') {
            let inner = rest.strip_suffix('"').ok_or("unterminated string")?;
            // The config subset needs no escapes beyond literal text.
            if inner.contains('\\') {
                return Err("escape sequences are not supported in lint.toml strings".into());
            }
            return Ok(Value::Str(inner.to_string()));
        }
        if text == "true" {
            return Ok(Value::Bool(true));
        }
        if text == "false" {
            return Ok(Value::Bool(false));
        }
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("cannot parse value `{text}`"))
    }

    fn string(self, key: &str) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(format!("`{key}` must be a string")),
        }
    }

    fn integer(self, key: &str) -> Result<i64, String> {
        match self {
            Value::Int(i) => Ok(i),
            _ => Err(format!("`{key}` must be an integer")),
        }
    }

    fn boolean(self, key: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(b),
            _ => Err(format!("`{key}` must be a boolean")),
        }
    }

    fn strings(self, key: &str) -> Result<Vec<String>, String> {
        match self {
            Value::Array(v) => Ok(v),
            _ => Err(format!("`{key}` must be an array of strings")),
        }
    }
}

/// Splits on commas that are not inside quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Segment-wise glob match: `*` within a segment matches any substring
/// of that segment; there is no `**`. Paths use forward slashes.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat_segs: Vec<&str> = pattern.split('/').collect();
    let path_segs: Vec<&str> = path.split('/').collect();
    if pat_segs.len() != path_segs.len() {
        return false;
    }
    pat_segs
        .iter()
        .zip(&path_segs)
        .all(|(p, s)| segment_match(p, s))
}

fn segment_match(pattern: &str, segment: &str) -> bool {
    // Greedy-with-backtracking `*` match over bytes.
    let (p, s) = (pattern.as_bytes(), segment.as_bytes());
    let (mut pi, mut si) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while si < s.len() {
        if pi < p.len() && (p[pi] == s[si]) {
            pi += 1;
            si += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            pi = sp + 1;
            si = ss + 1;
            star = Some((sp, ss + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r#"
# determinism lint config
[workspace]
include = ["crates", "examples"]
exclude = ["crates/lint/tests"]

[rules.no-float-eq]
paths = ["crates/core", "crates/stats"]

[rules.no-unseeded-rng]
include_tests = true

[rules.forbid-unsafe]
roots = ["crates/*/src/lib.rs", "crates/*/src/bin/*.rs"]

[[allow]]
rule = "no-wall-clock"
file = "crates/stats/src/converge.rs"
line = 120  # trailing comment
reason = "utilization accounting measures wall-clock by design"
"#;
        let cfg = Config::parse(text).unwrap();
        assert_eq!(cfg.include, vec!["crates", "examples"]);
        assert_eq!(cfg.exclude, vec!["crates/lint/tests"]);
        assert_eq!(
            cfg.rule("no-float-eq").paths,
            vec!["crates/core", "crates/stats"]
        );
        assert!(cfg.rule("no-unseeded-rng").include_tests);
        assert!(!cfg.rule("no-wall-clock").include_tests);
        assert_eq!(cfg.rule("forbid-unsafe").roots.len(), 2);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].line, 120);
        assert!(cfg.allow[0].reason.contains("utilization"));
    }

    #[test]
    fn multi_line_arrays_parse() {
        let text = "
[rules.forbid-unsafe]
roots = [
    \"crates/*/src/lib.rs\",  # libs
    \"tests/*.rs\",
]
";
        let cfg = Config::parse(text).unwrap();
        assert_eq!(
            cfg.rule("forbid-unsafe").roots,
            vec!["crates/*/src/lib.rs", "tests/*.rs"]
        );
    }

    #[test]
    fn semantic_rule_keys_parse() {
        let text = r#"
[rules.obs-key-registry]
registry = "crates/obs/src/keys.rs"

[rules.scheduler-discipline]
impls = ["ProtocolCore"]
forbid = ["EventQueue", "Instant", "SystemTime"]

[rules.no-panic-hot-path]
paths = ["crates/shard/src/engine.rs", "crates/graph/src/delta.rs"]
index_paths = ["crates/shard/src/engine.rs"]
"#;
        let cfg = Config::parse(text).unwrap();
        assert_eq!(
            cfg.rule("obs-key-registry").registry,
            "crates/obs/src/keys.rs"
        );
        assert_eq!(cfg.rule("scheduler-discipline").impls, vec!["ProtocolCore"]);
        assert_eq!(cfg.rule("scheduler-discipline").forbid.len(), 3);
        assert_eq!(
            cfg.rule("no-panic-hot-path").index_paths,
            vec!["crates/shard/src/engine.rs"]
        );
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let text = r#"
[[allow]]
rule = "no-wall-clock"
file = "a.rs"
line = 3
reason = "  "
"#;
        let err = Config::parse(text).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn incomplete_allow_is_rejected() {
        let text = "[[allow]]\nrule = \"no-wall-clock\"\n";
        assert!(Config::parse(text).is_err());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(Config::parse("[workspace]\nfrobnicate = true\n").is_err());
        assert!(Config::parse("[somewhere]\n").is_err());
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("crates/*/src/lib.rs", "crates/core/src/lib.rs"));
        assert!(glob_match(
            "crates/*/src/bin/*.rs",
            "crates/bench/src/bin/figures.rs"
        ));
        assert!(!glob_match(
            "crates/*/src/lib.rs",
            "crates/core/src/quorum.rs"
        ));
        assert!(!glob_match(
            "crates/*/src/lib.rs",
            "crates/core/src/a/lib.rs"
        ));
        assert!(glob_match("examples/*.rs", "examples/quickstart.rs"));
        assert!(glob_match("tests/lib.rs", "tests/lib.rs"));
    }
}
