//! Discrete probability distributions over vote counts.
//!
//! The paper expresses everything in terms of densities over the number of
//! votes `v` in the network component containing a site: `f_i(v)` for site
//! `i`, and the mixtures `r(v) = Σ r_i f_i(v)` and `w(v) = Σ w_i f_i(v)`.
//! All of these are finitely supported on `0..=T` where `T` is the total
//! number of votes, so a dense `Vec<f64>` is the natural representation.

/// A probability mass function supported on `0..=T` (vote counts).
///
/// Invariant: `pmf.len() == T + 1` and entries are non-negative. The mass
/// need not sum to exactly one (empirical estimates carry rounding error);
/// [`DiscreteDist::normalized`] re-scales when exactness matters.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDist {
    pmf: Vec<f64>,
}

impl DiscreteDist {
    /// Creates a distribution from raw masses over `0..=T`.
    ///
    /// # Panics
    /// Panics if `pmf` is empty or contains a negative or non-finite entry.
    pub fn from_pmf(pmf: Vec<f64>) -> Self {
        assert!(!pmf.is_empty(), "pmf must cover at least v = 0");
        for (v, &m) in pmf.iter().enumerate() {
            assert!(
                m.is_finite() && m >= 0.0,
                "pmf[{v}] = {m} must be finite and non-negative"
            );
        }
        Self { pmf }
    }

    /// The point mass `δ_v` on support `0..=total`.
    pub fn point_mass(v: usize, total: usize) -> Self {
        assert!(v <= total, "point {v} outside support 0..={total}");
        let mut pmf = vec![0.0; total + 1];
        pmf[v] = 1.0;
        Self { pmf }
    }

    /// The uniform distribution on `0..=total`.
    pub fn uniform(total: usize) -> Self {
        let n = total + 1;
        Self {
            pmf: vec![1.0 / n as f64; n],
        }
    }

    /// Largest vote count in the support range (i.e. `T`).
    pub fn max_votes(&self) -> usize {
        self.pmf.len() - 1
    }

    /// Probability mass at exactly `v` votes (0 outside the support).
    pub fn pmf(&self, v: usize) -> f64 {
        self.pmf.get(v).copied().unwrap_or(0.0)
    }

    /// Raw access to the mass vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Total mass (should be ≈ 1 for a proper distribution).
    pub fn total_mass(&self) -> f64 {
        self.pmf.iter().sum()
    }

    /// Returns a copy rescaled to total mass one.
    ///
    /// # Panics
    /// Panics if the total mass is zero.
    pub fn normalized(&self) -> Self {
        let s = self.total_mass();
        assert!(s > 0.0, "cannot normalize a zero distribution");
        Self {
            pmf: self.pmf.iter().map(|m| m / s).collect(),
        }
    }

    /// Upper tail `P[V ≥ v]`, the quantity `Σ_{k=v}^{T} f(k)` used
    /// throughout the availability function.
    pub fn tail_sum(&self, v: usize) -> f64 {
        if v >= self.pmf.len() {
            return 0.0;
        }
        self.pmf[v..].iter().sum()
    }

    /// Cumulative `P[V ≤ v]`.
    pub fn cdf(&self, v: usize) -> f64 {
        let end = (v + 1).min(self.pmf.len());
        self.pmf[..end].iter().sum()
    }

    /// Precomputes every upper tail sum; `tails[v] = P[V ≥ v]` for
    /// `v ∈ 0..=T+1` (the final entry is zero). Evaluating availability for
    /// all `q_r` then costs O(1) per query instead of O(T).
    pub fn tail_table(&self) -> Vec<f64> {
        let mut tails = vec![0.0; self.pmf.len() + 1];
        for v in (0..self.pmf.len()).rev() {
            tails[v] = tails[v + 1] + self.pmf[v];
        }
        tails
    }

    /// Mean number of votes.
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(v, &m)| v as f64 * m)
            .sum()
    }

    /// Variance of the vote count.
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        self.pmf
            .iter()
            .enumerate()
            .map(|(v, &m)| (v as f64 - mu).powi(2) * m)
            .sum()
    }

    /// Smallest `v` with `P[V ≤ v] ≥ p` (generalized inverse CDF).
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1` (and the distribution has positive
    /// mass).
    pub fn quantile(&self, p: f64) -> usize {
        assert!(p > 0.0 && p <= 1.0, "p must lie in (0,1], got {p}");
        let target = p * self.total_mass();
        let mut acc = 0.0;
        for (v, &m) in self.pmf.iter().enumerate() {
            acc += m;
            if acc >= target - 1e-15 {
                return v;
            }
        }
        self.pmf.len() - 1
    }

    /// Median vote count.
    pub fn median(&self) -> usize {
        self.quantile(0.5)
    }

    /// Pointwise convex mixture `Σ weights[i] · dists[i]`.
    ///
    /// This is exactly step 2 of the paper's algorithm: given per-site
    /// densities `f_i` and submission fractions `r_i`, the mixture is
    /// `r(v) = Σ_i r_i f_i(v)`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths, are empty, or the
    /// distributions have differing supports.
    pub fn mixture(dists: &[DiscreteDist], weights: &[f64]) -> Self {
        assert_eq!(dists.len(), weights.len(), "one weight per distribution");
        assert!(!dists.is_empty(), "mixture of nothing");
        let n = dists[0].pmf.len();
        let mut pmf = vec![0.0; n];
        for (d, &w) in dists.iter().zip(weights) {
            assert_eq!(d.pmf.len(), n, "all mixture components must share support");
            assert!(w >= 0.0, "mixture weights must be non-negative");
            for (acc, &m) in pmf.iter_mut().zip(&d.pmf) {
                *acc += w * m;
            }
        }
        Self { pmf }
    }

    /// L∞ distance between two distributions on the same support.
    pub fn max_abs_diff(&self, other: &DiscreteDist) -> f64 {
        assert_eq!(self.pmf.len(), other.pmf.len(), "supports must match");
        self.pmf
            .iter()
            .zip(&other.pmf)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Kolmogorov–Smirnov distance `max_v |CDF_p(v) − CDF_q(v)|`.
    pub fn ks_distance(&self, other: &DiscreteDist) -> f64 {
        assert_eq!(self.pmf.len(), other.pmf.len(), "supports must match");
        let mut acc_a = 0.0;
        let mut acc_b = 0.0;
        let mut worst: f64 = 0.0;
        for v in 0..self.pmf.len() {
            acc_a += self.pmf[v];
            acc_b += other.pmf[v];
            worst = worst.max((acc_a - acc_b).abs());
        }
        worst
    }

    /// Total-variation distance `½ Σ |p − q|`.
    pub fn total_variation(&self, other: &DiscreteDist) -> f64 {
        assert_eq!(self.pmf.len(), other.pmf.len(), "supports must match");
        0.5 * self
            .pmf
            .iter()
            .zip(&other.pmf)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn point_mass_has_unit_mass_at_point() {
        let d = DiscreteDist::point_mass(3, 5);
        assert_close(d.pmf(3), 1.0);
        assert_close(d.pmf(2), 0.0);
        assert_close(d.total_mass(), 1.0);
        assert_eq!(d.max_votes(), 5);
    }

    #[test]
    fn uniform_mass_sums_to_one() {
        let d = DiscreteDist::uniform(9);
        assert_close(d.total_mass(), 1.0);
        assert_close(d.pmf(0), 0.1);
        assert_close(d.pmf(9), 0.1);
    }

    #[test]
    fn tail_sum_matches_manual_sum() {
        let d = DiscreteDist::from_pmf(vec![0.1, 0.2, 0.3, 0.4]);
        assert_close(d.tail_sum(0), 1.0);
        assert_close(d.tail_sum(2), 0.7);
        assert_close(d.tail_sum(3), 0.4);
        assert_close(d.tail_sum(4), 0.0);
        assert_close(d.tail_sum(100), 0.0);
    }

    #[test]
    fn cdf_complements_tail() {
        let d = DiscreteDist::from_pmf(vec![0.1, 0.2, 0.3, 0.4]);
        for v in 0..4 {
            assert_close(d.cdf(v) + d.tail_sum(v + 1), 1.0);
        }
    }

    #[test]
    fn tail_table_matches_tail_sum() {
        let d = DiscreteDist::from_pmf(vec![0.05, 0.15, 0.25, 0.2, 0.35]);
        let t = d.tail_table();
        assert_eq!(t.len(), 6);
        for v in 0..6 {
            assert_close(t[v], d.tail_sum(v));
        }
    }

    #[test]
    fn mean_and_variance_of_point_mass() {
        let d = DiscreteDist::point_mass(4, 7);
        assert_close(d.mean(), 4.0);
        assert_close(d.variance(), 0.0);
    }

    #[test]
    fn mean_of_uniform() {
        let d = DiscreteDist::uniform(10);
        assert_close(d.mean(), 5.0);
    }

    #[test]
    fn quantiles_of_simple_distribution() {
        let d = DiscreteDist::from_pmf(vec![0.25, 0.25, 0.25, 0.25]);
        assert_eq!(d.quantile(0.25), 0);
        assert_eq!(d.quantile(0.26), 1);
        assert_eq!(d.median(), 1);
        assert_eq!(d.quantile(1.0), 3);
        let pm = DiscreteDist::point_mass(2, 5);
        assert_eq!(pm.median(), 2);
        assert_eq!(pm.quantile(0.01), 2);
    }

    #[test]
    #[should_panic(expected = "p must lie")]
    fn zero_quantile_rejected() {
        DiscreteDist::uniform(3).quantile(0.0);
    }

    #[test]
    fn mixture_of_point_masses() {
        let a = DiscreteDist::point_mass(1, 3);
        let b = DiscreteDist::point_mass(3, 3);
        let m = DiscreteDist::mixture(&[a, b], &[0.25, 0.75]);
        assert_close(m.pmf(1), 0.25);
        assert_close(m.pmf(3), 0.75);
        assert_close(m.total_mass(), 1.0);
    }

    #[test]
    fn normalized_rescales() {
        let d = DiscreteDist::from_pmf(vec![1.0, 3.0]).normalized();
        assert_close(d.pmf(0), 0.25);
        assert_close(d.pmf(1), 0.75);
    }

    #[test]
    fn distances_between_identical_dists_are_zero() {
        let d = DiscreteDist::uniform(5);
        assert_close(d.max_abs_diff(&d.clone()), 0.0);
        assert_close(d.total_variation(&d.clone()), 0.0);
    }

    #[test]
    fn ks_distance_properties() {
        let a = DiscreteDist::point_mass(0, 4);
        let b = DiscreteDist::point_mass(4, 4);
        assert_close(a.ks_distance(&b), 1.0);
        assert_close(a.ks_distance(&a.clone()), 0.0);
        // KS ≤ TV always.
        let c = DiscreteDist::from_pmf(vec![0.3, 0.2, 0.1, 0.2, 0.2]);
        let d = DiscreteDist::from_pmf(vec![0.1, 0.3, 0.3, 0.1, 0.2]);
        assert!(c.ks_distance(&d) <= c.total_variation(&d) + 1e-12);
    }

    #[test]
    fn total_variation_of_disjoint_point_masses_is_one() {
        let a = DiscreteDist::point_mass(0, 4);
        let b = DiscreteDist::point_mass(4, 4);
        assert_close(a.total_variation(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mass_rejected() {
        DiscreteDist::from_pmf(vec![0.5, -0.1]);
    }

    #[test]
    #[should_panic(expected = "outside support")]
    fn point_mass_outside_support_rejected() {
        DiscreteDist::point_mass(6, 5);
    }
}
