//! Statistics substrate for the quorum-assignment reproduction.
//!
//! This crate provides the numerical machinery that the rest of the
//! workspace builds on:
//!
//! * [`DiscreteDist`] — probability mass functions over vote counts
//!   `0..=T`, with the tail sums used by the availability function
//!   `A(α, q_r)` of Johnson & Raab (Figure 1 of the paper).
//! * [`CountingHistogram`] / [`DecayedHistogram`] — the two on-line
//!   estimators of the component-size density `f_i(v)` described in §4.2
//!   of the paper.
//! * [`BatchMeans`] and [`ConfidenceInterval`] — the batch-means output
//!   analysis the paper's simulator uses (§5.2: batches of one million
//!   accesses, 95 % confidence intervals of half-width ≤ 0.5 %).
//! * [`converge`] — the generic parallel batch orchestrator built on
//!   them: runs `Fn(batch_index) -> stats` jobs on scoped worker
//!   threads, merges deterministically by batch index, and applies the
//!   stop-when-tight rule (every multi-batch runner shares this loop).
//! * One-dimensional optimizers ([`optimize`]) — exhaustive integer argmax,
//!   the golden-section search the paper suggests in §4.1, and Brent's
//!   method for continuous relaxations.
//! * RNG helpers ([`rng`]) — deterministic seed derivation and exponential
//!   variates for Poisson processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod ci;
pub mod converge;
pub mod discrete;
pub mod histogram;
pub mod optimize;
pub mod rng;

pub use batch::{BatchMeans, RunningStats};
pub use ci::ConfidenceInterval;
pub use converge::{converge, ConvergeParams, Convergence, TracePoint};
pub use discrete::DiscreteDist;
pub use histogram::{CountingHistogram, DecayedHistogram, VoteHistogram};
