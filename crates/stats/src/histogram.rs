//! On-line estimators of the component-size density `f_i(v)`.
//!
//! §4.2 of the paper observes that computing `f_i` exactly is #P-complete in
//! general graphs, but that a site can approximate it "based upon past
//! performance": every time site `i` communicates with its component it
//! records the total number of votes it can reach, and the empirical
//! histogram of those observations approaches `f_i(v)`.
//!
//! Two estimators are provided:
//!
//! * [`CountingHistogram`] — plain event counting; converges fastest in a
//!   stationary system.
//! * [`DecayedHistogram`] — exponentially-decayed counting; tracks
//!   *temporal* changes (shifting access patterns, periodic failures) and is
//!   the natural estimator for the dynamic quorum-reassignment protocol of
//!   §4.3, which wants recent history to dominate.

use crate::discrete::DiscreteDist;

/// Common interface of the `f_i(v)` estimators.
pub trait VoteHistogram {
    /// Records one observation: the site saw `votes` reachable votes.
    fn record(&mut self, votes: usize);

    /// Number of (possibly weighted) observations recorded so far.
    fn weight(&self) -> f64;

    /// Current estimate of `f_i` as a normalized distribution.
    ///
    /// # Panics
    /// Panics if nothing has been recorded yet.
    fn estimate(&self) -> DiscreteDist;
}

/// Plain counting estimator of `f_i(v)`.
#[derive(Debug, Clone)]
pub struct CountingHistogram {
    counts: Vec<u64>,
    observations: u64,
}

impl CountingHistogram {
    /// Creates an empty histogram over vote counts `0..=total_votes`.
    pub fn new(total_votes: usize) -> Self {
        Self {
            counts: vec![0; total_votes + 1],
            observations: 0,
        }
    }

    /// Raw counts per vote value.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Merges another histogram over the same support into this one.
    ///
    /// Used when aggregating per-batch histograms collected on worker
    /// threads.
    ///
    /// # Panics
    /// Panics if the supports differ.
    pub fn merge(&mut self, other: &CountingHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram supports must match"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.observations += other.observations;
    }
}

impl VoteHistogram for CountingHistogram {
    fn record(&mut self, votes: usize) {
        assert!(
            votes < self.counts.len(),
            "observation {votes} outside support 0..{}",
            self.counts.len()
        );
        self.counts[votes] += 1;
        self.observations += 1;
    }

    fn weight(&self) -> f64 {
        self.observations as f64
    }

    fn estimate(&self) -> DiscreteDist {
        assert!(self.observations > 0, "no observations recorded");
        let n = self.observations as f64;
        DiscreteDist::from_pmf(self.counts.iter().map(|&c| c as f64 / n).collect())
    }
}

/// Exponentially-decayed estimator of `f_i(v)`.
///
/// Each recorded observation first multiplies all existing mass by the decay
/// factor `λ ∈ (0, 1]`, then adds unit mass at the observed vote count. The
/// effective memory is `1/(1 − λ)` observations; `λ = 1` degenerates to
/// plain counting.
#[derive(Debug, Clone)]
pub struct DecayedHistogram {
    mass: Vec<f64>,
    total: f64,
    decay: f64,
}

impl DecayedHistogram {
    /// Creates an empty decayed histogram with decay factor `decay`.
    ///
    /// # Panics
    /// Panics unless `0 < decay <= 1`.
    pub fn new(total_votes: usize, decay: f64) -> Self {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must lie in (0, 1], got {decay}"
        );
        Self {
            mass: vec![0.0; total_votes + 1],
            total: 0.0,
            decay,
        }
    }

    /// The decay factor λ.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Effective number of remembered observations, `1/(1−λ)` in the limit.
    pub fn effective_window(&self) -> f64 {
        if self.decay >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - self.decay)
        }
    }
}

impl VoteHistogram for DecayedHistogram {
    fn record(&mut self, votes: usize) {
        assert!(
            votes < self.mass.len(),
            "observation {votes} outside support 0..{}",
            self.mass.len()
        );
        if self.decay < 1.0 {
            for m in &mut self.mass {
                *m *= self.decay;
            }
            self.total *= self.decay;
        }
        self.mass[votes] += 1.0;
        self.total += 1.0;
    }

    fn weight(&self) -> f64 {
        self.total
    }

    fn estimate(&self) -> DiscreteDist {
        assert!(self.total > 0.0, "no observations recorded");
        DiscreteDist::from_pmf(self.mass.iter().map(|&m| m / self.total).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_estimate_matches_frequencies() {
        let mut h = CountingHistogram::new(4);
        for v in [0, 1, 1, 2, 2, 2, 4, 4] {
            h.record(v);
        }
        let d = h.estimate();
        assert!((d.pmf(0) - 1.0 / 8.0).abs() < 1e-12);
        assert!((d.pmf(1) - 2.0 / 8.0).abs() < 1e-12);
        assert!((d.pmf(2) - 3.0 / 8.0).abs() < 1e-12);
        assert!((d.pmf(3) - 0.0).abs() < 1e-12);
        assert!((d.pmf(4) - 2.0 / 8.0).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counting_merge_adds_counts() {
        let mut a = CountingHistogram::new(3);
        let mut b = CountingHistogram::new(3);
        a.record(1);
        a.record(2);
        b.record(2);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.observations(), 4);
        assert_eq!(a.counts(), &[0, 1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn empty_counting_estimate_panics() {
        CountingHistogram::new(3).estimate();
    }

    #[test]
    fn decay_one_equals_counting() {
        let mut c = CountingHistogram::new(5);
        let mut d = DecayedHistogram::new(5, 1.0);
        for v in [5, 0, 3, 3, 2] {
            c.record(v);
            d.record(v);
        }
        assert!(c.estimate().max_abs_diff(&d.estimate()) < 1e-12);
    }

    #[test]
    fn decayed_histogram_forgets_old_regime() {
        let mut h = DecayedHistogram::new(10, 0.9);
        // Old regime: always 2 votes.
        for _ in 0..200 {
            h.record(2);
        }
        // New regime: always 8 votes.
        for _ in 0..200 {
            h.record(8);
        }
        let d = h.estimate();
        assert!(
            d.pmf(8) > 0.999,
            "new regime should dominate, got P[8] = {}",
            d.pmf(8)
        );
    }

    #[test]
    fn counting_histogram_never_forgets() {
        let mut h = CountingHistogram::new(10);
        for _ in 0..200 {
            h.record(2);
        }
        for _ in 0..200 {
            h.record(8);
        }
        let d = h.estimate();
        assert!((d.pmf(2) - 0.5).abs() < 1e-12);
        assert!((d.pmf(8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn effective_window() {
        assert!((DecayedHistogram::new(1, 0.99).effective_window() - 100.0).abs() < 1e-9);
        assert!(DecayedHistogram::new(1, 1.0)
            .effective_window()
            .is_infinite());
    }

    #[test]
    #[should_panic(expected = "decay must lie")]
    fn zero_decay_rejected() {
        DecayedHistogram::new(3, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside support")]
    fn out_of_range_observation_rejected() {
        let mut h = CountingHistogram::new(3);
        h.record(4);
    }
}
