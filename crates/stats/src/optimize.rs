//! One-dimensional maximizers for the availability function.
//!
//! §4.1 of the paper: the read quorum `q_r` ranges over the integers
//! `1..=⌊T/2⌋`, so a naive exhaustive scan is already polynomial. The paper
//! notes two accelerations: (a) `A(α, q_r)` is frequently maximized at the
//! *endpoints* of the range, suggesting an endpoint-first check, and (b)
//! numeric techniques — golden-section search, and Brent's method on a
//! continuous relaxation — converge quickly when the function is unimodal.
//!
//! All searches return the argmax and the maximum value. Exhaustive search
//! is the ground truth the others are validated against in tests and in the
//! `optimizer` bench.

/// Result of a 1-D integer maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntMax {
    /// Argmax.
    pub x: usize,
    /// Maximum value.
    pub value: f64,
    /// Number of function evaluations performed.
    pub evals: usize,
}

/// Exhaustive argmax of `f` over `lo..=hi`. Ties break toward smaller `x`
/// (smaller read quorums are never worse operationally: they admit more
/// reads at equal availability).
///
/// # Panics
/// Panics if `lo > hi`.
pub fn exhaustive_max(lo: usize, hi: usize, mut f: impl FnMut(usize) -> f64) -> IntMax {
    assert!(lo <= hi, "empty domain {lo}..={hi}");
    let mut best = IntMax {
        x: lo,
        value: f(lo),
        evals: 1,
    };
    for x in lo + 1..=hi {
        let v = f(x);
        best.evals += 1;
        if v > best.value {
            best.x = x;
            best.value = v;
        }
    }
    best
}

/// Golden-section search for a maximum of `f` over the integers `lo..=hi`,
/// with the paper's endpoint-first refinement: both endpoints are always
/// evaluated (§5.3 shows maxima land there for most topologies/ratios), and
/// the interior is narrowed by golden-ratio subdivision.
///
/// Exact for unimodal `f` (including monotone `f`); for multimodal `f` it
/// returns a local maximum, which is why callers validate against
/// [`exhaustive_max`] where correctness matters more than speed.
pub fn golden_section_max(lo: usize, hi: usize, mut f: impl FnMut(usize) -> f64) -> IntMax {
    assert!(lo <= hi, "empty domain {lo}..={hi}");
    let mut evals = 0usize;
    let mut eval = |x: usize, evals: &mut usize| {
        *evals += 1;
        f(x)
    };

    // Endpoint-first check.
    let flo = eval(lo, &mut evals);
    if hi == lo {
        return IntMax {
            x: lo,
            value: flo,
            evals,
        };
    }
    let fhi = eval(hi, &mut evals);
    let mut best = if flo >= fhi {
        IntMax {
            x: lo,
            value: flo,
            evals,
        }
    } else {
        IntMax {
            x: hi,
            value: fhi,
            evals,
        }
    };

    // Interior golden-section narrowing on [a, b].
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let (mut a, mut b) = (lo as f64, hi as f64);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let (mut xc, mut xd) = (c.round() as usize, d.round() as usize);
    let mut fc = eval(xc, &mut evals);
    let mut fd = eval(xd, &mut evals);

    while (b - a) > 2.0 {
        if fc >= fd {
            b = d;
            d = c;
            xd = xc;
            fd = fc;
            c = b - INV_PHI * (b - a);
            xc = c.round() as usize;
            fc = eval(xc, &mut evals);
        } else {
            a = c;
            c = d;
            xc = xd;
            fc = fd;
            d = a + INV_PHI * (b - a);
            xd = d.round() as usize;
            fd = eval(xd, &mut evals);
        }
    }

    // Sweep the final integer bracket.
    let ia = a.floor().max(lo as f64) as usize;
    let ib = b.ceil().min(hi as f64) as usize;
    for x in ia..=ib {
        let v = eval(x, &mut evals);
        if v > best.value || (v == best.value && x < best.x) {
            best = IntMax { x, value: v, evals };
        }
    }
    if fc > best.value {
        best = IntMax {
            x: xc,
            value: fc,
            evals,
        };
    }
    if fd > best.value {
        best = IntMax {
            x: xd,
            value: fd,
            evals,
        };
    }
    best.evals = evals;
    best
}

/// Result of a continuous 1-D maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatMax {
    /// Argmax.
    pub x: f64,
    /// Maximum value.
    pub value: f64,
    /// Function evaluations performed.
    pub evals: usize,
}

/// Brent's method (golden section + successive parabolic interpolation) for
/// maximizing a continuous function on `[a, b]`, as the paper suggests for
/// the continuous relaxation of `A` (§4.1, citing Numerical Recipes).
///
/// `tol` is the absolute x-tolerance.
///
/// # Panics
/// Panics if `a >= b` or `tol <= 0`.
pub fn brent_max(a: f64, b: f64, tol: f64, mut f: impl FnMut(f64) -> f64) -> FloatMax {
    assert!(a < b, "invalid bracket [{a}, {b}]");
    assert!(tol > 0.0, "tolerance must be positive");
    // Standard Brent minimization applied to -f.
    const CGOLD: f64 = 0.381_966_011_250_105;
    let mut evals = 0usize;
    let mut g = |x: f64, evals: &mut usize| {
        *evals += 1;
        -f(x)
    };

    let (mut lo, mut hi) = (a, b);
    let mut x = lo + CGOLD * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = g(x, &mut evals);
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;

    for _ in 0..200 {
        let xm = 0.5 * (lo + hi);
        let tol1 = tol * x.abs() + 1e-12;
        let tol2 = 2.0 * tol1;
        if (x - xm).abs() <= tol2 - 0.5 * (hi - lo) {
            break;
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Parabolic fit through x, v, w.
            let r = (x - w) * (fx - fv);
            let q0 = (x - v) * (fx - fw);
            let mut p = (x - v) * q0 - (x - w) * r;
            let mut q = 2.0 * (q0 - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let etemp = e;
            e = d;
            if p.abs() < (0.5 * q * etemp).abs() && p > q * (lo - x) && p < q * (hi - x) {
                d = p / q;
                let u = x + d;
                if u - lo < tol2 || hi - u < tol2 {
                    d = if xm > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x >= xm { lo - x } else { hi - x };
            d = CGOLD * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = g(u, &mut evals);
        if fu <= fx {
            if u >= x {
                lo = x;
            } else {
                hi = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    FloatMax {
        x,
        value: -fx,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_finds_interior_max() {
        let r = exhaustive_max(0, 10, |x| -((x as f64 - 6.3).powi(2)));
        assert_eq!(r.x, 6);
        assert_eq!(r.evals, 11);
    }

    #[test]
    fn exhaustive_tie_breaks_low() {
        let r = exhaustive_max(1, 5, |_| 1.0);
        assert_eq!(r.x, 1);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn exhaustive_rejects_empty_domain() {
        exhaustive_max(5, 4, |_| 0.0);
    }

    #[test]
    fn golden_matches_exhaustive_on_unimodal() {
        for peak in [0usize, 1, 7, 25, 49, 50] {
            let f = |x: usize| -((x as f64 - peak as f64).powi(2));
            let e = exhaustive_max(0, 50, f);
            let g = golden_section_max(0, 50, f);
            assert_eq!(g.x, e.x, "peak {peak}");
            assert!(g.evals <= 51, "golden should not exceed exhaustive count");
        }
    }

    #[test]
    fn golden_handles_monotone_functions() {
        let inc = golden_section_max(1, 50, |x| x as f64);
        assert_eq!(inc.x, 50);
        let dec = golden_section_max(1, 50, |x| -(x as f64));
        assert_eq!(dec.x, 1);
    }

    #[test]
    fn golden_single_point_domain() {
        let r = golden_section_max(7, 7, |x| x as f64);
        assert_eq!(r.x, 7);
        assert_eq!(r.value, 7.0);
    }

    #[test]
    fn golden_finds_endpoint_max_of_bathtub() {
        // Paper §5.3: maxima frequently at endpoints; a bathtub (convex)
        // shape must return one of the endpoints, not an interior point.
        let f = |x: usize| (x as f64 - 25.0).powi(2);
        let r = golden_section_max(1, 50, f);
        assert!(r.x == 1 || r.x == 50);
        assert_eq!(r.value, f(1).max(f(50)));
    }

    #[test]
    fn brent_quadratic_peak() {
        let r = brent_max(0.0, 10.0, 1e-8, |x| -(x - 3.7) * (x - 3.7) + 2.0);
        assert!((r.x - 3.7).abs() < 1e-6, "got {}", r.x);
        assert!((r.value - 2.0).abs() < 1e-10);
    }

    #[test]
    fn brent_asymmetric_function() {
        // max of x * exp(-x) at x = 1.
        let r = brent_max(0.0, 5.0, 1e-9, |x| x * (-x).exp());
        assert!((r.x - 1.0).abs() < 1e-6, "got {}", r.x);
    }

    #[test]
    fn brent_uses_fewer_evals_than_fine_grid() {
        let r = brent_max(0.0, 100.0, 1e-6, |x| -(x - 42.0).powi(2));
        assert!((r.x - 42.0).abs() < 1e-3);
        assert!(r.evals < 100, "evals = {}", r.evals);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn brent_rejects_bad_bracket() {
        brent_max(1.0, 1.0, 1e-6, |x| x);
    }
}
