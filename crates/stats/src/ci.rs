//! Student-t confidence intervals.
//!
//! The paper reports availabilities "with a 95 % confidence interval with an
//! interval half-size of at most ±0.5 %" (§5.2). With 5–18 batches the
//! normal approximation is too loose, so we use Student-t critical values.

use crate::batch::RunningStats;

/// A two-sided confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level, e.g. `0.95`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Builds the interval from an accumulator of batch means.
    ///
    /// Returns `None` with fewer than two samples (no variance estimate).
    pub fn from_stats(stats: &RunningStats, confidence: f64) -> Option<Self> {
        let n = stats.count();
        if n < 2 {
            return None;
        }
        let t = t_critical(confidence, n - 1);
        Some(Self {
            mean: stats.mean(),
            half_width: t * stats.std_error(),
            confidence,
        })
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` lies within the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

/// Two-sided Student-t critical value `t_{(1+confidence)/2, df}`.
///
/// Supports the 90 %, 95 % and 99 % levels exactly (tabulated) and falls
/// back to the normal quantile for other levels or very large `df`.
///
/// # Panics
/// Panics if `df == 0` or `confidence` is outside `(0, 1)`.
pub fn t_critical(confidence: f64, df: u64) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must lie in (0,1)"
    );
    // Standard two-sided critical values, df = 1..=30.
    const T90: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
        1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
        1.703, 1.701, 1.699, 1.697,
    ];
    const T95: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    const T99: [f64; 30] = [
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
        2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
        2.771, 2.763, 2.756, 2.750,
    ];
    let table: Option<&[f64; 30]> = if (confidence - 0.90).abs() < 1e-9 {
        Some(&T90)
    } else if (confidence - 0.95).abs() < 1e-9 {
        Some(&T95)
    } else if (confidence - 0.99).abs() < 1e-9 {
        Some(&T99)
    } else {
        None
    };
    match table {
        Some(t) if df <= 30 => t[(df - 1) as usize],
        Some(t) if df <= 120 => {
            // Linear interpolation in 1/df between df=30 and the asymptote.
            let z = normal_quantile(0.5 + confidence / 2.0);
            let t30 = t[29];
            let frac = (1.0 / df as f64) / (1.0 / 30.0);
            z + (t30 - z) * frac
        }
        _ => normal_quantile(0.5 + confidence / 2.0),
    }
}

/// Standard normal quantile via the Acklam rational approximation
/// (|relative error| < 1.15e-9 on (0,1)).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must lie in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.95) - 1.644854).abs() < 1e-4);
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn t_critical_tabulated_values() {
        assert!((t_critical(0.95, 1) - 12.706).abs() < 1e-9);
        assert!((t_critical(0.95, 4) - 2.776).abs() < 1e-9);
        assert!((t_critical(0.95, 17) - 2.110).abs() < 1e-9);
        assert!((t_critical(0.99, 9) - 3.250).abs() < 1e-9);
        assert!((t_critical(0.90, 10) - 1.812).abs() < 1e-9);
    }

    #[test]
    fn t_critical_approaches_normal_for_large_df() {
        let z = normal_quantile(0.975);
        assert!((t_critical(0.95, 10_000) - z).abs() < 1e-9);
        // Interpolated region decreases toward z.
        let t40 = t_critical(0.95, 40);
        let t100 = t_critical(0.95, 100);
        assert!(t40 > t100 && t100 > z);
        assert!(t40 < t_critical(0.95, 30));
    }

    #[test]
    fn interval_from_stats() {
        let mut s = RunningStats::new();
        // Five batches with mean .5, sd computable by hand.
        for x in [0.48, 0.49, 0.50, 0.51, 0.52] {
            s.push(x);
        }
        let ci = ConfidenceInterval::from_stats(&s, 0.95).unwrap();
        assert!((ci.mean - 0.50).abs() < 1e-12);
        // sd = sqrt(2.5e-4) ≈ 0.015811, se = sd/sqrt(5) ≈ 0.0070711,
        // t(.95, 4) = 2.776 → half-width ≈ 0.019629.
        assert!((ci.half_width - 0.019629).abs() < 1e-4);
        assert!(ci.contains(0.5));
        assert!(!ci.contains(0.6));
        assert!((ci.hi() - ci.lo() - 2.0 * ci.half_width).abs() < 1e-12);
    }

    #[test]
    fn interval_needs_two_samples() {
        let mut s = RunningStats::new();
        assert!(ConfidenceInterval::from_stats(&s, 0.95).is_none());
        s.push(1.0);
        assert!(ConfidenceInterval::from_stats(&s, 0.95).is_none());
        s.push(2.0);
        assert!(ConfidenceInterval::from_stats(&s, 0.95).is_some());
    }
}
