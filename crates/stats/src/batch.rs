//! Batch-means output analysis.
//!
//! The paper's simulator (§5.2) reports each availability figure as the
//! average over 5–18 independent batches of one million accesses each,
//! choosing the batch count so that a 95 % confidence interval has
//! half-width at most ±0.5 %. [`BatchMeans`] implements exactly that
//! accumulate-batches-until-tight loop; [`RunningStats`] is the underlying
//! Welford accumulator.

use crate::ci::ConfidenceInterval;

/// Numerically-stable running mean/variance accumulator (Welford's method).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator (parallel Welford combination).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Lag-1 sample autocorrelation of a series.
///
/// Batch-means analysis assumes batches are (nearly) independent; this
/// diagnostic lets tests verify that derived-seed batches show no serial
/// correlation. Returns 0 for fewer than 3 samples or zero variance.
pub fn lag1_autocorrelation(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 3 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum();
    if var <= 0.0 {
        return 0.0;
    }
    let cov: f64 = samples
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum();
    cov / var
}

/// Batch-means estimator with a target confidence-interval half-width.
///
/// Mirrors the paper's §5.2 methodology: keep adding independent batches
/// until the `confidence`-level Student-t interval around the mean has
/// half-width at most `target_half_width` (and at least `min_batches`
/// batches have been seen).
#[derive(Debug, Clone)]
pub struct BatchMeans {
    stats: RunningStats,
    confidence: f64,
    target_half_width: f64,
    min_batches: u64,
}

impl BatchMeans {
    /// Paper defaults: 95 % confidence, ±0.5 % half-width, ≥ 5 batches.
    pub fn paper_defaults() -> Self {
        Self::new(0.95, 0.005, 5)
    }

    /// Creates a batch-means estimator.
    ///
    /// # Panics
    /// Panics unless `0 < confidence < 1`, `target_half_width > 0`, and
    /// `min_batches >= 2`.
    pub fn new(confidence: f64, target_half_width: f64, min_batches: u64) -> Self {
        assert!(confidence > 0.0 && confidence < 1.0);
        assert!(target_half_width > 0.0);
        assert!(min_batches >= 2, "need at least two batches for a CI");
        Self {
            stats: RunningStats::new(),
            confidence,
            target_half_width,
            min_batches,
        }
    }

    /// Records one batch mean.
    pub fn push_batch(&mut self, batch_mean: f64) {
        self.stats.push(batch_mean);
    }

    /// Number of batches recorded.
    pub fn batches(&self) -> u64 {
        self.stats.count()
    }

    /// Point estimate (mean over batches).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Current confidence interval (`None` with fewer than two batches).
    pub fn interval(&self) -> Option<ConfidenceInterval> {
        ConfidenceInterval::from_stats(&self.stats, self.confidence)
    }

    /// Whether the stopping rule is satisfied.
    pub fn is_converged(&self) -> bool {
        if self.stats.count() < self.min_batches {
            return false;
        }
        match self.interval() {
            Some(ci) => ci.half_width <= self.target_half_width,
            None => false,
        }
    }

    /// Underlying accumulator.
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_formulas() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data = [1.0, 2.5, -3.0, 4.0, 0.0, 8.5, 2.0];
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..3] {
            a.push(x);
        }
        for &x in &data[3..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&RunningStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = RunningStats::new();
        let mut b = RunningStats::new();
        b.push(1.0);
        b.push(3.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn batch_means_converges_on_identical_batches() {
        let mut bm = BatchMeans::paper_defaults();
        assert!(!bm.is_converged());
        for _ in 0..5 {
            bm.push_batch(0.75);
        }
        // Zero variance => zero half-width => converged at min_batches.
        assert!(bm.is_converged());
        assert!((bm.mean() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn batch_means_not_converged_with_wild_variance() {
        let mut bm = BatchMeans::new(0.95, 0.005, 2);
        bm.push_batch(0.1);
        bm.push_batch(0.9);
        assert!(!bm.is_converged());
    }

    #[test]
    fn batch_means_requires_min_batches() {
        let mut bm = BatchMeans::new(0.95, 1.0, 4);
        bm.push_batch(0.5);
        bm.push_batch(0.5);
        bm.push_batch(0.5);
        // Half-width target trivially met, but only 3 < 4 batches.
        assert!(!bm.is_converged());
        bm.push_batch(0.5);
        assert!(bm.is_converged());
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative() {
        let series: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = lag1_autocorrelation(&series);
        assert!(r < -0.9, "alternating series should be anticorrelated: {r}");
    }

    #[test]
    fn autocorrelation_of_trend_is_positive() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let r = lag1_autocorrelation(&series);
        assert!(r > 0.9, "trend should be autocorrelated: {r}");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(lag1_autocorrelation(&[]), 0.0);
        assert_eq!(lag1_autocorrelation(&[1.0, 2.0]), 0.0);
        assert_eq!(lag1_autocorrelation(&[5.0; 10]), 0.0, "zero variance");
    }

    #[test]
    fn std_error_shrinks_with_samples() {
        let mut s = RunningStats::new();
        for i in 0..10 {
            s.push(if i % 2 == 0 { 0.0 } else { 1.0 });
        }
        let few = s.std_error();
        for i in 0..990 {
            s.push(if i % 2 == 0 { 0.0 } else { 1.0 });
        }
        assert!(s.std_error() < few);
    }
}
