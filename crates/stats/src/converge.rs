//! Generic parallel batch orchestrator for §5.2-style convergence loops.
//!
//! Every multi-batch runner in the workspace follows the same shape: run
//! `min_batches` independent batches, then keep adding rounds of batches
//! until the confidence interval on the primary statistic is tight
//! enough (or `max_batches` is hit). Batches are independent by
//! construction — each derives its RNG streams from `(seed, index)` — so
//! rounds can fan out over worker threads, as long as results are merged
//! back **in batch-index order** so thread count never changes a single
//! reported number.
//!
//! [`converge`] implements that loop once, generically: the caller
//! supplies a job factory (`Fn(batch_index) -> S`), an extractor for the
//! statistic the stopping rule watches, and a consumer that receives
//! every batch result in index order (for merging histograms, feeding
//! registries, and so on). The orchestrator owns the round structure,
//! the worker threads, the [`BatchMeans`] stopping rule, the CI trace,
//! and busy-time/utilization accounting.
//!
//! ## Determinism contract
//!
//! The stopping rule is evaluated after **every** batch, in index order
//! — never at a thread-dependent round boundary. Worker threads only
//! *speculate*: a round dispatches up to `threads` batches concurrently,
//! and if the interval converges partway through the round, the batches
//! past the convergence point are discarded (their wall-clock still
//! counts as busy time, but they touch no statistic and `consume` never
//! sees them). Hence, for a fixed `(job, min_batches, max_batches,
//! target)`, the counted batches, the order `consume` observes them,
//! every [`BatchMeans`] push, and the CI trace are identical for every
//! `threads` value. Threads only change wall-clock time.
//!
//! ## Utilization accounting
//!
//! `busy` sums the wall-clock of every batch job; the denominator sums,
//! per round, `min(threads, batches-in-round) × round wall-clock` —
//! the thread-seconds actually *available* that round. A first round of
//! `min_batches = 5` on 8 configured threads only ever had 5 workers, so
//! charging 8 would understate (and charging partial rounds with the
//! whole-run wall can overstate) saturation. With per-round accounting
//! the ratio is ≤ 1 up to clock-read noise.

use crate::batch::BatchMeans;
use std::time::{Duration, Instant};

/// Stopping rule and execution shape of one convergence loop.
#[derive(Debug, Clone, Copy)]
pub struct ConvergeParams {
    /// Confidence level of the stopping interval (e.g. 0.95).
    pub confidence: f64,
    /// Target half-width of the interval on the primary statistic.
    pub target_half_width: f64,
    /// Batches always run (first round), `>= 2`.
    pub min_batches: u64,
    /// Hard cap on batches.
    pub max_batches: u64,
    /// Worker threads (clamped to ≥ 1). Rounds after the first add
    /// `threads` batches at a time.
    pub threads: usize,
}

/// One point of the per-round convergence trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Batches accumulated when the point was recorded.
    pub batches: u64,
    /// Point estimate of the primary statistic.
    pub mean: f64,
    /// Confidence-interval half-width.
    pub half_width: f64,
}

/// Outcome of a [`converge`] run (batch payloads are delivered through
/// the `consume` callback; this holds the orchestration-level results).
#[derive(Debug, Clone)]
pub struct Convergence {
    /// Batch-means accumulator over the primary statistic.
    pub acc: BatchMeans,
    /// Batches counted toward the statistics (speculative batches
    /// discarded after convergence are excluded).
    pub batches: u64,
    /// One trace point per counted batch from the second on (the first
    /// batch count at which an interval exists).
    pub trace: Vec<TracePoint>,
    /// Summed wall-clock of every batch job, discarded speculative
    /// batches included — their workers were genuinely busy.
    pub busy: Duration,
    /// Thread-seconds available, summed per round as
    /// `min(threads, round size) × round wall-clock`.
    pub available_thread_seconds: f64,
    /// Wall-clock of the whole loop.
    pub wall: Duration,
}

impl Convergence {
    /// Busy batch-seconds over available thread-seconds, in `[0, 1]` up
    /// to clock-read noise (0 if nothing ran). 1.0 means every worker
    /// the round structure could use stayed saturated.
    pub fn utilization(&self) -> f64 {
        if self.available_thread_seconds <= 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / self.available_thread_seconds
        }
    }
}

/// Runs one round of batch indices across up to `threads` scoped
/// workers, returning `(stats, elapsed)` pairs aligned with `indices`.
///
/// Work is split round-robin (static), and results are reassembled by
/// index, so the output order — and therefore everything downstream —
/// is independent of the thread count.
fn run_round<S, J>(indices: &[u64], threads: usize, job: &J) -> Vec<(S, Duration)>
where
    S: Send,
    J: Fn(u64) -> S + Sync,
{
    let timed = |i: u64| {
        let started = Instant::now();
        let stats = job(i);
        (stats, started.elapsed())
    };
    let threads = threads.max(1).min(indices.len());
    if threads <= 1 {
        return indices.iter().map(|&i| timed(i)).collect();
    }
    let mut tagged: Vec<(u64, S, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let chunk: Vec<u64> = indices.iter().copied().skip(t).step_by(threads).collect();
                let timed = &timed;
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|i| {
                            let (stats, elapsed) = timed(i);
                            (i, stats, elapsed)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    tagged.sort_by_key(|&(i, _, _)| i);
    tagged.into_iter().map(|(_, s, d)| (s, d)).collect()
}

/// Runs batches until the confidence interval on `primary` converges.
///
/// * `job` — produces the stats of batch `index`; must depend only on
///   the index (derive RNG streams from `(seed, index)`), never on
///   execution order, so parallel runs stay bit-identical to sequential
///   ones. Called from worker threads.
/// * `primary` — extracts the statistic the stopping rule watches
///   (e.g. per-batch availability).
/// * `consume` — receives `(index, stats, job wall-clock)` for every
///   **counted** batch, in strictly increasing index order, on the
///   calling thread. Merge combined totals and feed observability here.
///
/// The first round runs `min_batches`; each later round speculatively
/// adds up to `threads` batches. Convergence is checked after every
/// batch in index order, so batches dispatched past the convergence
/// point are discarded and the outcome is thread-count-invariant.
///
/// # Panics
/// Panics if `min_batches < 2`, `max_batches < min_batches`, or the
/// confidence/half-width parameters are out of range (via
/// [`BatchMeans::new`]).
pub fn converge<S, J, P, C>(
    params: &ConvergeParams,
    job: J,
    primary: P,
    mut consume: C,
) -> Convergence
where
    S: Send,
    J: Fn(u64) -> S + Sync,
    P: Fn(&S) -> f64,
    C: FnMut(u64, S, Duration),
{
    assert!(
        params.max_batches >= params.min_batches,
        "max_batches {} < min_batches {}",
        params.max_batches,
        params.min_batches
    );
    let wall_start = Instant::now();
    let threads = params.threads.max(1);
    let mut acc = BatchMeans::new(
        params.confidence,
        params.target_half_width,
        params.min_batches,
    );
    let mut trace = Vec::new();
    let mut busy = Duration::ZERO;
    let mut available = 0.0;
    let mut next_index = 0u64;
    let mut converged = false;

    while !converged && next_index < params.max_batches {
        let goal = if next_index == 0 {
            params.min_batches
        } else {
            (next_index + threads as u64).min(params.max_batches)
        };
        let indices: Vec<u64> = (next_index..goal).collect();
        next_index = goal;

        let round_start = Instant::now();
        let results = run_round(&indices, threads, &job);
        let round_wall = round_start.elapsed().as_secs_f64();
        available += threads.min(indices.len()) as f64 * round_wall;

        for (&index, (stats, elapsed)) in indices.iter().zip(results) {
            busy += elapsed;
            if converged {
                // Speculative batch past the convergence point: the
                // work happened (and is charged as busy time), but it
                // must not influence any statistic — a sequential run
                // would never have executed it.
                continue;
            }
            acc.push_batch(primary(&stats));
            consume(index, stats, elapsed);
            if let Some(ci) = acc.interval() {
                trace.push(TracePoint {
                    batches: acc.batches(),
                    mean: acc.mean(),
                    half_width: ci.half_width,
                });
            }
            converged = acc.is_converged();
        }
    }

    Convergence {
        batches: acc.batches(),
        acc,
        trace,
        busy,
        available_thread_seconds: available,
        wall: wall_start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(threads: usize) -> ConvergeParams {
        ConvergeParams {
            confidence: 0.95,
            target_half_width: 0.005,
            min_batches: 3,
            max_batches: 9,
            threads,
        }
    }

    /// A deterministic pseudo-batch: the "stats" are a function of the
    /// index alone, like real derived-seed batches.
    fn fake_batch(i: u64) -> f64 {
        0.8 + ((i * 2_654_435_761) % 1000) as f64 * 1e-5
    }

    #[test]
    fn thread_count_never_changes_results() {
        let run = |threads| {
            let mut seen = Vec::new();
            let conv = converge(
                &params(threads),
                fake_batch,
                |&x| x,
                |i, x, _| seen.push((i, x)),
            );
            (conv.batches, conv.acc.mean(), conv.trace.clone(), seen)
        };
        let seq = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), seq, "threads = {threads}");
        }
        // Consumption order is the index order.
        let indices: Vec<u64> = seq.3.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..seq.0).collect::<Vec<_>>());
    }

    #[test]
    fn zero_variance_converges_at_min_batches() {
        let conv = converge(&params(4), |_| 0.5, |&x| x, |_, _, _| {});
        assert_eq!(conv.batches, 3);
        // One trace point per counted batch once an interval exists.
        assert_eq!(conv.trace.len(), 2);
        assert_eq!(conv.trace[0].batches, 2);
        assert_eq!(conv.trace[1].batches, 3);
        assert_eq!(conv.trace[1].half_width, 0.0);
    }

    #[test]
    fn unreachable_target_stops_at_max_batches() {
        let mut p = params(4);
        p.target_half_width = 1e-12;
        let mut seen: Vec<u64> = Vec::new();
        let conv = converge(
            &p,
            |i| if i % 2 == 0 { 0.0 } else { 1.0 },
            |&x| x,
            |i, _, _| seen.push(i),
        );
        assert_eq!(conv.batches, p.max_batches);
        assert_eq!(seen, (0..p.max_batches).collect::<Vec<_>>());
        let trace_batches: Vec<u64> = conv.trace.iter().map(|t| t.batches).collect();
        assert_eq!(trace_batches, (2..=p.max_batches).collect::<Vec<_>>());
    }

    #[test]
    fn speculative_batches_past_convergence_are_discarded() {
        // fake_batch converges at 5 counted batches under the 0.005
        // target (see the sequential run). A 4-thread run dispatches a
        // second round of indices 3..7, converging after index 4 — the
        // speculative batches 5 and 6 must never reach `consume`.
        let mut seen: Vec<u64> = Vec::new();
        let conv = converge(&params(4), fake_batch, |&x| x, |i, _, _| seen.push(i));
        assert_eq!(conv.batches, 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(conv.trace.last().unwrap().batches, 5);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let conv = converge(
            &params(2),
            |i| {
                std::thread::sleep(Duration::from_millis(2));
                fake_batch(i)
            },
            |&x| x,
            |_, _, _| {},
        );
        let u = conv.utilization();
        assert!(u > 0.0, "busy work must register: {u}");
        assert!(
            u <= 1.0 + 0.01,
            "cannot exceed available thread-seconds: {u}"
        );
        assert!(conv.busy.as_secs_f64() > 0.0);
        assert!(conv.available_thread_seconds > 0.0);
        assert!(conv.wall >= Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "max_batches")]
    fn max_below_min_rejected() {
        let mut p = params(1);
        p.max_batches = 2;
        converge(&p, |_| 0.0, |&x| x, |_, _, _| {});
    }
}
