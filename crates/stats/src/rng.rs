//! Deterministic RNG helpers for the simulator.
//!
//! Every stochastic element of the simulation (access submissions, site and
//! link failures and recoveries — all Poisson, §5.2) draws exponential
//! inter-event times. We sample them by inversion from `rand`'s uniform
//! source, and derive independent per-stream seeds with SplitMix64 so that
//! batches and event streams are reproducible and statistically decoupled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step: maps a seed to a well-mixed 64-bit value.
///
/// Used to derive independent seeds for sub-streams (one per site, link,
/// and batch) from a single master seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `index`-th child seed from `master`.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut s = master ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(index.wrapping_add(1));
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// Creates a seeded [`StdRng`] from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A counter-based SplitMix64 stream: draw `k` of stream `seed` is the
/// pure function [`CounterRng::value_at`]`(seed, k)` — no hidden state
/// beyond the counter itself.
///
/// Two properties make this the hot-path generator for the shard walk
/// kernels (ChaCha12 [`StdRng`] stays the default everywhere else):
///
/// * **Cheap**: one draw is one 64-bit add, two multiplies, and three
///   xor-shifts — the SplitMix64 finalizer — versus ~12 ARX rounds per
///   ChaCha block. Draws have no sequential dependency on each other,
///   so a stripe of lanes can sample in parallel.
/// * **Positional**: a stream can be entered at any counter
///   ([`CounterRng::at`]), so batched and one-at-a-time consumers of
///   the same `(seed, counter)` contract produce bit-identical draws.
///
/// The sequence is exactly what repeated [`splitmix64`] calls starting
/// from `seed` produce (pinned by a test), so `derive_seed`-style
/// decorrelation arguments carry over unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    seed: u64,
    counter: u64,
}

impl CounterRng {
    /// Stream `seed` positioned at its first draw.
    pub fn new(seed: u64) -> Self {
        Self { seed, counter: 0 }
    }

    /// Stream `seed` positioned so the next draw is draw `counter`.
    pub fn at(seed: u64, counter: u64) -> Self {
        Self { seed, counter }
    }

    /// Number of draws consumed so far (the index of the next draw).
    pub fn position(&self) -> u64 {
        self.counter
    }

    /// Draw `counter` of stream `seed`: the SplitMix64 finalizer applied
    /// to the counter-advanced state. Stateless, so batched samplers can
    /// compute many draws of one stream without threading a borrow.
    #[inline]
    pub fn value_at(seed: u64, counter: u64) -> u64 {
        let mut z = seed.wrapping_add(counter.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draw `counter` of stream `seed` as a uniform `f64` in `[0, 1)`
    /// (top 53 bits, the same convention `rate_of`-style hashes use).
    #[inline]
    pub fn uniform_at(seed: u64, counter: u64) -> f64 {
        (Self::value_at(seed, counter) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let v = Self::value_at(self.seed, self.counter);
        self.counter += 1;
        v
    }

    /// Next uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        let v = Self::uniform_at(self.seed, self.counter);
        self.counter += 1;
        v
    }
}

/// Exponential inversion from an already-drawn uniform, parameterized by
/// the **reciprocal** rate: `-ln(1 − u) · (1/rate)`.
///
/// The hot-path form of [`exponential`]: callers validate the rate once
/// (positive, finite) when preparing a walk, precompute `1/rate`, and
/// sample gaps with no per-draw branch. Batched and sequential engines
/// sharing one `inv_rate` value get bit-identical gaps.
#[inline]
pub fn exponential_from_uniform(u: f64, inv_rate: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&u), "u must lie in [0,1)");
    debug_assert!(inv_rate > 0.0 && inv_rate.is_finite());
    -(1.0 - u).ln() * inv_rate
}

/// Samples an exponential variate with the given `rate` (mean `1/rate`) by
/// inversion: `-ln(1 − U) / rate`.
///
/// # Panics
/// Panics if `rate <= 0` or is non-finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let u: f64 = rng.random::<f64>();
    // u ∈ [0, 1); 1 − u ∈ (0, 1] so ln is finite.
    -(1.0 - u).ln() / rate
}

/// Samples true with probability `p`.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0,1]");
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 0);
        assert_eq!(a, b);
        let c = derive_seed(42, 1);
        assert_ne!(a, c);
        let d = derive_seed(43, 0);
        assert_ne!(a, d);
    }

    #[test]
    fn derived_seeds_unique_over_many_indices() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(7, i)), "collision at {i}");
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = rng_from_seed(1);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "mean {mean} vs {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_is_positive_and_finite() {
        let mut rng = rng_from_seed(2);
        for _ in 0..10_000 {
            let x = exponential(&mut rng, 0.5);
            assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = rng_from_seed(3);
        let hits = (0..100_000).filter(|_| bernoulli(&mut rng, 0.96)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.96).abs() < 0.005, "frequency {f}");
    }

    #[test]
    fn seeded_rng_reproducible() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let mut rng = rng_from_seed(0);
        exponential(&mut rng, 0.0);
    }

    #[test]
    fn counter_rng_matches_sequential_splitmix() {
        let seed = 0xDEAD_BEEF_u64;
        let mut state = seed;
        let mut rng = CounterRng::new(seed);
        for k in 0..1000u64 {
            let sequential = splitmix64(&mut state);
            assert_eq!(CounterRng::value_at(seed, k), sequential);
            assert_eq!(rng.next_u64(), sequential);
        }
        assert_eq!(rng.position(), 1000);
    }

    #[test]
    fn counter_rng_resumes_at_any_position() {
        let mut a = CounterRng::new(7);
        for _ in 0..17 {
            a.next_f64();
        }
        let mut b = CounterRng::at(7, a.position());
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_f64().to_bits(), b.next_f64().to_bits());
    }

    #[test]
    fn counter_rng_uniforms_are_in_unit_interval_with_half_mean() {
        let mut rng = CounterRng::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn counter_streams_decorrelate_across_seeds() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..100u64 {
            for k in 0..100u64 {
                assert!(
                    seen.insert(CounterRng::value_at(derive_seed(11, seed), k)),
                    "collision at seed {seed} draw {k}"
                );
            }
        }
    }

    #[test]
    fn exponential_from_uniform_matches_inversion_shape() {
        // Same inversion formula as `exponential`, up to the
        // multiply-by-reciprocal vs divide difference the hot path
        // accepts; the distribution must still have mean 1/rate.
        let mut rng = CounterRng::new(5);
        let rate = 2.5;
        let inv = 1.0 / rate;
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| exponential_from_uniform(rng.next_f64(), inv))
            .sum::<f64>()
            / n as f64;
        assert!((mean - inv).abs() < 0.01, "mean {mean} vs {inv}");
    }
}
