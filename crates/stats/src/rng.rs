//! Deterministic RNG helpers for the simulator.
//!
//! Every stochastic element of the simulation (access submissions, site and
//! link failures and recoveries — all Poisson, §5.2) draws exponential
//! inter-event times. We sample them by inversion from `rand`'s uniform
//! source, and derive independent per-stream seeds with SplitMix64 so that
//! batches and event streams are reproducible and statistically decoupled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step: maps a seed to a well-mixed 64-bit value.
///
/// Used to derive independent seeds for sub-streams (one per site, link,
/// and batch) from a single master seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `index`-th child seed from `master`.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut s = master ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(index.wrapping_add(1));
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// Creates a seeded [`StdRng`] from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples an exponential variate with the given `rate` (mean `1/rate`) by
/// inversion: `-ln(1 − U) / rate`.
///
/// # Panics
/// Panics if `rate <= 0` or is non-finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let u: f64 = rng.random::<f64>();
    // u ∈ [0, 1); 1 − u ∈ (0, 1] so ln is finite.
    -(1.0 - u).ln() / rate
}

/// Samples true with probability `p`.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0,1]");
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 0);
        assert_eq!(a, b);
        let c = derive_seed(42, 1);
        assert_ne!(a, c);
        let d = derive_seed(43, 0);
        assert_ne!(a, d);
    }

    #[test]
    fn derived_seeds_unique_over_many_indices() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(7, i)), "collision at {i}");
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = rng_from_seed(1);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "mean {mean} vs {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_is_positive_and_finite() {
        let mut rng = rng_from_seed(2);
        for _ in 0..10_000 {
            let x = exponential(&mut rng, 0.5);
            assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = rng_from_seed(3);
        let hits = (0..100_000).filter(|_| bernoulli(&mut rng, 0.96)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.96).abs() < 0.005, "frequency {f}");
    }

    #[test]
    fn seeded_rng_reproducible() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let mut rng = rng_from_seed(0);
        exponential(&mut rng, 0.0);
    }
}
