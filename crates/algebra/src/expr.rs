//! Quorum expressions: the `Node`/`And`/`Or`/`Choose` algebra.
//!
//! A quorum expression is a monotone boolean formula over site
//! identifiers. A site-set `X` *satisfies* an expression when
//!
//! * `Node(s)` — `s ∈ X`;
//! * `And(es)` — `X` satisfies every subexpression;
//! * `Or(es)` — `X` satisfies at least one subexpression;
//! * `Choose(k, es)` — `X` satisfies at least `k` subexpressions.
//!
//! The satisfying sets of an expression form an *access structure*; its
//! minimal elements are the expression's **quorums**. This is the
//! quoracle formalism (PAPERS.md, "Read-Write Quorum Systems Made
//! Practical"): every coterie is expressible, and — unlike the vote
//! vectors the paper optimizes — so are grids, trees, and hierarchies
//! that no weighted-voting assignment can realize.
//!
//! Two facts carry the whole module:
//!
//! 1. **Duality.** `dual` swaps `And`↔`Or` and maps `Choose(k, es)` to
//!    `Choose(|es|−k+1, es)`. A set satisfies `dual(e)` exactly when its
//!    complement fails `e` (for `Choose`, fewer than `k` of `es` can be
//!    satisfied without it when `|es|−k+1` are satisfied within it, and
//!    this composes inductively). Hence the dual's quorums are the
//!    minimal *transversals* of `e`'s quorums: pairing an expression
//!    with its dual yields read/write families that always intersect.
//!    `dual` is an involution on the syntax tree — `dual(dual(e)) ≡ e`
//!    structurally, not just semantically.
//! 2. **Weighted thresholds are `Choose` with repetition.** A vote
//!    assignment `v` with quorum `q` is `Choose(q, leaves)` where site
//!    `i` contributes `v_i` copies of `Node(i)`: a set satisfies `≥ q`
//!    leaves exactly when its votes total `≥ q`. The conversion is
//!    therefore *exact*, including ties at exactly `q` votes, and
//!    `dual` maps threshold `q` to threshold `T − q + 1` — precisely
//!    the tight §2.1 condition-1 companion quorum.

use quorum_core::VoteAssignment;
use std::fmt;

/// Maximum universe size for quorum *enumeration* (masks are `u64`;
/// matching `quorum_core::coterie`'s exponential-routine cap keeps the
/// two layers cross-checkable). Expressions themselves may mention
/// more sites — evaluation and duality never enumerate.
pub const MAX_ENUM_SITES: usize = 20;

/// Cap on intermediate quorum-family size during structural
/// enumeration; exceeding it indicates the caller should switch to the
/// heuristic (non-enumerating) strategy path.
const MAX_FAMILY: usize = 1 << 18;

/// A monotone quorum expression over site identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A single site.
    Node(usize),
    /// Every subexpression must be satisfied.
    And(Vec<Expr>),
    /// At least one subexpression must be satisfied.
    Or(Vec<Expr>),
    /// At least `k` subexpressions must be satisfied
    /// (`And` ≡ `Choose(len)`, `Or` ≡ `Choose(1)`).
    Choose(usize, Vec<Expr>),
}

/// Removes dominated masks, returning the minimal family sorted by
/// `(popcount, value)` — a canonical, deterministic order.
pub(crate) fn minimalize(mut masks: Vec<u64>) -> Vec<u64> {
    masks.sort_unstable_by_key(|&m| (m.count_ones(), m));
    masks.dedup();
    let mut minimal: Vec<u64> = Vec::new();
    for m in masks {
        // Sorted by popcount: any subset of `m` already kept is smaller.
        if !minimal.iter().any(|&q| q & !m == 0) {
            minimal.push(m);
        }
    }
    minimal
}

/// Unions every pair from two minimal families (the `And` combiner),
/// then re-minimalizes.
fn cross_union(a: &[u64], b: &[u64]) -> Vec<u64> {
    assert!(
        a.len().saturating_mul(b.len()) <= MAX_FAMILY,
        "quorum enumeration exceeded {MAX_FAMILY} intermediate sets; \
         use the heuristic strategy path for systems this large"
    );
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &x in a {
        for &y in b {
            out.push(x | y);
        }
    }
    minimalize(out)
}

impl Expr {
    /// `And` of the given subexpressions.
    ///
    /// # Panics
    /// Panics if `es` is empty.
    pub fn and(es: Vec<Expr>) -> Expr {
        assert!(!es.is_empty(), "And needs at least one subexpression");
        Expr::And(es)
    }

    /// `Or` of the given subexpressions.
    ///
    /// # Panics
    /// Panics if `es` is empty.
    pub fn or(es: Vec<Expr>) -> Expr {
        assert!(!es.is_empty(), "Or needs at least one subexpression");
        Expr::Or(es)
    }

    /// `Choose(k, es)`: at least `k` of the subexpressions.
    ///
    /// # Panics
    /// Panics unless `1 <= k <= es.len()`.
    pub fn choose(k: usize, es: Vec<Expr>) -> Expr {
        assert!(
            k >= 1 && k <= es.len(),
            "Choose needs 1 <= k <= {}, got {k}",
            es.len()
        );
        Expr::Choose(k, es)
    }

    /// One `Node` per site id in `ids`.
    pub fn nodes(ids: impl IntoIterator<Item = usize>) -> Vec<Expr> {
        ids.into_iter().map(Expr::Node).collect()
    }

    /// Simple majority over sites `offset..offset+n`:
    /// `Choose(⌊n/2⌋+1, nodes)`.
    pub fn majority(n: usize, offset: usize) -> Expr {
        assert!(n >= 1, "majority needs at least one site");
        Expr::choose(n / 2 + 1, Expr::nodes(offset..offset + n))
    }

    /// The exact expression-tree image of a weighted vote threshold:
    /// `Choose(quorum, leaves)` where site `i` contributes
    /// `votes.votes_of(i)` copies of `Node(i)`. A set satisfies the
    /// expression iff its vote total reaches `quorum` — the conversion
    /// is exact for every weighted assignment, including ties at
    /// exactly `quorum` votes (see module docs).
    ///
    /// # Panics
    /// Panics if `quorum` is zero or exceeds the total votes.
    pub fn weighted_threshold(votes: &VoteAssignment, quorum: u64) -> Expr {
        assert!(
            quorum >= 1 && quorum <= votes.total(),
            "threshold {quorum} outside 1..={}",
            votes.total()
        );
        let mut leaves = Vec::with_capacity(votes.total() as usize);
        for site in 0..votes.num_sites() {
            for _ in 0..votes.votes_of(site) {
                leaves.push(Expr::Node(site));
            }
        }
        Expr::choose(quorum as usize, leaves)
    }

    /// Does the site-set `mask` (bit `s` = site `s` present) satisfy
    /// this expression?
    pub fn is_quorum(&self, mask: u64) -> bool {
        match self {
            Expr::Node(s) => mask >> s & 1 == 1,
            Expr::And(es) => es.iter().all(|e| e.is_quorum(mask)),
            Expr::Or(es) => es.iter().any(|e| e.is_quorum(mask)),
            Expr::Choose(k, es) => {
                let mut satisfied = 0usize;
                for e in es {
                    if e.is_quorum(mask) {
                        satisfied += 1;
                        if satisfied >= *k {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// The dual expression (see module docs). An involution:
    /// `e.dual().dual() == e` structurally.
    pub fn dual(&self) -> Expr {
        match self {
            Expr::Node(s) => Expr::Node(*s),
            Expr::And(es) => Expr::Or(es.iter().map(Expr::dual).collect()),
            Expr::Or(es) => Expr::And(es.iter().map(Expr::dual).collect()),
            Expr::Choose(k, es) => {
                Expr::Choose(es.len() - k + 1, es.iter().map(Expr::dual).collect())
            }
        }
    }

    /// Bitmask of every site mentioned by the expression.
    pub fn support(&self) -> u64 {
        match self {
            Expr::Node(s) => {
                assert!(*s < 64, "site {s} exceeds the u64 mask width");
                1u64 << s
            }
            Expr::And(es) | Expr::Or(es) | Expr::Choose(_, es) => {
                es.iter().fold(0, |acc, e| acc | e.support())
            }
        }
    }

    /// Largest site id mentioned, or `None` for an impossible empty
    /// expression (constructors forbid those).
    pub fn max_site(&self) -> Option<usize> {
        let support = self.support();
        if support == 0 {
            None
        } else {
            Some(63 - support.leading_zeros() as usize)
        }
    }

    /// Enumerates the minimal quorums by structural recursion:
    /// `Or` unions families, `And` cross-unions them, `Choose(k)`
    /// cross-unions every `k`-subset of subexpression families; each
    /// step re-minimalizes. Returns masks sorted by `(popcount, value)`.
    ///
    /// # Panics
    /// Panics if an intermediate family exceeds the enumeration cap —
    /// systems that large must use the non-enumerating heuristic path.
    pub fn min_quorums(&self) -> Vec<u64> {
        match self {
            Expr::Node(s) => {
                assert!(*s < 64, "site {s} exceeds the u64 mask width");
                vec![1u64 << s]
            }
            Expr::Or(es) => {
                let mut all = Vec::new();
                for e in es {
                    all.extend(e.min_quorums());
                    assert!(
                        all.len() <= MAX_FAMILY,
                        "quorum enumeration exceeded {MAX_FAMILY} sets"
                    );
                }
                minimalize(all)
            }
            Expr::And(es) => {
                let mut acc = vec![0u64];
                for e in es {
                    acc = cross_union(&acc, &e.min_quorums());
                }
                acc
            }
            Expr::Choose(k, es) => {
                let families: Vec<Vec<u64>> = es.iter().map(Expr::min_quorums).collect();
                let mut all = Vec::new();
                let mut chosen = Vec::with_capacity(*k);
                k_subsets(&families, *k, 0, &mut chosen, &mut all);
                minimalize(all)
            }
        }
    }

    /// Capped structural enumeration — the heuristic path at scale.
    ///
    /// Identical recursion to [`Expr::min_quorums`], but every
    /// intermediate family is truncated to its `cap` canonically
    /// smallest sets after minimalization, and `Choose` expands
    /// deterministic sliding windows of `k` subexpressions instead of
    /// all `C(n, k)` subsets. Every returned mask is a genuine
    /// satisfying set (a union of satisfying sets of subexpressions),
    /// so a strategy over them yields an *achievable* load — but the
    /// family may omit minimal quorums, so it must never substitute for
    /// [`Expr::min_quorums`] in safety certification.
    pub fn quorums_capped(&self, cap: usize) -> Vec<u64> {
        assert!(cap >= 1, "cap must be positive");
        let trunc = |mut v: Vec<u64>| {
            v.truncate(cap);
            v
        };
        let combine = |acc: Vec<u64>, fam: &[u64]| {
            let mut out = Vec::with_capacity(acc.len() * fam.len());
            for &x in &acc {
                for &y in fam {
                    out.push(x | y);
                }
            }
            trunc(minimalize(out))
        };
        match self {
            Expr::Node(s) => {
                assert!(*s < 64, "site {s} exceeds the u64 mask width");
                vec![1u64 << s]
            }
            Expr::Or(es) => {
                let mut all = Vec::new();
                for e in es {
                    all.extend(e.quorums_capped(cap));
                }
                trunc(minimalize(all))
            }
            Expr::And(es) => {
                let mut acc = vec![0u64];
                for e in es {
                    acc = combine(acc, &e.quorums_capped(cap));
                }
                acc
            }
            Expr::Choose(k, es) => {
                let mut all = Vec::new();
                for start in 0..=es.len() - k {
                    let mut acc = vec![0u64];
                    for e in &es[start..start + k] {
                        acc = combine(acc, &e.quorums_capped(cap));
                    }
                    all.extend(acc);
                    if all.len() >= cap.saturating_mul(4) {
                        break;
                    }
                }
                trunc(minimalize(all))
            }
        }
    }

    /// Brute-force reference enumeration: scan every subset of `0..n`
    /// and keep the minimal satisfying ones. Exponential in `n`; the
    /// property-test oracle [`Expr::min_quorums`] is pinned against.
    ///
    /// # Panics
    /// Panics if `n > MAX_ENUM_SITES`.
    pub fn min_quorums_powerset(&self, n: usize) -> Vec<u64> {
        assert!(
            n <= MAX_ENUM_SITES,
            "powerset enumeration capped at {MAX_ENUM_SITES} sites"
        );
        let mut satisfying = Vec::new();
        for mask in 1u64..(1 << n) {
            if self.is_quorum(mask) {
                satisfying.push(mask);
            }
        }
        minimalize(satisfying)
    }
}

/// Recursively expands every `k`-subset of `families` through the
/// `And` combiner, appending each subset's cross-unions to `out`.
fn k_subsets(
    families: &[Vec<u64>],
    k: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    out: &mut Vec<u64>,
) {
    if k == 0 {
        let mut acc = vec![0u64];
        for &idx in chosen.iter() {
            acc = cross_union(&acc, &families[idx]);
        }
        out.extend(acc);
        assert!(
            out.len() <= MAX_FAMILY,
            "quorum enumeration exceeded {MAX_FAMILY} sets"
        );
        return;
    }
    // Not enough families left to fill the subset: prune.
    for idx in start..=families.len().saturating_sub(k) {
        chosen.push(idx);
        k_subsets(families, k - 1, idx + 1, chosen, out);
        chosen.pop();
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(f: &mut fmt::Formatter<'_>, es: &[Expr], sep: &str) -> fmt::Result {
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    write!(f, "{sep}")?;
                }
                write!(f, "{e}")?;
            }
            Ok(())
        }
        match self {
            Expr::Node(s) => write!(f, "s{s}"),
            Expr::And(es) => {
                write!(f, "(")?;
                join(f, es, " * ")?;
                write!(f, ")")
            }
            Expr::Or(es) => {
                write!(f, "(")?;
                join(f, es, " + ")?;
                write!(f, ")")
            }
            Expr::Choose(k, es) => {
                write!(f, "choose{k}(")?;
                join(f, es, ", ")?;
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masks(sets: &[&[usize]]) -> Vec<u64> {
        minimalize(
            sets.iter()
                .map(|s| s.iter().fold(0u64, |m, &b| m | 1 << b))
                .collect(),
        )
    }

    #[test]
    fn node_and_or_quorums() {
        let e = Expr::or(vec![
            Expr::and(Expr::nodes([0, 1])),
            Expr::and(Expr::nodes([2, 3])),
        ]);
        assert_eq!(e.min_quorums(), masks(&[&[0, 1], &[2, 3]]));
        assert!(e.is_quorum(0b0011));
        assert!(e.is_quorum(0b1100));
        assert!(!e.is_quorum(0b0101));
    }

    #[test]
    fn choose_majority_of_three() {
        let e = Expr::majority(3, 0);
        assert_eq!(e.min_quorums(), masks(&[&[0, 1], &[0, 2], &[1, 2]]));
    }

    #[test]
    fn and_absorbs_redundant_or() {
        // (s0 + s1) * s0 ≡ s0: minimalization removes the dominated set.
        let e = Expr::and(vec![Expr::or(Expr::nodes([0, 1])), Expr::Node(0)]);
        assert_eq!(e.min_quorums(), vec![1]);
    }

    #[test]
    fn dual_is_structural_involution() {
        let e = Expr::choose(
            2,
            vec![
                Expr::majority(3, 0),
                Expr::and(Expr::nodes([3, 4])),
                Expr::or(Expr::nodes([5, 6])),
            ],
        );
        assert_eq!(e.dual().dual(), e);
        // And the dual differs from the original (not self-dual here).
        assert_ne!(e.dual(), e);
    }

    #[test]
    fn majority_odd_is_self_dual() {
        let e = Expr::majority(5, 0);
        assert_eq!(e.dual(), e, "odd majority: Choose(3,5) ↔ Choose(3,5)");
    }

    #[test]
    fn dual_quorums_are_transversals() {
        // Every dual quorum must intersect every primal quorum, and be
        // minimal with that property (checked against the powerset).
        let e = Expr::or(vec![
            Expr::and(Expr::nodes([0, 1, 2])),
            Expr::and(Expr::nodes([2, 3])),
            Expr::and(Expr::nodes([0, 3, 4])),
        ]);
        let primal = e.min_quorums();
        let dual = e.dual().min_quorums();
        for &d in &dual {
            for &p in &primal {
                assert_ne!(d & p, 0, "dual quorum misses a primal quorum");
            }
        }
        // Reference: minimal transversals computed by powerset scan.
        let n = 5;
        let mut transversals = Vec::new();
        for mask in 1u64..(1 << n) {
            if primal.iter().all(|&p| p & mask != 0) {
                transversals.push(mask);
            }
        }
        assert_eq!(dual, minimalize(transversals));
    }

    #[test]
    fn weighted_threshold_matches_vote_counting() {
        let votes = VoteAssignment::weighted(vec![3, 1, 1, 2]);
        let e = Expr::weighted_threshold(&votes, 4);
        for mask in 0u64..16 {
            let sum: u64 = (0..4)
                .filter(|&s| mask >> s & 1 == 1)
                .map(|s| votes.votes_of(s))
                .sum();
            assert_eq!(e.is_quorum(mask), sum >= 4, "mask {mask:#b}");
        }
        // Tie at exactly the threshold: {0,1} holds 4 votes — a quorum.
        assert!(e.is_quorum(0b0011));
        // One vote short: {1,3} holds 3.
        assert!(!e.is_quorum(0b1010));
    }

    #[test]
    fn weighted_threshold_dual_is_complementary_threshold() {
        // dual(Choose(q, T leaves)) = Choose(T-q+1, ...): the tight
        // condition-1 companion. Check semantically on all subsets.
        let votes = VoteAssignment::weighted(vec![2, 2, 1, 1, 1]);
        let q = 3u64;
        let dual = Expr::weighted_threshold(&votes, q).dual();
        let companion = Expr::weighted_threshold(&votes, votes.total() - q + 1);
        assert_eq!(dual, companion);
    }

    #[test]
    fn structural_matches_powerset_on_examples() {
        let exprs = [
            Expr::majority(7, 0),
            Expr::weighted_threshold(&VoteAssignment::weighted(vec![2, 1, 1, 1]), 3),
            Expr::choose(
                2,
                vec![Expr::majority(3, 0), Expr::majority(3, 3), Expr::Node(6)],
            ),
            Expr::and(vec![
                Expr::or(Expr::nodes([0, 1, 2])),
                Expr::or(Expr::nodes([3, 4])),
                Expr::or(Expr::nodes([5])),
            ]),
        ];
        for e in &exprs {
            let n = e.max_site().expect("non-empty") + 1;
            assert_eq!(e.min_quorums(), e.min_quorums_powerset(n), "{e}");
        }
    }

    #[test]
    fn support_and_max_site() {
        let e = Expr::or(vec![Expr::Node(2), Expr::and(Expr::nodes([5, 9]))]);
        assert_eq!(e.support(), 1 << 2 | 1 << 5 | 1 << 9);
        assert_eq!(e.max_site(), Some(9));
    }

    #[test]
    fn display_round_trips_shape() {
        let e = Expr::choose(2, vec![Expr::Node(0), Expr::Node(1), Expr::Node(2)]);
        assert_eq!(e.to_string(), "choose2(s0, s1, s2)");
        let f = Expr::and(vec![Expr::or(Expr::nodes([0, 1])), Expr::Node(2)]);
        assert_eq!(f.to_string(), "((s0 + s1) * s2)");
    }

    #[test]
    #[should_panic(expected = "Choose needs")]
    fn choose_k_zero_rejected() {
        Expr::choose(0, Expr::nodes([0, 1]));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_and_rejected() {
        Expr::and(vec![]);
    }
}
