//! Plugging general quorum systems into the simulation machinery.
//!
//! [`AlgebraProtocol`] adapts a [`QuorumSystem`] to the
//! `ConsistencyProtocol` trait, so the replica simulator's
//! `ComponentView`/`DeltaConnectivity` grant path drives arbitrary
//! coteries exactly as it drives vote thresholds: the simulator hands
//! the protocol the submitting site's component membership, and the
//! decision is set containment against the minimal-quorum families.
//! [`view_availability`] is the matching instantaneous evaluator — the
//! probability-free "what fraction of submitters could proceed right
//! now" question asked directly of a partition snapshot.

use crate::system::QuorumSystem;
use quorum_core::protocol::{Access, ConsistencyProtocol, Decision};
use quorum_core::QuorumSpec;
use quorum_graph::ComponentView;

/// `ConsistencyProtocol` driven by a general quorum system instead of
/// vote thresholds. Decisions ignore the vote total and use component
/// *membership*: an access is granted iff the submitter's component
/// contains some quorum of the relevant family.
#[derive(Debug, Clone)]
pub struct AlgebraProtocol {
    system: QuorumSystem,
}

impl AlgebraProtocol {
    /// Wraps a quorum system. Callers should [`QuorumSystem::certify`]
    /// first; the protocol trusts the families it is given.
    pub fn new(system: QuorumSystem) -> Self {
        Self { system }
    }

    /// The underlying system.
    pub fn system(&self) -> &QuorumSystem {
        &self.system
    }

    fn member_mask(&self, members: &[usize]) -> u64 {
        let mut mask = 0u64;
        for &s in members {
            assert!(s < self.system.n(), "site {s} out of range");
            mask |= 1 << s;
        }
        mask
    }

    fn granted(&self, kind: Access, members: &[usize]) -> bool {
        let mask = self.member_mask(members);
        match kind {
            Access::Read => self.system.read_available(mask),
            Access::Write => self.system.write_available(mask),
        }
    }
}

impl ConsistencyProtocol for AlgebraProtocol {
    fn decide(&mut self, kind: Access, members: &[usize], _votes: u64) -> Decision {
        if self.granted(kind, members) {
            Decision::Granted
        } else {
            Decision::Denied
        }
    }

    fn can_grant(&self, kind: Access, members: &[usize], _votes: u64) -> bool {
        self.granted(kind, members)
    }

    fn effective_spec(&self, _members: &[usize]) -> QuorumSpec {
        // General systems have no canonical vote threshold; report the
        // loosest consistent pair for observability, matching the
        // `CoterieProtocol` convention.
        QuorumSpec::majority(self.system.n() as u64)
    }

    fn total_votes(&self) -> u64 {
        self.system.n() as u64
    }
}

/// Instantaneous mixed availability of `system` under a concrete
/// partition: the fraction of `submitters` (a site bitmask) that are up
/// and whose component contains a read quorum (weight `alpha`) or a
/// write quorum (weight `1 − alpha`). This is the ACC integrand — the
/// DES computes its time average over the failure/repair process.
///
/// # Panics
/// Panics if `submitters` is empty, `alpha` is outside `[0, 1]`, or
/// the view covers more than 64 sites.
pub fn view_availability(
    system: &QuorumSystem,
    view: &ComponentView,
    alpha: f64,
    submitters: u64,
) -> f64 {
    assert!(submitters != 0, "need at least one submitting site");
    assert!((0.0..=1.0).contains(&alpha), "α must lie in [0,1]");
    let mut granted = 0.0;
    let mut count = 0u32;
    for s in 0..64usize {
        if submitters >> s & 1 == 0 {
            continue;
        }
        count += 1;
        if view.component_of(s) == ComponentView::DOWN {
            continue;
        }
        let mask = view.member_mask(s);
        if system.read_available(mask) {
            granted += alpha;
        }
        if system.write_available(mask) {
            granted += 1.0 - alpha;
        }
    }
    granted / f64::from(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum_graph::{NetworkState, Topology};

    fn view_with_down(topo: &Topology, down: &[usize]) -> ComponentView {
        let mut state = NetworkState::all_up(topo);
        for &s in down {
            state.set_site(s, false);
        }
        ComponentView::compute(topo, &state, &vec![1; topo.num_sites()])
    }

    #[test]
    fn protocol_decides_by_membership() {
        let mut p = AlgebraProtocol::new(QuorumSystem::majority(5, 0));
        assert_eq!(p.decide(Access::Read, &[0, 1, 2], 0), Decision::Granted);
        assert_eq!(p.decide(Access::Write, &[0, 1], 99), Decision::Denied);
        assert!(p.can_grant(Access::Write, &[2, 3, 4], 0));
        assert!(!p.can_grant(Access::Read, &[], 0));
        assert_eq!(p.total_votes(), 5);
        assert_eq!(p.effective_spec(&[]), QuorumSpec::majority(5));
    }

    #[test]
    fn grid_protocol_on_fully_connected_view() {
        let topo = Topology::fully_connected(9);
        let view = view_with_down(&topo, &[]);
        let sys = QuorumSystem::grid(3, 3, 0);
        let a = view_availability(&sys, &view, 0.5, (1 << 9) - 1);
        assert!((a - 1.0).abs() < 1e-12, "all up: fully available");
    }

    #[test]
    fn column_failure_blocks_grid_reads_not_writes() {
        // Down column 0 (sites 0, 3, 6) on a full graph: reads need one
        // site *per* column, so they fail; writes can use full column 1
        // plus covers from columns 0... no — covers need column 0 too.
        // Writes also need a site in every column; both fail. Use a
        // single down site instead: reads and writes both survive.
        let topo = Topology::fully_connected(9);
        let sys = QuorumSystem::grid(3, 3, 0);
        let all = (1u64 << 9) - 1;
        let one_down = view_with_down(&topo, &[4]);
        let a = view_availability(&sys, &one_down, 0.5, all);
        // 8 of 9 submitters are up and fully served.
        assert!((a - 8.0 / 9.0).abs() < 1e-12, "got {a}");
        let col_down = view_with_down(&topo, &[0, 3, 6]);
        let b = view_availability(&sys, &col_down, 0.5, all);
        assert!(b.abs() < 1e-12, "whole column down blocks everything");
    }

    #[test]
    fn partitioned_view_grants_only_in_quorum_side() {
        // A 9-ring cut into {0..4} and {5..8}: the majority side holds
        // a quorum, the minority side does not.
        let topo = Topology::ring(9);
        let mut state = NetworkState::all_up(&topo);
        // Cut links (4,5) and (8,0).
        for (i, (a, b)) in topo.links().iter().enumerate() {
            if (*a == 4 && *b == 5) || (*a == 8 && *b == 0) || (*a == 0 && *b == 8) {
                state.set_link(i, false);
            }
        }
        let view = ComponentView::compute(&topo, &state, &[1; 9]);
        let sys = QuorumSystem::majority(9, 0);
        let mut p = AlgebraProtocol::new(sys);
        let majority_side: Vec<usize> = view.members_of(0).collect();
        let minority_side: Vec<usize> = view.members_of(5).collect();
        assert_eq!(majority_side, (0..5).collect::<Vec<_>>());
        assert_eq!(minority_side, (5..9).collect::<Vec<_>>());
        assert!(p.decide(Access::Write, &majority_side, 0).is_granted());
        assert!(!p.decide(Access::Write, &minority_side, 0).is_granted());
    }

    #[test]
    fn submitter_mask_restricts_the_denominator() {
        // Bus-style: site 0 is the medium and never submits. With the
        // medium down the remaining sites are isolated; with it up they
        // form one component.
        let topo = Topology::star(5); // hub 0, leaves 1..=4
        let sys = QuorumSystem::majority(4, 1);
        let leaves: u64 = 0b11110;
        let up = view_with_down(&topo, &[]);
        let a = view_availability(&sys, &up, 0.5, leaves);
        assert!((a - 1.0).abs() < 1e-12);
        let hub_down = view_with_down(&topo, &[0]);
        let b = view_availability(&sys, &hub_down, 0.5, leaves);
        assert!(b.abs() < 1e-12, "isolated leaves can't reach a quorum");
    }
}
