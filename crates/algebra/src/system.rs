//! Read/write quorum systems assembled from expressions, with
//! intersection certificates and exact f-resilience.
//!
//! A [`QuorumSystem`] pairs a read expression with a write expression
//! and materializes both minimal-quorum families. Safety is *checked*,
//! not assumed: [`QuorumSystem::certify`] verifies that every read
//! quorum meets every write quorum (the set-theoretic form of §2.1
//! condition 1) and that write quorums pairwise intersect (condition
//! 2), returning an explicit [`IntersectionCertificate`] — the
//! FBAS-complexity literature's argument for carrying a checkable
//! witness instead of trusting a construction.

use crate::expr::Expr;
use quorum_core::{QuorumSpec, VoteAssignment};
use std::fmt;

/// A named read/write quorum system over sites `0..n`.
///
/// `reads` and `writes` hold the minimal quorums as `u64` site masks in
/// the canonical `(popcount, value)` order [`Expr::min_quorums`]
/// produces — deterministic by construction, so downstream strategy
/// optimization and manifests are byte-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumSystem {
    name: String,
    n: usize,
    read_expr: Expr,
    write_expr: Expr,
    reads: Vec<u64>,
    writes: Vec<u64>,
}

/// Which intersection requirement a certification found violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertFailure {
    /// A read quorum and a write quorum are disjoint (condition 1).
    ReadWrite(u64, u64),
    /// Two write quorums are disjoint (condition 2).
    WriteWrite(u64, u64),
}

impl fmt::Display for CertFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertFailure::ReadWrite(r, w) => {
                write!(f, "read quorum {r:#b} misses write quorum {w:#b}")
            }
            CertFailure::WriteWrite(a, b) => {
                write!(f, "write quorums {a:#b} and {b:#b} are disjoint")
            }
        }
    }
}

/// The result of exhaustively checking a system's intersection
/// properties: how many quorum pairs were examined, and the first
/// violation if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntersectionCertificate {
    /// Quorum pairs examined (read×write plus write×write).
    pub pairs_checked: u64,
    /// First violated pair, if the system is unsafe.
    pub failure: Option<CertFailure>,
}

impl IntersectionCertificate {
    /// True when every required intersection holds.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

impl QuorumSystem {
    /// Builds a system from explicit read and write expressions over
    /// sites `0..n`, enumerating both minimal-quorum families.
    ///
    /// The families are *not* implicitly certified — call
    /// [`Self::certify`]; unsafe systems are representable on purpose
    /// so the checker has something to reject.
    ///
    /// # Panics
    /// Panics if either expression mentions a site `>= n`, or if
    /// enumeration exceeds the family cap (see [`Expr::min_quorums`]).
    pub fn from_exprs(name: &str, n: usize, read_expr: Expr, write_expr: Expr) -> Self {
        let support = read_expr.support() | write_expr.support();
        let max = 63 - support.leading_zeros() as usize;
        assert!(max < n, "expression mentions site {max} but n = {n}");
        let reads = read_expr.min_quorums();
        let writes = write_expr.min_quorums();
        Self {
            name: name.to_string(),
            n,
            read_expr,
            write_expr,
            reads,
            writes,
        }
    }

    /// Builds a system whose write expression is the dual of the read
    /// expression: writes are then minimal transversals of the reads,
    /// so condition 1 (read/write intersection) holds by construction.
    /// Condition 2 (write/write) does *not* follow automatically —
    /// certify before use.
    pub fn from_read_expr(name: &str, n: usize, read_expr: Expr) -> Self {
        let write_expr = read_expr.dual();
        Self::from_exprs(name, n, read_expr, write_expr)
    }

    /// Simple majority over sites `offset..offset+count` (read and
    /// write quorums both `⌊count/2⌋+1`-subsets; self-dual for odd
    /// `count`).
    pub fn majority(count: usize, offset: usize) -> Self {
        let e = Expr::majority(count, offset);
        Self::from_exprs(
            &format!("majority-{count}"),
            offset + count,
            e.clone(),
            e.dual(),
        )
    }

    /// The `rows × cols` grid system on sites `offset + r*cols + c`.
    ///
    /// Reads collect one site from every column; writes take one full
    /// column plus one site from each other column, so two writes that
    /// pick different full columns still meet (each write's cover hits
    /// the other's full column), and every read crosses every write's
    /// full column. Note the *naive* dual of the read expression — "one
    /// full column" — is not a valid write family: two distinct full
    /// columns are disjoint, which [`Self::certify`] duly rejects.
    pub fn grid(rows: usize, cols: usize, offset: usize) -> Self {
        assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
        let col = |c: usize| (0..rows).map(move |r| offset + r * cols + c);
        let read = Expr::and((0..cols).map(|c| Expr::or(Expr::nodes(col(c)))).collect());
        let write = Expr::or(
            (0..cols)
                .map(|full| {
                    let mut parts: Vec<Expr> = Expr::nodes(col(full));
                    parts.extend(
                        (0..cols)
                            .filter(|&c| c != full)
                            .map(|c| Expr::or(Expr::nodes(col(c)))),
                    );
                    Expr::and(parts)
                })
                .collect(),
        );
        Self::from_exprs(
            &format!("grid-{rows}x{cols}"),
            offset + rows * cols,
            read,
            write,
        )
    }

    /// A two-level hierarchical system: `groups` groups of
    /// `group_size` consecutive sites starting at `offset`; a quorum
    /// needs `k_members` members in each of `k_groups` groups (reads),
    /// with writes the dual. With `2·k_groups > groups` and
    /// `2·k_members > group_size` the system is self-dual (recursive
    /// majority), e.g. `hierarchical(3, 3, 2, 2, _)` on nine sites.
    pub fn hierarchical(
        groups: usize,
        group_size: usize,
        k_groups: usize,
        k_members: usize,
        offset: usize,
    ) -> Self {
        let read = Expr::choose(
            k_groups,
            (0..groups)
                .map(|g| {
                    let base = offset + g * group_size;
                    Expr::choose(k_members, Expr::nodes(base..base + group_size))
                })
                .collect(),
        );
        Self::from_read_expr(
            &format!("hier-{groups}x{group_size}-{k_groups}/{k_members}"),
            offset + groups * group_size,
            read,
        )
    }

    /// The system induced by a vote assignment and quorum pair: reads
    /// are the minimal site-sets reaching `q_r` votes, writes those
    /// reaching `q_w` — via the exact [`Expr::weighted_threshold`]
    /// conversion, so ties at exactly the threshold are quorums and the
    /// round-trip to threshold semantics is lossless (including
    /// zero-vote sites, which simply contribute no leaves).
    ///
    /// # Panics
    /// Panics if the spec's total differs from the assignment's.
    pub fn from_spec(name: &str, votes: &VoteAssignment, spec: QuorumSpec) -> Self {
        assert_eq!(votes.total(), spec.total(), "vote/spec total mismatch");
        Self::from_exprs(
            name,
            votes.num_sites(),
            Expr::weighted_threshold(votes, spec.q_r()),
            Expr::weighted_threshold(votes, spec.q_w()),
        )
    }

    /// System name (used in manifests and tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Universe size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The read expression.
    pub fn read_expr(&self) -> &Expr {
        &self.read_expr
    }

    /// The write expression.
    pub fn write_expr(&self) -> &Expr {
        &self.write_expr
    }

    /// Minimal read quorums as site masks, canonically ordered.
    pub fn reads(&self) -> &[u64] {
        &self.reads
    }

    /// Minimal write quorums as site masks, canonically ordered.
    pub fn writes(&self) -> &[u64] {
        &self.writes
    }

    /// Does the up-site set `mask` contain some read quorum?
    pub fn read_available(&self, mask: u64) -> bool {
        self.reads.iter().any(|&q| q & !mask == 0)
    }

    /// Does the up-site set `mask` contain some write quorum?
    pub fn write_available(&self, mask: u64) -> bool {
        self.writes.iter().any(|&q| q & !mask == 0)
    }

    /// Exhaustively checks both intersection conditions over the
    /// enumerated families and returns the certificate.
    pub fn certify(&self) -> IntersectionCertificate {
        let mut pairs = 0u64;
        for &r in &self.reads {
            for &w in &self.writes {
                pairs += 1;
                if r & w == 0 {
                    return IntersectionCertificate {
                        pairs_checked: pairs,
                        failure: Some(CertFailure::ReadWrite(r, w)),
                    };
                }
            }
        }
        for (i, &a) in self.writes.iter().enumerate() {
            for &b in self.writes.iter().skip(i + 1) {
                pairs += 1;
                if a & b == 0 {
                    return IntersectionCertificate {
                        pairs_checked: pairs,
                        failure: Some(CertFailure::WriteWrite(a, b)),
                    };
                }
            }
        }
        IntersectionCertificate {
            pairs_checked: pairs,
            failure: None,
        }
    }

    /// Crash f-resilience: the largest `f` such that after *any* `f`
    /// site failures some read quorum **and** some write quorum remain
    /// fully alive. Equals `min(τ(reads), τ(writes)) − 1` where `τ` is
    /// the minimum transversal (hitting-set) size of a family — a
    /// failure set disables a family exactly when it hits every quorum.
    /// Exact branch-and-bound; families here are small by the
    /// enumeration cap.
    pub fn resilience(&self) -> u32 {
        min_transversal(&self.reads).min(min_transversal(&self.writes)) - 1
    }

    /// Exact availability in the non-partitionable model (site `i` up
    /// with probability `p[i]`, up sites fully connected):
    /// `α·P[read quorum alive] + (1−α)·P[write quorum alive]` over the
    /// `2^n` up-sets. The SURV-style set probability, matching
    /// `quorum_core::ReadWriteCoterie::nonpartition_availability` so
    /// the two layers can be cross-checked.
    ///
    /// # Panics
    /// Panics on length mismatch, invalid probabilities, or `n > 20`.
    pub fn nonpartition_availability(&self, p: &[f64], alpha: f64) -> f64 {
        assert_eq!(p.len(), self.n, "one reliability per site");
        assert!((0.0..=1.0).contains(&alpha), "α must lie in [0,1]");
        assert!(self.n <= crate::expr::MAX_ENUM_SITES, "2^n scan capped");
        for &x in p {
            assert!((0.0..=1.0).contains(&x), "reliabilities must lie in [0,1]");
        }
        let mut read_prob = 0.0;
        let mut write_prob = 0.0;
        for mask in 0u64..(1 << self.n) {
            let mut prob = 1.0;
            for (i, &pi) in p.iter().enumerate() {
                prob *= if mask >> i & 1 == 1 { pi } else { 1.0 - pi };
            }
            if self.read_available(mask) {
                read_prob += prob;
            }
            if self.write_available(mask) {
                write_prob += prob;
            }
        }
        alpha * read_prob + (1.0 - alpha) * write_prob
    }
}

impl fmt::Display for QuorumSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (n={}, |R|={}, |W|={})",
            self.name,
            self.n,
            self.reads.len(),
            self.writes.len()
        )
    }
}

/// Minimum hitting-set size of a non-empty quorum family, by exact
/// branch-and-bound: any transversal must hit the first un-hit quorum,
/// so branching on that quorum's sites is complete; the current best
/// prunes.
fn min_transversal(quorums: &[u64]) -> u32 {
    assert!(
        !quorums.is_empty() && quorums.iter().all(|&q| q != 0),
        "family and every quorum must be non-empty"
    );
    fn go(quorums: &[u64], hit: u64, chosen: u32, best: &mut u32) {
        if chosen >= *best {
            return;
        }
        let Some(&q) = quorums.iter().find(|&&q| q & hit == 0) else {
            *best = chosen;
            return;
        };
        let mut rest = q;
        while rest != 0 {
            let bit = rest & rest.wrapping_neg();
            go(quorums, hit | bit, chosen + 1, best);
            rest ^= bit;
        }
    }
    // Greedy seed: take the lowest site of each un-hit quorum in turn —
    // a valid transversal whose size upper-bounds the optimum, so the
    // search starts with a tight prune.
    let mut hit = 0u64;
    let mut bound = 0u32;
    while let Some(&q) = quorums.iter().find(|&&q| q & hit == 0) {
        hit |= q & q.wrapping_neg();
        bound += 1;
    }
    go(quorums, 0, 0, &mut bound);
    bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_system_certifies() {
        let s = QuorumSystem::majority(5, 0);
        assert_eq!(s.reads().len(), 10);
        assert_eq!(s.writes().len(), 10);
        let cert = s.certify();
        assert!(cert.ok());
        assert_eq!(cert.pairs_checked, 100 + 45);
        assert_eq!(s.resilience(), 2);
    }

    #[test]
    fn grid_3x3_shape_and_safety() {
        let s = QuorumSystem::grid(3, 3, 0);
        // Reads: one per column = 3^3 = 27 minimal quorums of size 3.
        assert_eq!(s.reads().len(), 27);
        assert!(s.reads().iter().all(|q| q.count_ones() == 3));
        // Writes: full column (3) + one from each other column (2) = 5
        // sites; 3 columns × 3 × 3 covers = 27.
        assert_eq!(s.writes().len(), 27);
        assert!(s.writes().iter().all(|q| q.count_ones() == 5));
        assert!(s.certify().ok());
        assert_eq!(s.resilience(), 2);
    }

    #[test]
    fn naive_grid_dual_fails_certification() {
        // The dual of "one per column" is "one full column" — and two
        // different full columns are disjoint. The checker must say so.
        let col = |c: usize| (0..3).map(move |r| r * 3 + c);
        let read = Expr::and((0..3).map(|c| Expr::or(Expr::nodes(col(c)))).collect());
        let naive = QuorumSystem::from_read_expr("naive-grid", 9, read);
        let cert = naive.certify();
        assert!(!cert.ok());
        assert!(matches!(cert.failure, Some(CertFailure::WriteWrite(..))));
    }

    #[test]
    fn hierarchical_3x3_is_self_dual_and_resilient() {
        let s = QuorumSystem::hierarchical(3, 3, 2, 2, 0);
        // Recursive majority: dual read expr equals read expr, so the
        // families coincide; quorums are 2 members in each of 2 groups.
        assert_eq!(s.reads(), s.writes());
        assert_eq!(s.reads().len(), 27);
        assert!(s.reads().iter().all(|q| q.count_ones() == 4));
        assert!(s.certify().ok());
        // Killing it needs 2 failures in each of 2 groups.
        assert_eq!(s.resilience(), 3);
    }

    #[test]
    fn vote_derived_system_matches_bicoterie_layer() {
        use quorum_core::ReadWriteCoterie;
        let votes = VoteAssignment::weighted(vec![2, 1, 1, 1]);
        let spec = QuorumSpec::new(2, 4, 5).expect("valid");
        let s = QuorumSystem::from_spec("votes", &votes, spec);
        assert!(s.certify().ok());
        let bc = ReadWriteCoterie::from_quorums(&votes, spec);
        let to_masks = |groups: Vec<Vec<usize>>| {
            let mut m: Vec<u64> = groups
                .iter()
                .map(|g| g.iter().fold(0u64, |acc, &s| acc | 1 << s))
                .collect();
            m.sort_unstable_by_key(|&q| (q.count_ones(), q));
            m
        };
        assert_eq!(s.reads().to_vec(), to_masks(bc.read_groups()));
        assert_eq!(s.writes().to_vec(), to_masks(bc.write_groups()));
    }

    #[test]
    fn unsafe_vote_pair_fails_certification() {
        // q_r + q_w = T: disjoint read and write sets exist. QuorumSpec
        // would reject this pair; the expression layer represents it and
        // the checker rejects it — the whole point of the certificate.
        let votes = VoteAssignment::uniform(4);
        let s = QuorumSystem::from_exprs(
            "unsafe",
            4,
            Expr::weighted_threshold(&votes, 2),
            Expr::weighted_threshold(&votes, 2),
        );
        let cert = s.certify();
        assert!(matches!(cert.failure, Some(CertFailure::ReadWrite(..))));
    }

    #[test]
    fn resilience_of_threshold_systems() {
        // Uniform votes, tight pair (q_r, T−q_r+1) on 9 sites: read
        // family dies after n−q_r+1 failures, write after n−q_w+1, so
        // resilience = n − q_w = q_r − 1.
        for q_r in 1..=4u64 {
            let votes = VoteAssignment::uniform(9);
            let spec = QuorumSpec::from_read_quorum(q_r, 9).expect("valid");
            let s = QuorumSystem::from_spec("t", &votes, spec);
            assert_eq!(s.resilience() as u64, q_r - 1, "q_r = {q_r}");
        }
    }

    #[test]
    fn rowa_resilience_is_zero() {
        let votes = VoteAssignment::uniform(5);
        let s = QuorumSystem::from_spec("rowa", &votes, QuorumSpec::read_one_write_all(5));
        // One failure kills the single write quorum.
        assert_eq!(s.resilience(), 0);
        assert!(s.certify().ok());
    }

    #[test]
    fn offset_constructors_skip_low_sites() {
        // Bus-style universes reserve site 0 for the medium: systems
        // built at offset 1 must never touch bit 0.
        for s in [
            QuorumSystem::majority(9, 1),
            QuorumSystem::grid(3, 3, 1),
            QuorumSystem::hierarchical(3, 3, 2, 2, 1),
        ] {
            assert_eq!(s.n(), 10);
            let all: u64 = s.reads().iter().chain(s.writes()).fold(0, |a, &q| a | q);
            assert_eq!(all & 1, 0, "{}: site 0 must stay untouched", s.name());
            assert!(s.certify().ok());
        }
    }

    #[test]
    fn availability_matches_bicoterie_layer() {
        use quorum_core::ReadWriteCoterie;
        let votes = VoteAssignment::uniform(5);
        let spec = QuorumSpec::majority(5);
        let s = QuorumSystem::from_spec("maj5", &votes, spec);
        let bc = ReadWriteCoterie::from_quorums(&votes, spec);
        let p = [0.8, 0.5, 0.9, 0.7, 0.6];
        for alpha in [0.0, 0.3, 1.0] {
            let a = s.nonpartition_availability(&p, alpha);
            let b = bc.nonpartition_availability(&p, alpha);
            assert!((a - b).abs() < 1e-12, "α={alpha}: {a} vs {b}");
        }
    }

    #[test]
    fn availability_monotone_in_reliability() {
        let s = QuorumSystem::grid(3, 3, 0);
        let lo = s.nonpartition_availability(&[0.8; 9], 0.5);
        let hi = s.nonpartition_availability(&[0.95; 9], 0.5);
        assert!(hi > lo);
    }

    #[test]
    fn display_summarizes() {
        let s = QuorumSystem::majority(3, 0);
        assert_eq!(format!("{s}"), "majority-3 (n=3, |R|=3, |W|=3)");
    }
}
